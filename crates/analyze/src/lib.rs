//! # faure-analyze — diagnostics and lints for fauré-log programs
//!
//! A span-aware, non-fail-fast front end over the analysis passes in
//! [`faure_core::analysis`]. Where evaluation stops at the first
//! problem, `faure check` collects **every** problem in one run, tags
//! each with a stable error code, and renders them rustc-style with a
//! source snippet and carets:
//!
//! ```text
//! error[F0001]: unsafe variable `b`: not bound by any positive body atom
//!  --> prog.fl:1:6
//!   |
//! 1 | R(a, b) :- F(a).
//!   |      ^
//! ```
//!
//! ## Error codes
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | F0000 | error    | syntax error |
//! | F0001 | error    | unsafe (unbound) rule variable |
//! | F0002 | error    | negation through recursion (not stratifiable) |
//! | F0003 | error    | conflicting predicate arity |
//! | F0004 | warning  | rule head shadows an input relation |
//! | F0005 | warning  | dead rule (provably empty body predicate) |
//! | F0006 | warning  | undefined relation |
//! | F0007 | warning  | singleton (likely misspelled) variable |
//! | F0008 | warning  | statically unsatisfiable rule condition |
//!
//! The entry points are [`check_source`] (program text only) and
//! [`check_source_with_db`] (adds database-aware passes: schema arity,
//! shadowing, undefined relations, empty-input dead rules).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faure_core::analysis::{analyze, Finding};
use faure_core::parser::{parse_program_spanned, RuleSpans, Span, SpannedProgram};
use faure_ctable::Database;
use std::fmt;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is rejected by evaluation.
    Error,
    /// The program evaluates, but something is probably wrong.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// One diagnostic: a coded, spanned message about the source program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code (`F0001`, …).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Byte span of the offending source text.
    pub span: Span,
    /// Index of the rule the diagnostic concerns (`usize::MAX` for
    /// syntax errors, which have no rule).
    pub rule: usize,
}

/// The result of checking a program: all diagnostics, in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Diagnostics sorted by span start, then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the program is clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders every diagnostic rustc-style against `src`, labelling
    /// locations as `filename:line:col`.
    pub fn render(&self, src: &str, filename: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&render_diagnostic(d, src, filename));
            out.push('\n');
        }
        out
    }

    /// Renders every diagnostic as a JSON array (machine-readable
    /// `faure check --format json` output). Each element carries the
    /// stable code, severity, message, file, 1-based line/col of the
    /// span start, and the byte span itself:
    ///
    /// ```json
    /// [{"code":"F0001","severity":"error","message":"...",
    ///   "file":"prog.fl","line":1,"col":6,"span":{"start":5,"end":6}}]
    /// ```
    pub fn to_json(&self, src: &str, filename: &str) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (line, col) = line_col(src, d.span.start);
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"message\":{},\"file\":{},\
                 \"line\":{line},\"col\":{col},\
                 \"span\":{{\"start\":{},\"end\":{}}}}}",
                json_str(d.code),
                json_str(&d.severity.to_string()),
                json_str(&d.message),
                json_str(filename),
                d.span.start,
                d.span.end,
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Checks program text with the text-only passes.
pub fn check_source(src: &str) -> Report {
    check(src, None)
}

/// Checks program text including the database-aware passes (schema
/// arity, shadowed inputs, undefined relations, empty input relations).
pub fn check_source_with_db(src: &str, db: &Database) -> Report {
    check(src, Some(db))
}

fn check(src: &str, db: Option<&Database>) -> Report {
    let spanned = match parse_program_spanned(src) {
        Ok(sp) => sp,
        Err(e) => {
            // A syntax error preempts analysis: one diagnostic at the
            // failing byte.
            let at = e.pos.min(src.len());
            return Report {
                diagnostics: vec![Diagnostic {
                    code: "F0000",
                    severity: Severity::Error,
                    message: format!("syntax error: {}", e.msg),
                    span: Span::new(at, (at + 1).min(src.len()).max(at)),
                    rule: usize::MAX,
                }],
            };
        }
    };
    let findings = analyze(&spanned.program, db);
    let mut diagnostics: Vec<Diagnostic> = findings
        .iter()
        .map(|f| to_diagnostic(f, &spanned, src))
        .collect();
    diagnostics.sort_by(|a, b| (a.span.start, a.code).cmp(&(b.span.start, b.code)));
    Report { diagnostics }
}

/// Maps a structural finding to a coded, spanned diagnostic.
fn to_diagnostic(f: &Finding, spanned: &SpannedProgram, src: &str) -> Diagnostic {
    let spans = &spanned.spans[f.rule()];
    let (code, severity, span) = match f {
        Finding::UnsafeVariable { variable, .. } => (
            "F0001",
            Severity::Error,
            var_span(spans, src, variable).unwrap_or(spans.rule),
        ),
        Finding::NegativeCycle { .. } => ("F0002", Severity::Error, spans.head.atom),
        Finding::ArityConflict { literal, .. } => (
            "F0003",
            Severity::Error,
            match literal {
                Some(li) => spans.body[*li].atom,
                None => spans.head.atom,
            },
        ),
        Finding::ShadowedInput { .. } => ("F0004", Severity::Warning, spans.head.atom),
        Finding::DeadRule { .. } => ("F0005", Severity::Warning, spans.rule),
        Finding::UndefinedPredicate { literal, .. } => {
            ("F0006", Severity::Warning, spans.body[*literal].atom)
        }
        Finding::SingletonVariable { variable, .. } => (
            "F0007",
            Severity::Warning,
            var_span(spans, src, variable).unwrap_or(spans.rule),
        ),
        Finding::UnsatisfiableRule { .. } => (
            "F0008",
            Severity::Warning,
            comparisons_span(spans).unwrap_or(spans.rule),
        ),
    };
    Diagnostic {
        code,
        severity,
        message: f.to_string(),
        span,
        rule: f.rule(),
    }
}

/// The span of the first occurrence of rule variable `name` in the
/// rule: argument positions first (head, then body), then comparisons.
fn var_span(spans: &RuleSpans, src: &str, name: &str) -> Option<Span> {
    std::iter::once(&spans.head)
        .chain(spans.body.iter())
        .flat_map(|a| a.args.iter())
        .find(|s| src.get(s.start..s.end) == Some(name))
        .or_else(|| {
            // Fall back to the whole comparison mentioning the
            // variable as a word.
            spans.comparisons.iter().find(|s| {
                src.get(s.start..s.end)
                    .is_some_and(|text| mentions_word(text, name))
            })
        })
        .copied()
}

/// Whether `text` contains `name` as a standalone identifier.
fn mentions_word(text: &str, name: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(i) = text[from..].find(name) {
        let at = from + i;
        let before_ok = !text[..at]
            .chars()
            .next_back()
            .is_some_and(|c| is_ident(c) || c == '$');
        let after_ok = !text[at + name.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// The span covering all comparisons of a rule.
fn comparisons_span(spans: &RuleSpans) -> Option<Span> {
    let first = spans.comparisons.first()?;
    let last = spans.comparisons.last()?;
    Some(Span::new(first.start, last.end))
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

/// Renders one diagnostic with a source snippet and caret underline.
fn render_diagnostic(d: &Diagnostic, src: &str, filename: &str) -> String {
    let (line_no, col) = line_col(src, d.span.start);
    let line_start = src[..d.span.start.min(src.len())]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let line_end = src[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(src.len());
    let line_text = &src[line_start..line_end];

    // Caret run: from the span start to its end, clipped to this line,
    // at least one caret wide.
    let caret_start = col - 1;
    let caret_len = d.span.end.min(line_end).saturating_sub(d.span.start).max(1);

    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    format!(
        "{severity}[{code}]: {message}\n\
         {pad}--> {filename}:{line_no}:{col}\n\
         {pad} |\n\
         {gutter} | {line_text}\n\
         {pad} | {indent}{carets}\n",
        severity = d.severity,
        code = d.code,
        message = d.message,
        indent = " ".repeat(caret_start),
        carets = "^".repeat(caret_len),
    )
}

/// 1-based line and byte column of a byte offset.
fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let line = src[..pos].matches('\n').count() + 1;
    let col = pos - src[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn span_text<'s>(src: &'s str, d: &Diagnostic) -> &'s str {
        &src[d.span.start..d.span.end]
    }

    // --- F0001: unsafe variables ---------------------------------------

    #[test]
    fn f0001_unsafe_variable_with_span() {
        let src = "R(a, b) :- F(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0001"]);
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(span_text(src, d), "b");
        assert!(d.message.contains("unsafe variable `b`"));
    }

    #[test]
    fn f0001_clean() {
        assert!(check_source("R(a, b) :- F(a, b).\n").is_empty());
    }

    // --- F0002: negation through recursion ------------------------------

    #[test]
    fn f0002_negative_cycle_flags_both_predicates() {
        let src = "P(a) :- N(a), !Q(a).\nQ(a) :- N(a), !P(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0002", "F0002"]);
        assert_eq!(span_text(src, &report.diagnostics[0]), "P(a)");
        assert_eq!(span_text(src, &report.diagnostics[1]), "Q(a)");
        assert!(report.has_errors());
    }

    #[test]
    fn f0002_clean_stratified_negation() {
        let src = "R(a) :- N(a).\nBad(a) :- N(a), !R(a).\n";
        assert!(check_source(src).is_empty());
    }

    // --- F0003: arity conflicts -----------------------------------------

    #[test]
    fn f0003_arity_conflict_points_at_conflicting_use() {
        let src = "R(a, b) :- F(a, b).\nS(a) :- R(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0003"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "R(a)");
        assert!(d.message.contains("arity is 2"));
    }

    #[test]
    fn f0003_clean_consistent_arity() {
        assert!(check_source("R(a, b) :- F(a, b).\nS(a) :- R(a, a).\n").is_empty());
    }

    // --- F0004: shadowed input relations --------------------------------

    #[test]
    fn f0004_head_shadowing_edb_relation() {
        let mut db = Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        db.insert("F", faure_ctable::CTuple::new([faure_ctable::Term::int(1)]))
            .unwrap();
        let src = "F(a) :- G(a).\nG(1).\n";
        let report = check_source_with_db(src, &db);
        assert!(codes(&report).contains(&"F0004"));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F0004")
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(span_text(src, d), "F(a)");
    }

    #[test]
    fn f0004_clean_without_collision() {
        let mut db = Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        db.insert("F", faure_ctable::CTuple::new([faure_ctable::Term::int(1)]))
            .unwrap();
        assert!(check_source_with_db("R(a) :- F(a).\n", &db).is_empty());
    }

    // --- F0005: dead rules ----------------------------------------------

    #[test]
    fn f0005_self_recursive_predicate_without_base_case() {
        let src = "P(a) :- P(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0005"]);
        assert_eq!(span_text(src, &report.diagnostics[0]), "P(a) :- P(a).");
        assert!(!report.has_errors());
    }

    #[test]
    fn f0005_clean_with_base_case() {
        assert!(check_source("P(a) :- E(a).\nP(a) :- P(a).\n").is_empty());
    }

    // --- F0006: undefined relations -------------------------------------

    #[test]
    fn f0006_undefined_relation_with_db() {
        let db = Database::new();
        let src = "R(a) :- Missing(a).\n";
        let report = check_source_with_db(src, &db);
        assert!(codes(&report).contains(&"F0006"));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F0006")
            .unwrap();
        assert_eq!(span_text(src, d), "Missing(a)");
    }

    #[test]
    fn f0006_clean_when_relation_exists() {
        let mut db = Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        db.insert("F", faure_ctable::CTuple::new([faure_ctable::Term::int(1)]))
            .unwrap();
        assert!(check_source_with_db("R(a) :- F(a).\n", &db).is_empty());
    }

    // --- F0007: singleton variables -------------------------------------

    #[test]
    fn f0007_singleton_variable_span() {
        let src = "R(a) :- F(a, b).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0007"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "b");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn f0007_clean_when_variable_shared() {
        assert!(check_source("R(a, b) :- F(a, b).\n").is_empty());
    }

    // --- F0008: unsatisfiable conditions --------------------------------

    #[test]
    fn f0008_contradictory_interval() {
        let src = "R(a) :- F(a), a < 2, a > 5.\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0008"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "a < 2, a > 5");
        assert!(d.message.contains("a < 2"));
        assert!(d.message.contains("a > 5"));
    }

    #[test]
    fn f0008_clean_satisfiable_bounds() {
        assert!(check_source("R(a) :- F(a), a > 2, a < 5.\n").is_empty());
    }

    // --- F0000: syntax errors -------------------------------------------

    #[test]
    fn f0000_syntax_error() {
        let report = check_source("R(a :- F(a).\n");
        assert_eq!(codes(&report), vec!["F0000"]);
        assert!(report.has_errors());
    }

    // --- collection and rendering ---------------------------------------

    #[test]
    fn multiple_diagnostics_in_one_run() {
        // Unsafe variable, singleton, and unsatisfiable condition all
        // reported together: the analyzer is not fail-fast.
        let src = "R(a, z) :- F(a, b).\nS(a) :- F(a, a), 1 > 2.\n";
        let report = check_source(src);
        let got = codes(&report);
        assert!(got.contains(&"F0001"), "{got:?}");
        assert!(got.contains(&"F0007"), "{got:?}");
        assert!(got.contains(&"F0008"), "{got:?}");
    }

    #[test]
    fn diagnostics_sorted_by_source_position() {
        let src = "S(a) :- F(a), 1 > 2.\nR(a, z) :- F(a).\n";
        let report = check_source(src);
        let starts: Vec<usize> = report.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn renderer_points_carets_at_the_span() {
        let src = "R(a, b) :- F(a).\n";
        let report = check_source(src);
        let rendered = report.render(src, "prog.fl");
        assert!(rendered.contains("error[F0001]"), "{rendered}");
        assert!(rendered.contains("--> prog.fl:1:6"), "{rendered}");
        assert!(rendered.contains("1 | R(a, b) :- F(a)."), "{rendered}");
        // The caret sits under column 6.
        let caret_line = rendered
            .lines()
            .find(|l| l.contains('^'))
            .expect("caret line");
        assert_eq!(caret_line.find('^'), Some("  | ".len() + 5), "{rendered}");
    }

    #[test]
    fn renderer_reports_line_numbers_past_one() {
        let src = "Ok(a) :- F(a).\nR(a, b) :- F(a).\n";
        let rendered = check_source(src).render(src, "x.fl");
        assert!(rendered.contains("--> x.fl:2:6"), "{rendered}");
    }

    // --- JSON output ------------------------------------------------------

    #[test]
    fn json_output_carries_code_location_and_span() {
        let src = "R(a, b) :- F(a).\n";
        let json = check_source(src).to_json(src, "prog.fl");
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"code\":\"F0001\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"file\":\"prog.fl\""), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
        assert!(json.contains("\"col\":6"), "{json}");
        assert!(json.contains("\"span\":{\"start\":5,\"end\":6}"), "{json}");
    }

    #[test]
    fn json_output_escapes_message_strings() {
        // Backtick-quoted identifiers are fine, but a message containing
        // quotes (e.g. from a syntax error echoing source) must escape.
        let src = "R(a) :- F(a), a != \"x\\\"y\".\n";
        let report = check_source(src);
        let json = report.to_json(src, "q.fl");
        // Valid JSON: every unescaped quote is structural. Cheap check:
        // the escape sequence survives and the array parses brackets.
        assert!(json.ends_with("]\n"), "{json}");
        // An empty report is an empty array.
        assert_eq!(check_source("R(a) :- F(a).\n").to_json("", "f"), "[]\n");
    }
}
