//! Synthetic RIB workload — the §6 evaluation substrate.
//!
//! The paper evaluates on "realistic forwarding configuration inferred
//! from BGP RIB (route-views2.oregon-ix.net on 2021-06-10)": for each
//! prefix it randomly selects 5 AS paths, one primary and four
//! backups, with preferences set so that "a backup will be used only
//! when the primary and all the backups with higher preferences have
//! failed".
//!
//! The RIB file itself is proprietary-ish bulk data; per the
//! substitution rule this module generates an equivalent workload from
//! a seed:
//!
//! * an AS-level topology from preferential attachment (heavy-tailed
//!   like the real AS graph);
//! * per prefix, 5 random simple paths (one primary + 4 backups);
//! * **failure variables**: the primary path of each prefix traverses
//!   one of three *monitored bottleneck links* whose `{0,1}` states are
//!   the shared c-variables `x̄, ȳ, z̄` (so Listing 2's failure patterns
//!   q6–q8 are meaningful across the whole workload, exactly as in the
//!   paper's runs); each backup `i` additionally has its own per-prefix
//!   availability variable `b̄ᵖᵢ`, and is used iff the primary's
//!   monitored link is down and every higher-preference backup is
//!   unavailable:
//!
//! ```text
//! path 0 (primary):  g(p) = 1                     g(p) ∈ {x̄, ȳ, z̄}
//! path i (backup):   g(p) = 0 ∧ b̄ᵖ₁=0 ∧ … ∧ b̄ᵖᵢ₋₁=0 ∧ b̄ᵖᵢ=1
//! ```
//!
//! Each hop `(a, b)` of a usable path contributes a forwarding entry
//! `F(prefix, a, b)` guarded by that path's condition — a single
//! c-table describing every forwarding state under every failure
//! combination, per §4.
//!
//! What matters for the Table 4 reproduction is the *scaling shape*:
//! tuple counts and per-phase runtimes as a function of `#prefixes`,
//! which this generator preserves (≈ 5 paths × path-length entries per
//! prefix, conditions of the same size and form as the paper's).

use crate::topology::Graph;
use faure_ctable::{CTuple, CVarId, Condition, Database, Domain, Schema, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct RibParams {
    /// Number of prefixes (the paper sweeps 1 000 … 922 067).
    pub prefixes: usize,
    /// Candidate paths per prefix (paper: 5 = 1 primary + 4 backups).
    pub paths_per_prefix: usize,
    /// AS-topology size.
    pub as_count: usize,
    /// Path length in hops (edges); paths are simple.
    pub path_len: usize,
    /// RNG seed (the workload is fully reproducible).
    pub seed: u64,
}

impl Default for RibParams {
    fn default() -> Self {
        RibParams {
            prefixes: 1000,
            paths_per_prefix: 5,
            as_count: 512,
            path_len: 3,
            seed: 20210610, // the paper's RIB snapshot date
        }
    }
}

/// A generated workload: the forwarding database plus handles to the
/// monitored link-state variables.
pub struct RibWorkload {
    /// Database holding the `F(f, n1, n2)` c-table.
    pub db: Database,
    /// The three monitored link-state c-variables `x̄, ȳ, z̄`.
    pub monitored: [CVarId; 3],
    /// Per-prefix primary monitored-link choice (index into
    /// `monitored`), for tests and reporting.
    pub primary_choice: Vec<u8>,
}

/// Generates the workload.
pub fn generate(params: &RibParams) -> RibWorkload {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let graph = Graph::preferential_attachment(
        params.as_count,
        3,
        &mut StdRng::seed_from_u64(params.seed ^ 0x9e37_79b9),
    );

    let mut db = Database::new();
    db.create_relation(Schema::new("F", &["f", "n1", "n2"]))
        .expect("fresh database");
    let x = db.fresh_cvar("x", Domain::Bool01);
    let y = db.fresh_cvar("y", Domain::Bool01);
    let z = db.fresh_cvar("z", Domain::Bool01);
    let monitored = [x, y, z];
    let mut primary_choice = Vec::with_capacity(params.prefixes);

    for p in 0..params.prefixes {
        let choice = rng.gen_range(0..3u8);
        primary_choice.push(choice);
        let g = monitored[choice as usize];

        // Per-prefix backup availability variables b1..b{k-1}.
        let backups: Vec<CVarId> = (1..params.paths_per_prefix)
            .map(|i| db.fresh_cvar(format!("b{p}_{i}"), Domain::Bool01))
            .collect();

        for i in 0..params.paths_per_prefix {
            let Some(path) = graph.random_simple_path(params.path_len, &mut rng) else {
                continue;
            };
            // Condition for "path i is the one in use".
            let cond = if i == 0 {
                Condition::eq(Term::Var(g), Term::int(1))
            } else {
                let mut c = Condition::eq(Term::Var(g), Term::int(0));
                for b in backups.iter().take(i - 1) {
                    c = c.and(Condition::eq(Term::Var(*b), Term::int(0)));
                }
                c.and(Condition::eq(Term::Var(backups[i - 1]), Term::int(1)))
            };
            for hop in path.windows(2) {
                db.insert(
                    "F",
                    CTuple::with_cond(
                        [
                            Term::int(p as i64),
                            Term::int(hop[0] as i64),
                            Term::int(hop[1] as i64),
                        ],
                        cond.clone(),
                    ),
                )
                .expect("arity 3");
            }
        }
    }

    RibWorkload {
        db,
        monitored,
        primary_choice,
    }
}

/// Returns the most frequent forwarding hop `(n1, n2)` of the
/// workload — a live pair for q7-style point-to-point queries (the
/// paper picks nodes 2 and 5 of its example; on a synthetic topology
/// the interesting pairs depend on the seed).
pub fn frequent_pair(workload: &RibWorkload) -> Option<(i64, i64)> {
    let f = workload.db.relation("F")?;
    let mut counts: std::collections::HashMap<(i64, i64), usize> = std::collections::HashMap::new();
    for t in f.iter() {
        let (Some(a), Some(b)) = (
            t.terms[1].as_const().and_then(|c| c.as_int()),
            t.terms[2].as_const().and_then(|c| c.as_int()),
        ) else {
            continue;
        };
        *counts.entry((a, b)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(pair, c)| (c, std::cmp::Reverse(pair)))
        .map(|(pair, _)| pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_core::{evaluate, evaluate_with, EvalOptions, PrunePolicy};

    fn small() -> RibParams {
        RibParams {
            prefixes: 20,
            as_count: 128,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(
            a.db.relation("F").unwrap().len(),
            b.db.relation("F").unwrap().len()
        );
        assert_eq!(a.primary_choice, b.primary_choice);
    }

    #[test]
    fn tuple_count_scales_with_prefixes() {
        let w1 = generate(&small());
        let w2 = generate(&RibParams {
            prefixes: 40,
            as_count: 128,
            ..Default::default()
        });
        let n1 = w1.db.relation("F").unwrap().len();
        let n2 = w2.db.relation("F").unwrap().len();
        // Roughly double (dedup of shared hops makes it inexact).
        assert!(n2 > n1 + n1 / 2, "n1={n1} n2={n2}");
        // ≈ prefixes × paths × hops (minus merged duplicates).
        assert!(n1 <= 20 * 5 * 3);
        assert!(n1 >= 20 * 3);
    }

    #[test]
    fn conditions_partition_paths() {
        // For any prefix, at most one path is in use per world: the
        // conditions of different paths are mutually exclusive.
        let w = generate(&small());
        let f = w.db.relation("F").unwrap();
        // Collect distinct conditions for prefix 0.
        let mut conds = Vec::new();
        for t in f.iter() {
            if t.terms[0] == Term::int(0) && !conds.contains(&t.cond) {
                conds.push(t.cond.clone());
            }
        }
        assert!(conds.len() >= 2);
        for (i, a) in conds.iter().enumerate() {
            for b in conds.iter().skip(i + 1) {
                let both = a.clone().and(b.clone());
                assert!(
                    !faure_solver::satisfiable(&w.db.cvars, &both).unwrap(),
                    "path-use conditions must be mutually exclusive"
                );
            }
        }
    }

    #[test]
    fn reachability_runs_on_workload() {
        let w = generate(&RibParams {
            prefixes: 5,
            as_count: 64,
            ..Default::default()
        });
        let out = evaluate_with(
            &crate::queries::reachability_program(),
            &w.db,
            &EvalOptions {
                prune: PrunePolicy::Never, // keep it fast; counts only
                ..Default::default()
            },
        )
        .unwrap();
        let r = out.relation("R").unwrap();
        assert!(r.len() >= w.db.relation("F").unwrap().len());
    }

    #[test]
    fn q6_on_workload_respects_pattern() {
        let w = generate(&RibParams {
            prefixes: 3,
            as_count: 64,
            ..Default::default()
        });
        let mut program = crate::queries::reachability_program();
        program.extend(crate::queries::q6_two_link_failure());
        let out = evaluate(&program, &w.db).unwrap();
        let t1 = out.relation("T1").unwrap();
        assert!(!t1.is_empty());
        use faure_ctable::{CmpOp, LinExpr};
        let [x, y, z] = w.monitored;
        let pattern = Condition::cmp(LinExpr::sum([x, y, z]), CmpOp::Eq, LinExpr::constant(1));
        for row in t1.iter().take(10) {
            assert!(faure_solver::implies(&out.database.cvars, &row.cond, &pattern).unwrap());
        }
    }
}
