//! # faure-ctable — the c-table data model
//!
//! This crate implements the relational structure at the heart of
//! [Fauré (HotNets '21)](https://doi.org/10.1145/3484266.3487391):
//! **conditional tables** (c-tables), the classic representation system
//! for incomplete information from Imieliński & Lipski (JACM '84).
//!
//! A c-table is a relation whose cells may contain *c-variables*
//! (unknown-but-named values) in addition to ordinary constants, and
//! whose rows each carry a *condition* — a boolean formula over the
//! c-variables. A single c-table `T` denotes a **set of possible
//! worlds**: one ordinary relation per assignment of the c-variables,
//! containing exactly the rows whose conditions are satisfied by the
//! assignment.
//!
//! The crate provides:
//!
//! * [`Symbol`] / [`intern`] — a global string interner so symbolic
//!   constants are cheap to copy, hash, and compare.
//! * [`Const`] — constants of the attribute domain: integers, interned
//!   symbols, and lists (used for paths like `[A,B,C]`).
//! * [`CVarId`] / [`CVarRegistry`] / [`Domain`] — c-variables with
//!   optional finite domains (e.g. link-state variables ranging over
//!   `{0,1}`).
//! * [`Term`] — a cell value: a constant or a c-variable. The set of
//!   terms is the paper's **c-domain** `dom^C`.
//! * [`Condition`] / [`Atom`] / [`LinExpr`] — the condition language:
//!   boolean combinations of (dis)equalities over terms and linear
//!   integer constraints over c-variables (e.g. `x̄ + ȳ + z̄ = 1`).
//! * [`CTuple`], [`Relation`], [`Schema`], [`Database`] — c-tables and
//!   databases of c-tables.
//! * [`worlds`] — exhaustive possible-world enumeration, the ground
//!   truth against which *loss-less modeling* is tested.
//!
//! Satisfiability of conditions is deliberately **not** implemented
//! here; see the `faure-solver` crate (the repo's Z3 substitute).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condition;
pub mod cvar;
pub mod database;
pub mod error;
pub mod examples;
pub mod pool;
pub mod relation;
pub mod symbol;
pub mod term;
pub mod value;
pub mod worlds;

pub use condition::{Atom, CmpOp, Condition, Expr, LinExpr};
pub use cvar::{CVarId, CVarRegistry, Domain};
pub use database::Database;
pub use error::CtableError;
pub use pool::{CondId, ListId, PoolStats};
pub use relation::{CTuple, Relation, Schema};
pub use symbol::{intern, resolve, Symbol};
pub use term::Term;
pub use value::Const;
pub use worlds::{Assignment, GroundDatabase, GroundRelation, GroundTuple, WorldIter};

// Thread-safety audit: parallel evaluation shares these types across
// `std::thread::scope` workers by reference. Conditions are Arc-backed
// (never Rc), symbols intern to `&'static str` behind a global RwLock,
// and registries are plain vectors — all Send + Sync. The assertions
// below turn any future regression (e.g. an Rc or RefCell slipping into
// a cell type) into a compile error instead of a runtime surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Condition>();
    assert_send_sync::<CondId>();
    assert_send_sync::<ListId>();
    assert_send_sync::<PoolStats>();
    assert_send_sync::<Atom>();
    assert_send_sync::<Term>();
    assert_send_sync::<Const>();
    assert_send_sync::<Symbol>();
    assert_send_sync::<CVarRegistry>();
    assert_send_sync::<CTuple>();
    assert_send_sync::<Relation>();
    assert_send_sync::<Database>();
};
