//! Global hash-consed condition pool.
//!
//! Every [`Condition`] can be *interned* to a [`CondId`] — a `u32`
//! naming one structurally-unique node in a process-wide pool. Equal
//! conditions always intern to equal ids, so id comparison is O(1)
//! structural equality and downstream consumers (the storage dedup
//! index, the solver memo) can key on a `u32` instead of re-hashing
//! whole trees. Like the [`symbol`](crate::symbol) interner the pool
//! only ever grows; the set of distinct conditions in an analysis run
//! is bounded and reused heavily across inserts, joins and prunes.
//!
//! The pool also offers [`conj`] / [`disj`] / [`neg`] directly on ids.
//! These mirror the tree smart constructors [`Condition::and`],
//! [`Condition::or`] and [`Condition::negate`] **exactly** — constant
//! folding, `And`/`Or` flattening, double-negation and atom-operator
//! negation — so `resolve(conj(intern(a), intern(b)))` is structurally
//! equal to `a.and(b)`. The bit-identity proptest suites rely on this.
//!
//! A second small interner maps list constants (`Const::List`) to
//! dense [`ListId`]s so columnar storage cells stay `Copy`.

use crate::condition::{Atom, Condition};
use crate::value::Const;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// An interned condition. Cheap to copy, hash, and compare; equal ids
/// iff the interned conditions are structurally equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CondId(u32);

impl CondId {
    /// The id of [`Condition::False`] (always slot 0).
    pub const FALSE: CondId = CondId(0);
    /// The id of [`Condition::True`] (always slot 1).
    pub const TRUE: CondId = CondId(1);

    /// The raw pool index. Stable for the life of the process; useful
    /// as a shard or memo key.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Whether this is the interned [`Condition::True`].
    pub fn is_true(self) -> bool {
        self == CondId::TRUE
    }

    /// Whether this is the interned [`Condition::False`].
    pub fn is_false(self) -> bool {
        self == CondId::FALSE
    }
}

/// Structural key of one pool node: children are ids, so equal keys
/// mean structurally equal trees by induction.
#[derive(Clone, PartialEq, Eq, Hash)]
enum NodeKey {
    False,
    True,
    Atom(Atom),
    Not(u32),
    And(Vec<u32>),
    Or(Vec<u32>),
}

struct Pool {
    dedup: HashMap<NodeKey, u32>,
    kinds: Vec<NodeKey>,
    /// One materialised tree per id, so `resolve` is an O(1)
    /// (Arc-backed) clone. Subtrees are shared: a node's cached tree
    /// holds the cached trees of its children.
    conds: Vec<Condition>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut p = Pool {
            dedup: HashMap::new(),
            kinds: Vec::new(),
            conds: Vec::new(),
        };
        // Pin False to 0 and True to 1 so the constants above hold.
        p.dedup.insert(NodeKey::False, 0);
        p.kinds.push(NodeKey::False);
        p.conds.push(Condition::False);
        p.dedup.insert(NodeKey::True, 1);
        p.kinds.push(NodeKey::True);
        p.conds.push(Condition::True);
        RwLock::new(p)
    })
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time pool counters, exported through the bench/CLI
/// `pool` metrics block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Dedup lookups that found an existing node.
    pub hits: u64,
    /// Dedup lookups that allocated a new node.
    pub misses: u64,
    /// Number of distinct condition nodes interned.
    pub size: usize,
}

impl PoolStats {
    /// hits / (hits + misses), or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter movement since `baseline` (an earlier [`pool_stats`]
    /// snapshot). `hits`/`misses` are the lookups performed in
    /// between; `size` is the pool size *now*, since the pool only
    /// grows and the absolute size is what callers report.
    ///
    /// The pool counters are process-global and cumulative, so a raw
    /// value observed mid-suite depends on every test that ran before
    /// it in the same process. Assertions about a region of interest
    /// (a bench stage, one evaluation) must take a snapshot first and
    /// assert on the delta, never on the absolute counters.
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            size: self.size,
        }
    }
}

/// Snapshot of the pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        size: pool().read().expect("condition pool poisoned").kinds.len(),
    }
}

/// Pool counter movement since `baseline`: shorthand for
/// `pool_stats().since(baseline)`. Use this to scope hit-rate
/// assertions to a region of interest instead of depending on
/// whatever ran earlier in the process.
pub fn pool_stats_since(baseline: &PoolStats) -> PoolStats {
    pool_stats().since(baseline)
}

/// Looks `key` up in the pool, inserting a node materialised by
/// `make` when absent. `make` runs with **no lock held** (it may read
/// the pool itself, e.g. to clone child trees); a racing insert of the
/// same key is resolved by the re-check under the write lock — both
/// racers materialise structurally equal trees, first one in wins.
fn intern_node(key: NodeKey, make: impl FnOnce() -> Condition) -> CondId {
    let lock = pool();
    if let Some(&id) = lock
        .read()
        .expect("condition pool poisoned")
        .dedup
        .get(&key)
    {
        HITS.fetch_add(1, Ordering::Relaxed);
        return CondId(id);
    }
    let cond = make();
    let mut w = lock.write().expect("condition pool poisoned");
    if let Some(&id) = w.dedup.get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return CondId(id);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let id = u32::try_from(w.kinds.len()).expect("condition pool overflow");
    w.kinds.push(key.clone());
    w.conds.push(cond);
    w.dedup.insert(key, id);
    CondId(id)
}

/// Interns a condition, returning its [`CondId`].
///
/// Interning performs **no** simplification — empty or singleton
/// `And`/`Or` nodes, nested negations, everything is preserved — so
/// `resolve(intern(c))` is structurally identical to `c` and interning
/// is idempotent.
pub fn intern(cond: &Condition) -> CondId {
    match cond {
        Condition::False => CondId::FALSE,
        Condition::True => CondId::TRUE,
        Condition::Atom(a) => intern_node(NodeKey::Atom(a.clone()), || cond.clone()),
        Condition::Not(inner) => {
            let child = intern(inner);
            intern_node(NodeKey::Not(child.0), || cond.clone())
        }
        Condition::And(cs) => {
            let ids: Vec<u32> = cs.iter().map(|c| intern(c).0).collect();
            intern_node(NodeKey::And(ids), || cond.clone())
        }
        Condition::Or(cs) => {
            let ids: Vec<u32> = cs.iter().map(|c| intern(c).0).collect();
            intern_node(NodeKey::Or(ids), || cond.clone())
        }
    }
}

/// Returns the condition an id was interned from. O(1): clones the
/// cached (Arc-backed, structurally shared) tree.
pub fn resolve(id: CondId) -> Condition {
    pool().read().expect("condition pool poisoned").conds[id.0 as usize].clone()
}

/// The interned children of an `And` node, or `None` for any other
/// kind. Used by callers that flatten conjunctions id-wise.
fn and_children(id: CondId) -> Option<Vec<u32>> {
    match &pool().read().expect("condition pool poisoned").kinds[id.0 as usize] {
        NodeKey::And(cs) => Some(cs.clone()),
        _ => None,
    }
}

fn or_children(id: CondId) -> Option<Vec<u32>> {
    match &pool().read().expect("condition pool poisoned").kinds[id.0 as usize] {
        NodeKey::Or(cs) => Some(cs.clone()),
        _ => None,
    }
}

fn materialize_nary(children: &[u32], conj_node: bool) -> Condition {
    let kids: Vec<Condition> = {
        let r = pool().read().expect("condition pool poisoned");
        children
            .iter()
            .map(|&c| r.conds[c as usize].clone())
            .collect()
    };
    if conj_node {
        Condition::And(Arc::new(kids))
    } else {
        Condition::Or(Arc::new(kids))
    }
}

/// Pooled conjunction. Mirrors [`Condition::and`]: `False` dominates,
/// `True` disappears, nested `And`s flatten.
pub fn conj(a: CondId, b: CondId) -> CondId {
    if a.is_false() || b.is_false() {
        return CondId::FALSE;
    }
    if a.is_true() {
        return b;
    }
    if b.is_true() {
        return a;
    }
    let children = match (and_children(a), and_children(b)) {
        (Some(mut xs), Some(ys)) => {
            xs.extend(ys);
            xs
        }
        (Some(mut xs), None) => {
            xs.push(b.0);
            xs
        }
        (None, Some(ys)) => {
            let mut xs = Vec::with_capacity(ys.len() + 1);
            xs.push(a.0);
            xs.extend(ys);
            xs
        }
        (None, None) => vec![a.0, b.0],
    };
    let key = NodeKey::And(children);
    intern_node(key.clone(), || match &key {
        NodeKey::And(cs) => materialize_nary(cs, true),
        _ => unreachable!(),
    })
}

/// Pooled disjunction. Mirrors [`Condition::or`]: `True` dominates,
/// `False` disappears, nested `Or`s flatten.
pub fn disj(a: CondId, b: CondId) -> CondId {
    if a.is_true() || b.is_true() {
        return CondId::TRUE;
    }
    if a.is_false() {
        return b;
    }
    if b.is_false() {
        return a;
    }
    let children = match (or_children(a), or_children(b)) {
        (Some(mut xs), Some(ys)) => {
            xs.extend(ys);
            xs
        }
        (Some(mut xs), None) => {
            xs.push(b.0);
            xs
        }
        (None, Some(ys)) => {
            let mut xs = Vec::with_capacity(ys.len() + 1);
            xs.push(a.0);
            xs.extend(ys);
            xs
        }
        (None, None) => vec![a.0, b.0],
    };
    let key = NodeKey::Or(children);
    intern_node(key.clone(), || match &key {
        NodeKey::Or(cs) => materialize_nary(cs, false),
        _ => unreachable!(),
    })
}

/// Pooled negation. Mirrors [`Condition::negate`]: constant folding,
/// double-negation elimination, direct atom-operator negation.
pub fn neg(id: CondId) -> CondId {
    if id.is_true() {
        return CondId::FALSE;
    }
    if id.is_false() {
        return CondId::TRUE;
    }
    let kind = {
        let r = pool().read().expect("condition pool poisoned");
        match &r.kinds[id.0 as usize] {
            NodeKey::Not(inner) => return CondId(*inner),
            NodeKey::Atom(a) => NodeKey::Atom(Atom {
                lhs: a.lhs.clone(),
                op: a.op.negated(),
                rhs: a.rhs.clone(),
            }),
            _ => NodeKey::Not(id.0),
        }
    };
    match kind {
        NodeKey::Atom(a) => {
            let cond = Condition::Atom(a.clone());
            intern_node(NodeKey::Atom(a), move || cond)
        }
        NodeKey::Not(inner) => intern_node(NodeKey::Not(inner), || {
            Condition::Not(Arc::new(resolve(id)))
        }),
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------------
// List constants
// ---------------------------------------------------------------------------

/// An interned list constant (`Const::List` payload). `Copy`, so it
/// can live in a columnar storage cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ListId(u32);

struct ListPool {
    dedup: HashMap<Arc<[Const]>, u32>,
    lists: Vec<Arc<[Const]>>,
}

fn list_pool() -> &'static RwLock<ListPool> {
    static LISTS: OnceLock<RwLock<ListPool>> = OnceLock::new();
    LISTS.get_or_init(|| {
        RwLock::new(ListPool {
            dedup: HashMap::new(),
            lists: Vec::new(),
        })
    })
}

/// Interns a list constant payload by content.
pub fn intern_list(items: &Arc<[Const]>) -> ListId {
    let lock = list_pool();
    if let Some(&id) = lock.read().expect("list pool poisoned").dedup.get(items) {
        return ListId(id);
    }
    let mut w = lock.write().expect("list pool poisoned");
    if let Some(&id) = w.dedup.get(items) {
        return ListId(id);
    }
    let id = u32::try_from(w.lists.len()).expect("list pool overflow");
    w.lists.push(Arc::clone(items));
    w.dedup.insert(Arc::clone(items), id);
    ListId(id)
}

/// Returns the list payload an id was interned from (O(1) Arc clone).
pub fn resolve_list(id: ListId) -> Arc<[Const]> {
    Arc::clone(&list_pool().read().expect("list pool poisoned").lists[id.0 as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvar::{CVarRegistry, Domain};
    use crate::term::Term;

    fn vars2() -> (crate::cvar::CVarId, crate::cvar::CVarId) {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("px", Domain::Bool01);
        let y = reg.fresh("py", Domain::Bool01);
        (x, y)
    }

    #[test]
    fn constants_pinned() {
        assert_eq!(intern(&Condition::False), CondId::FALSE);
        assert_eq!(intern(&Condition::True), CondId::TRUE);
        assert_eq!(resolve(CondId::TRUE), Condition::True);
        assert_eq!(resolve(CondId::FALSE), Condition::False);
    }

    #[test]
    fn intern_resolve_round_trip() {
        let (x, y) = vars2();
        let c = Condition::eq(Term::Var(x), Term::int(1))
            .and(Condition::ne(Term::Var(y), Term::int(0)))
            .or(Condition::eq(Term::Var(y), Term::int(1)))
            .negate();
        let id = intern(&c);
        assert_eq!(resolve(id), c);
        assert_eq!(intern(&c), id);
        assert_eq!(intern(&resolve(id)), id);
    }

    #[test]
    fn equal_structure_equal_id() {
        let (x, _) = vars2();
        let a = Condition::eq(Term::Var(x), Term::int(1));
        let b = Condition::eq(Term::Var(x), Term::int(1));
        assert_eq!(intern(&a), intern(&b));
        assert_ne!(
            intern(&a),
            intern(&Condition::ne(Term::Var(x), Term::int(1)))
        );
    }

    #[test]
    fn pooled_ops_match_tree_ops() {
        let (x, y) = vars2();
        let shapes = [
            Condition::True,
            Condition::False,
            Condition::eq(Term::Var(x), Term::int(1)),
            Condition::ne(Term::Var(y), Term::int(0)),
            Condition::eq(Term::Var(x), Term::int(1))
                .and(Condition::ne(Term::Var(y), Term::int(0))),
            Condition::eq(Term::Var(x), Term::int(0)).or(Condition::eq(Term::Var(y), Term::int(1))),
            Condition::eq(Term::Var(x), Term::int(2)).negate().negate(),
        ];
        for a in &shapes {
            assert_eq!(resolve(neg(intern(a))), a.clone().negate(), "neg {a:?}");
            for b in &shapes {
                assert_eq!(
                    resolve(conj(intern(a), intern(b))),
                    a.clone().and(b.clone()),
                    "conj {a:?} {b:?}"
                );
                assert_eq!(
                    resolve(disj(intern(a), intern(b))),
                    a.clone().or(b.clone()),
                    "disj {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn singleton_and_empty_nodes_survive() {
        // intern() must not simplify: degenerate nodes round-trip.
        let (x, _) = vars2();
        let single = Condition::conj(vec![Condition::eq(Term::Var(x), Term::int(1))]);
        let empty = Condition::disj(vec![]);
        assert_eq!(resolve(intern(&single)), single);
        assert_eq!(resolve(intern(&empty)), empty);
    }

    #[test]
    fn stats_grow() {
        let before = pool_stats();
        let (x, y) = vars2();
        let c = Condition::eq(Term::Var(x), Term::int(7))
            .and(Condition::eq(Term::Var(y), Term::int(9)));
        intern(&c);
        intern(&c);
        let after = pool_stats();
        assert!(after.size >= before.size);
        assert!(after.hits > before.hits, "second intern must hit");
    }

    #[test]
    fn scoped_stats_are_order_independent() {
        // Warm the pool with unrelated work, then assert on the delta
        // of a scoped region: the numbers must not depend on how much
        // ran before the snapshot.
        let (x, y) = vars2();
        intern(&Condition::eq(Term::Var(x), Term::int(100)));
        let baseline = pool_stats();
        let c = Condition::eq(Term::Var(x), Term::int(101))
            .and(Condition::eq(Term::Var(y), Term::int(102)));
        intern(&c);
        intern(&c);
        let scoped = pool_stats_since(&baseline);
        // The second intern of `c` hits on every node; the first may
        // hit or miss per node depending on prior process history, but
        // the scoped delta always shows both activity and hits.
        // `c` is three nodes (two atoms + one And); the second intern
        // hits on each.
        assert!(scoped.hits >= 3, "re-intern must hit per node: {scoped:?}");
        assert!(scoped.hit_rate() > 0.0);
        assert_eq!(scoped.size, pool_stats().size);
        // A no-op region reads as a zero delta.
        let quiet = pool_stats_since(&pool_stats());
        assert_eq!(quiet.hits, 0);
        assert_eq!(quiet.misses, 0);
    }

    #[test]
    fn list_interning_round_trips() {
        let items: Arc<[Const]> = vec![Const::sym("A"), Const::int(3)].into();
        let id = intern_list(&items);
        assert_eq!(intern_list(&items), id);
        assert_eq!(resolve_list(id), items);
        let other: Arc<[Const]> = vec![Const::sym("B")].into();
        assert_ne!(intern_list(&other), id);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let (x, _) = vars2();
        let c = Condition::eq(Term::Var(x), Term::int(42));
        let ids: Vec<CondId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| intern(&c)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
