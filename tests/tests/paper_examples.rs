//! End-to-end reproduction of every worked example in the paper,
//! spanning all crates.

use faure_core::{evaluate, parse_program, run};
use faure_ctable::{examples::table2_path_db, Condition, Term};
use faure_net::{enterprise, frr, queries, rib};
use faure_verify::{category_i, category_ii, check_direct, verify, Constraint, Level};

// ---------------------------------------------------------------------------
// §3 — Table 2 and queries q1–q3
// ---------------------------------------------------------------------------

/// q1 on the *regular* database PATH: the answer is exactly {⟨3⟩}.
#[test]
fn q1_on_regular_path_database() {
    use faure_ctable::{CTuple, Const, Database, Schema};
    let mut db = Database::new();
    db.create_relation(Schema::new("P", &["dest", "path"]))
        .unwrap();
    for (d, path) in [
        ("1.2.3.4", vec!["A", "B", "C"]),
        ("1.2.3.5", vec!["A", "B", "E"]),
        ("1.2.3.6", vec!["A", "D", "E", "C"]),
    ] {
        db.insert(
            "P",
            CTuple::new([Term::sym(d), Term::Const(Const::path(&path))]),
        )
        .unwrap();
    }
    db.create_relation(Schema::new("C", &["path", "cost"]))
        .unwrap();
    for (path, cost) in [
        (vec!["A", "B", "C"], 3),
        (vec!["A", "D", "E", "C"], 4),
        (vec!["A", "B", "E"], 3),
    ] {
        db.insert(
            "C",
            CTuple::new([Term::Const(Const::path(&path)), Term::int(cost)]),
        )
        .unwrap();
    }
    let out = run(r#"Q1(c) :- P("1.2.3.4", p), C(p, c)."#, &db).unwrap();
    let rel = out.relation("Q1").unwrap();
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.tuples[0].terms, vec![Term::int(3)]);
    assert_eq!(rel.tuples[0].cond, Condition::True);
}

/// q2 on PATH': {⟨3 [x̄=[ABC]]⟩, ⟨4 [x̄=[ADEC]]⟩}.
#[test]
fn q2_on_ctable_path_database() {
    let (db, vars) = table2_path_db();
    let out = run(r#"Q2(c) :- P("1.2.3.4", p), C(p, c)."#, &db).unwrap();
    let rel = out.relation("Q2").unwrap();
    assert_eq!(rel.len(), 2);
    use faure_ctable::Const;
    let abc = Condition::eq(
        Term::Var(vars.x),
        Term::Const(Const::path(&["A", "B", "C"])),
    );
    let adec = Condition::eq(
        Term::Var(vars.x),
        Term::Const(Const::path(&["A", "D", "E", "C"])),
    );
    for row in rel.iter() {
        let cost = row.terms[0].as_const().unwrap().as_int().unwrap();
        let expected = if cost == 3 { &abc } else { &adec };
        assert!(
            faure_solver::equivalent(&out.database.cvars, &row.cond, expected).unwrap(),
            "cost {cost} condition {:?}",
            row.cond
        );
    }
}

/// q3 on PATH': {⟨3⟩} via implicit pattern matching against ȳ.
#[test]
fn q3_implicit_pattern_matching() {
    let (db, vars) = table2_path_db();
    let out = run(r#"Q3(c) :- P("1.2.3.5", p), C(p, c)."#, &db).unwrap();
    let rel = out.relation("Q3").unwrap();
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.tuples[0].terms, vec![Term::int(3)]);
    // Condition: ȳ ≠ 1.2.3.4 ∧ ȳ = 1.2.3.5 ≡ ȳ = 1.2.3.5.
    assert!(faure_solver::equivalent(
        &out.database.cvars,
        &rel.tuples[0].cond,
        &Condition::eq(Term::Var(vars.y), Term::sym("1.2.3.5")),
    )
    .unwrap());
}

// ---------------------------------------------------------------------------
// §4 — Figure 1 / Table 3 / Listing 2
// ---------------------------------------------------------------------------

/// Table 3's R fragment: the reachability rows the paper prints, with
/// logically equivalent conditions.
#[test]
fn table3_reachability_fragment() {
    let (db, vars) = frr::figure1_database();
    let out = evaluate(&queries::reachability_program(), &db).unwrap();
    let reg = &out.database.cvars;
    let r = out.relation("R").unwrap();
    let find = |a: i64, b: i64| {
        r.iter()
            .find(|t| t.terms == vec![Term::int(1), Term::int(a), Term::int(b)])
            .unwrap_or_else(|| panic!("R(1,{a},{b}) missing"))
    };
    // R(1,2) [x̄ = 1]
    assert!(faure_solver::equivalent(
        reg,
        &find(1, 2).cond,
        &Condition::eq(Term::Var(vars.x), Term::int(1))
    )
    .unwrap());
    // R(2,3) [ȳ = 1]
    assert!(faure_solver::equivalent(
        reg,
        &find(2, 3).cond,
        &Condition::eq(Term::Var(vars.y), Term::int(1))
    )
    .unwrap());
    // R(1,5): true under EVERY failure combination (the four
    // conditions of Table 3 plus the fifth the fragment omits).
    assert_eq!(find(1, 5).cond, Condition::True);
}

/// Listing 2's q7: between 2 and 5 under a 2-link failure, one of them
/// being (2,3).
#[test]
fn listing2_q7_semantics() {
    let (db, vars) = frr::figure1_database();
    let out = evaluate(&queries::listing2_program(2, 5, 1), &db).unwrap();
    let t2 = out.relation("T2").unwrap();
    assert_eq!(t2.len(), 1);
    // Exactly one world satisfies the condition: ȳ=0 ∧ (x̄+ȳ+z̄=1) with
    // 2→5 reachable. With ȳ=0 the detour is 2→4→5, which is always up,
    // so the condition is x̄+z̄=1 ∧ ȳ=0: two worlds (x̄=1,z̄=0), (x̄=0,z̄=1).
    use faure_ctable::{CmpOp, LinExpr};
    let expected = Condition::cmp(
        LinExpr::sum([vars.x, vars.y, vars.z]),
        CmpOp::Eq,
        LinExpr::constant(1),
    )
    .and(Condition::eq(Term::Var(vars.y), Term::int(0)));
    assert!(faure_solver::equivalent(&out.database.cvars, &t2.tuples[0].cond, &expected).unwrap());
}

// ---------------------------------------------------------------------------
// §5 — the full multi-team narrative
// ---------------------------------------------------------------------------

#[test]
fn section5_full_narrative() {
    let known = vec![
        Constraint::new("C_lb", enterprise::c_lb()).unwrap(),
        Constraint::new("C_s", enterprise::c_s()).unwrap(),
    ];
    let t1 = Constraint::new("T1", enterprise::t1()).unwrap();
    let t2 = Constraint::new("T2", enterprise::t2()).unwrap();
    let reg = enterprise::constraint_registry();
    let update = enterprise::listing4_update();

    // Category (i): T1 subsumed, T2 not.
    assert!(category_i(&known, &t1, &reg).unwrap().proven());
    assert!(!category_i(&known, &t2, &reg).unwrap().proven());

    // Category (ii): with the Listing 4 update, T2 is proven.
    assert!(category_ii(&known, &t2, &update, &reg).unwrap().proven());

    // The ladder reports the right deciding levels.
    let r1 = verify(&known, &t1, Some(&update), None, &reg).unwrap();
    assert_eq!(r1.decided_by(), Some(Level::CategoryI));
    let r2 = verify(&known, &t2, Some(&update), None, &reg).unwrap();
    assert_eq!(r2.decided_by(), Some(Level::CategoryII));

    // Ground truth: on the compliant state, after actually applying the
    // update, T2 indeed still holds.
    let (mut db, _) = enterprise::compliant_net();
    faure_core::apply_to_database(&update, &mut db).unwrap();
    assert!(check_direct(&t2, &db).unwrap().holds());
}

/// Subsumption must be consistent with direct checking wherever both
/// apply: if {C_lb, C_s} subsume T, then on any state where the
/// policies hold, T holds.
#[test]
fn subsumption_sound_against_direct() {
    let known = vec![
        Constraint::new("C_lb", enterprise::c_lb()).unwrap(),
        Constraint::new("C_s", enterprise::c_s()).unwrap(),
    ];
    let t1 = Constraint::new("T1", enterprise::t1()).unwrap();
    let reg = enterprise::constraint_registry();
    assert!(category_i(&known, &t1, &reg).unwrap().proven());

    // Exhaustively try tiny states: subsets of R/Lb/Fw rows.
    use faure_ctable::{CTuple, Database, Schema};
    let subnets = ["Mkt", "R&D"];
    let servers = ["CS", "GS"];
    let ports = [80, 7000];
    let mut states_where_policies_hold = 0;
    for r_mask in 0..8u32 {
        // Up to 3 R rows chosen from a fixed pool.
        let pool = [("Mkt", "CS", 7000), ("R&D", "CS", 7000), ("Mkt", "GS", 80)];
        for lb_mask in 0..4u32 {
            for fw_mask in 0..4u32 {
                let mut db = Database::new();
                db.create_relation(Schema::new("R", &["s", "d", "p"]))
                    .unwrap();
                db.create_relation(Schema::new("Lb", &["s", "d"])).unwrap();
                db.create_relation(Schema::new("Fw", &["s", "d"])).unwrap();
                for (i, (s, d, p)) in pool.iter().enumerate() {
                    if r_mask & (1 << i) != 0 {
                        db.insert(
                            "R",
                            CTuple::new([Term::sym(s), Term::sym(d), Term::int(*p)]),
                        )
                        .unwrap();
                    }
                }
                for (i, s) in subnets.iter().enumerate() {
                    if lb_mask & (1 << i) != 0 {
                        db.insert("Lb", CTuple::new([Term::sym(s), Term::sym("CS")]))
                            .unwrap();
                    }
                    if fw_mask & (1 << i) != 0 {
                        for d in servers {
                            db.insert("Fw", CTuple::new([Term::sym(s), Term::sym(d)]))
                                .unwrap();
                        }
                    }
                }
                let _ = ports;
                let clb_holds = check_direct(&known[0], &db).unwrap().holds();
                let cs_holds = check_direct(&known[1], &db).unwrap().holds();
                if clb_holds && cs_holds {
                    states_where_policies_hold += 1;
                    assert!(
                        check_direct(&t1, &db).unwrap().holds(),
                        "subsumption promised T1 holds whenever policies hold"
                    );
                }
            }
        }
    }
    assert!(states_where_policies_hold > 0, "vacuous test");
}

// ---------------------------------------------------------------------------
// §6 — pipeline smoke test on the synthetic RIB
// ---------------------------------------------------------------------------

#[test]
fn rib_pipeline_produces_phase_stats() {
    let w = rib::generate(&rib::RibParams {
        prefixes: 30,
        as_count: 128,
        ..Default::default()
    });
    let out = evaluate(&queries::reachability_program(), &w.db).unwrap();
    assert!(out.stats.tuples > 0);
    assert!(out.stats.relational > std::time::Duration::ZERO);
    // The solver phase ran (EndOfStratum pruning).
    assert!(out.stats.solver_stats.simplify_calls > 0);

    // Nested queries run downstream of R.
    let out6 = evaluate(&queries::q6_two_link_failure(), &out.database).unwrap();
    assert!(out6.relation("T1").is_some());
    // Every T1 tuple's condition is satisfiable post-pruning.
    for t in out6.relation("T1").unwrap().iter().take(5) {
        assert!(faure_solver::satisfiable(&out6.database.cvars, &t.cond).unwrap());
    }
}

/// Table-shape sanity: more prefixes, more tuples (the scaling that
/// Table 4's #tuples column tracks).
#[test]
fn rib_tuple_counts_scale() {
    let sizes = [10, 20, 40];
    let mut counts = Vec::new();
    for &n in &sizes {
        let w = rib::generate(&rib::RibParams {
            prefixes: n,
            as_count: 128,
            ..Default::default()
        });
        let out = faure_core::evaluate_with(
            &queries::reachability_program(),
            &w.db,
            &faure_core::EvalOptions {
                prune: faure_core::PrunePolicy::Never,
                ..Default::default()
            },
        )
        .unwrap();
        counts.push(out.stats.tuples);
    }
    assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
}

#[test]
fn parse_rejects_malformed_inputs() {
    for bad in [
        "R(a, b :- F(a, b).",
        "R(a,b) :- F(a,b)",
        ":- F(a).",
        "R(a) :- F(a), a <.",
    ] {
        assert!(parse_program(bad).is_err(), "should reject: {bad}");
    }
}
