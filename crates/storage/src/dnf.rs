//! Minimal-DNF condition representation.
//!
//! Fixpoint evaluation over cyclic forwarding graphs re-derives the
//! same tuple along many walks; each walk contributes a conjunction of
//! link conditions, and a walk that uses a *superset* of another
//! walk's links contributes a strictly weaker disjunct. Keeping every
//! such disjunct makes row conditions — and the fixpoint itself —
//! explode combinatorially.
//!
//! The classical remedy (minimal witnesses / irredundant DNF) is
//! implemented here: a condition is normalised to a **set of atom
//! sets** (disjunction of conjunctions) kept as an *antichain* under
//! set inclusion, with two cheap local reductions applied per set:
//!
//! * ground atoms are folded (true → dropped, false → set removed);
//! * directly contradictory pairs over one c-variable (`v̄ = a ∧ v̄ = b`
//!   with `a ≠ b`, or `v̄ = a ∧ v̄ ≠ a`) remove the set — these arise
//!   whenever conditions of *different backup paths* of the same
//!   prefix are conjoined, so catching them locally keeps the engine
//!   polynomial on the RIB workload.
//!
//! Conversion distributes `∧` over `∨` and can therefore blow up on
//! adversarial inputs; [`to_min_dnf`] gives up beyond a set budget and
//! the caller falls back to the opaque structural representation.

use faure_ctable::{Atom, CmpOp, Condition, Expr, Term};
use std::collections::BTreeSet;

/// One conjunction of (normalised) atoms.
pub type AtomSet = BTreeSet<Atom>;

/// Budget for [`to_min_dnf`]: conversions that would exceed this many
/// sets (at any intermediate step) abort.
pub const DEFAULT_SET_BUDGET: usize = 256;

/// Result of folding a single atom.
enum FoldedAtom {
    True,
    False,
    Keep(Atom),
}

fn fold_atom(atom: &Atom) -> FoldedAtom {
    let mut vars = BTreeSet::new();
    atom.cvars(&mut vars);
    if vars.is_empty() {
        match atom.eval(&|_| unreachable!("ground atom")) {
            Some(true) => FoldedAtom::True,
            Some(false) | None => FoldedAtom::False,
        }
    } else {
        FoldedAtom::Keep(atom.clone().normalized())
    }
}

/// Extracts `(v̄, const)` from a var-vs-const atom in either
/// orientation, if the atom has that shape.
fn var_const_sides(a: &Atom) -> Option<(faure_ctable::CVarId, &faure_ctable::Const)> {
    match (&a.lhs, &a.rhs) {
        (Expr::Term(Term::Var(v)), Expr::Term(Term::Const(c)))
        | (Expr::Term(Term::Const(c)), Expr::Term(Term::Var(v))) => Some((*v, c)),
        _ => None,
    }
}

/// Does the set contain a directly visible contradiction over a single
/// c-variable? (Complete contradiction detection is the solver's job;
/// this is the cheap filter applied during construction.)
fn set_contradictory(set: &AtomSet) -> bool {
    // Collect `v̄ = const` bindings, then check each binding against
    // every other eq/ne atom on the same variable.
    let mut bound: Vec<(faure_ctable::CVarId, &faure_ctable::Const)> = Vec::new();
    for a in set {
        if a.op == CmpOp::Eq {
            if let Some(pair) = var_const_sides(a) {
                bound.push(pair);
            }
        }
    }
    if bound.is_empty() {
        return false;
    }
    for a in set {
        let Some((v, c)) = var_const_sides(a) else {
            continue;
        };
        match a.op {
            CmpOp::Eq if bound.iter().any(|&(bv, bc)| bv == v && bc != c) => {
                return true;
            }
            CmpOp::Ne if bound.iter().any(|&(bv, bc)| bv == v && bc == c) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Inserts `new` into the antichain `sets`: skipped if some existing
/// set is a subset of `new` (subsumes it); existing supersets of `new`
/// are removed. Returns whether the antichain changed.
pub fn antichain_insert(sets: &mut Vec<AtomSet>, new: AtomSet) -> bool {
    if sets.iter().any(|existing| existing.is_subset(&new)) {
        return false;
    }
    sets.retain(|existing| !new.is_subset(existing));
    sets.push(new);
    true
}

/// Converts `cond` to a minimal DNF within `budget` sets.
///
/// Returns `None` if the conversion would exceed the budget (caller
/// keeps the structural form). `Some(vec![])` means *false*;
/// `Some(vec![{}])` means *true*.
pub fn to_min_dnf(cond: &Condition, budget: usize) -> Option<Vec<AtomSet>> {
    // Fast path: derived-row conditions are overwhelmingly flat
    // conjunctions of atoms; build their single atom-set directly
    // instead of running the general distribute-and-minimise product.
    if let Some(sets) = conjunction_fast_path(cond) {
        return Some(sets);
    }
    convert(cond, false, budget)
}

/// Collects the atoms of a pure conjunction (`True`, an atom, or `And`
/// nests thereof), folding ground atoms. Returns `false` on any other
/// shape, or when a ground-false atom makes the conjunction false
/// (flagged via the `dead` out-parameter).
fn collect_conj_atoms(cond: &Condition, set: &mut AtomSet, dead: &mut bool) -> bool {
    match cond {
        Condition::True => true,
        Condition::Atom(a) => {
            match fold_atom(a) {
                FoldedAtom::True => {}
                FoldedAtom::False => *dead = true,
                FoldedAtom::Keep(a) => {
                    set.insert(a);
                }
            }
            true
        }
        Condition::And(cs) => cs.iter().all(|c| *dead || collect_conj_atoms(c, set, dead)),
        _ => false,
    }
}

/// The single-set DNF of a pure conjunction, or `None` when `cond` is
/// not one. Matches `convert` exactly: ground atoms fold, and a
/// directly contradictory set means *false*.
fn conjunction_fast_path(cond: &Condition) -> Option<Vec<AtomSet>> {
    if matches!(cond, Condition::Atom(_) | Condition::True) {
        // Tiny shapes: let the general code handle them (no product
        // machinery is involved anyway).
    } else if !matches!(cond, Condition::And(_)) {
        return None;
    }
    let mut set = AtomSet::new();
    let mut dead = false;
    if !collect_conj_atoms(cond, &mut set, &mut dead) {
        return None;
    }
    if dead || set_contradictory(&set) {
        return Some(Vec::new());
    }
    Some(vec![set])
}

fn convert(cond: &Condition, negate: bool, budget: usize) -> Option<Vec<AtomSet>> {
    match (cond, negate) {
        (Condition::True, false) | (Condition::False, true) => Some(vec![AtomSet::new()]),
        (Condition::True, true) | (Condition::False, false) => Some(Vec::new()),
        (Condition::Atom(a), neg) => {
            let atom = if neg {
                Atom {
                    lhs: a.lhs.clone(),
                    op: a.op.negated(),
                    rhs: a.rhs.clone(),
                }
            } else {
                a.clone()
            };
            match fold_atom(&atom) {
                FoldedAtom::True => Some(vec![AtomSet::new()]),
                FoldedAtom::False => Some(Vec::new()),
                FoldedAtom::Keep(a) => Some(vec![std::iter::once(a).collect()]),
            }
        }
        (Condition::Not(inner), neg) => convert(inner, !neg, budget),
        (Condition::And(cs), false) | (Condition::Or(cs), true) => {
            // Product of the children's DNFs.
            let mut acc: Vec<AtomSet> = vec![AtomSet::new()];
            for c in cs.iter() {
                let child = convert(c, negate, budget)?;
                let mut next: Vec<AtomSet> = Vec::new();
                for a in &acc {
                    for b in &child {
                        let mut merged = a.clone();
                        merged.extend(b.iter().cloned());
                        if set_contradictory(&merged) {
                            continue;
                        }
                        antichain_insert(&mut next, merged);
                        if next.len() > budget {
                            return None;
                        }
                    }
                }
                acc = next;
                if acc.is_empty() {
                    break; // the whole conjunction is false
                }
            }
            Some(acc)
        }
        (Condition::Or(cs), false) | (Condition::And(cs), true) => {
            let mut acc: Vec<AtomSet> = Vec::new();
            for c in cs.iter() {
                for set in convert(c, negate, budget)? {
                    antichain_insert(&mut acc, set);
                    if acc.len() > budget {
                        return None;
                    }
                }
            }
            Some(acc)
        }
    }
}

/// Rebuilds a [`Condition`] from an antichain (disjunction of
/// conjunctions; empty = false, one empty set = true).
pub fn condition_of(sets: &[AtomSet]) -> Condition {
    if sets.is_empty() {
        return Condition::False;
    }
    let mut disjuncts = Vec::with_capacity(sets.len());
    for set in sets {
        if set.is_empty() {
            return Condition::True;
        }
        let conj: Vec<Condition> = set.iter().cloned().map(Condition::Atom).collect();
        disjuncts.push(if conj.len() == 1 {
            conj.into_iter().next().expect("len checked")
        } else {
            Condition::conj(conj)
        });
    }
    if disjuncts.len() == 1 {
        disjuncts.pop().expect("len checked")
    } else {
        Condition::disj(disjuncts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{CVarRegistry, Domain};

    fn vars() -> (CVarRegistry, faure_ctable::CVarId, faure_ctable::CVarId) {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        (reg, x, y)
    }

    fn eq(v: faure_ctable::CVarId, k: i64) -> Condition {
        Condition::eq(Term::Var(v), Term::int(k))
    }

    #[test]
    fn constants() {
        assert_eq!(to_min_dnf(&Condition::True, 8), Some(vec![AtomSet::new()]));
        assert_eq!(to_min_dnf(&Condition::False, 8), Some(vec![]));
    }

    #[test]
    fn subset_disjunct_subsumes_superset() {
        let (_, x, y) = vars();
        // (x=1) ∨ (x=1 ∧ y=1) minimises to just (x=1).
        let c = eq(x, 1).or(eq(x, 1).and(eq(y, 1)));
        let sets = to_min_dnf(&c, 8).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 1);
    }

    #[test]
    fn product_distributes_and_prunes() {
        let (_, x, y) = vars();
        // (x=1 ∨ y=1) ∧ x=1 → {x=1} (the {x=1,y=1} branch is subsumed).
        let c = eq(x, 1).or(eq(y, 1)).and(eq(x, 1));
        let sets = to_min_dnf(&c, 8).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 1);
    }

    #[test]
    fn local_contradictions_removed() {
        let (_, x, y) = vars();
        // (x=1 ∧ x=0) ∨ (y=1 ∧ y≠1) is false.
        let c = eq(x, 1)
            .and(eq(x, 0))
            .or(eq(y, 1).and(Condition::ne(Term::Var(y), Term::int(1))));
        assert_eq!(to_min_dnf(&c, 8), Some(vec![]));
    }

    #[test]
    fn cross_path_conjunction_dies_locally() {
        let (_, g, b1) = vars();
        // Path conditions c0 = {g=1} and c1 = {g=0, b1=1} conjoined:
        // contradictory on g.
        let c0 = eq(g, 1);
        let c1 = eq(g, 0).and(eq(b1, 1));
        assert_eq!(to_min_dnf(&c0.and(c1), 8), Some(vec![]));
    }

    #[test]
    fn ground_atoms_fold() {
        let (_, x, _) = vars();
        let c = Condition::eq(Term::int(1), Term::int(1)).and(eq(x, 1));
        let sets = to_min_dnf(&c, 8).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 1);
        let c2 = Condition::eq(Term::int(1), Term::int(2)).and(eq(x, 1));
        assert_eq!(to_min_dnf(&c2, 8), Some(vec![]));
    }

    #[test]
    fn negation_pushes_through() {
        let (_, x, y) = vars();
        // ¬(x=1 ∧ y=1) = x≠1 ∨ y≠1.
        let c = eq(x, 1).and(eq(y, 1)).negate();
        let sets = to_min_dnf(&c, 8).unwrap();
        assert_eq!(sets.len(), 2);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn budget_aborts() {
        // Product of k binary disjunctions over disjoint vars needs 2^k sets.
        let mut reg = CVarRegistry::new();
        let mut c = Condition::True;
        for i in 0..10 {
            let a = reg.fresh(format!("a{i}"), Domain::Bool01);
            let b = reg.fresh(format!("b{i}"), Domain::Bool01);
            c = c.and(eq(a, 1).or(eq(b, 1)));
        }
        assert_eq!(to_min_dnf(&c, 64), None);
        assert!(to_min_dnf(&c, 2048).is_some());
    }

    #[test]
    fn condition_round_trip_equivalent() {
        let (reg, x, y) = vars();
        let c = eq(x, 1)
            .and(eq(y, 0).or(eq(x, 1)))
            .or(eq(y, 1).and(eq(x, 0)));
        let sets = to_min_dnf(&c, 64).unwrap();
        let back = condition_of(&sets);
        assert!(faure_solver::equivalent(&reg, &c, &back).unwrap());
    }

    #[test]
    fn antichain_insert_maintains_minimality() {
        let (_, x, y) = vars();
        let a1: AtomSet = [Atom::new(Term::Var(x), CmpOp::Eq, Term::int(1))]
            .into_iter()
            .collect();
        let a12: AtomSet = [
            Atom::new(Term::Var(x), CmpOp::Eq, Term::int(1)),
            Atom::new(Term::Var(y), CmpOp::Eq, Term::int(1)),
        ]
        .into_iter()
        .collect();
        let mut sets = Vec::new();
        assert!(antichain_insert(&mut sets, a12.clone()));
        // Adding the smaller set evicts the superset.
        assert!(antichain_insert(&mut sets, a1.clone()));
        assert_eq!(sets, vec![a1.clone()]);
        // Re-adding the superset is a no-op.
        assert!(!antichain_insert(&mut sets, a12));
        assert_eq!(sets.len(), 1);
    }
}
