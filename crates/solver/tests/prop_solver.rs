//! Property tests: the solver must agree with brute-force enumeration
//! on every condition over finite domains.

use faure_ctable::{
    Assignment, CVarId, CVarRegistry, CmpOp, Condition, Const, Domain, LinExpr, Term,
};
use faure_solver::{equivalent, find_model, satisfiable, simplify};
use proptest::prelude::*;

const NVARS: u32 = 4;

/// Registry with 4 c-variables: two over {0,1}, one over {0,1,2}, one
/// over a symbolic domain.
fn registry() -> CVarRegistry {
    let mut reg = CVarRegistry::new();
    reg.fresh("a", Domain::Bool01);
    reg.fresh("b", Domain::Bool01);
    reg.fresh("c", Domain::Ints(vec![0, 1, 2]));
    reg.fresh(
        "s",
        Domain::Consts(vec![Const::sym("Mkt"), Const::sym("R&D"), Const::sym("CS")]),
    );
    reg
}

fn arb_numeric_var() -> impl Strategy<Value = CVarId> {
    (0u32..3).prop_map(CVarId)
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_atom() -> impl Strategy<Value = Condition> {
    prop_oneof![
        // term comparison: numeric var vs small int
        (arb_numeric_var(), arb_op(), -1i64..4)
            .prop_map(|(v, op, k)| { Condition::cmp(Term::Var(v), op, Term::int(k)) }),
        // term comparison: numeric var vs numeric var
        (arb_numeric_var(), arb_op(), arb_numeric_var())
            .prop_map(|(v, op, w)| { Condition::cmp(Term::Var(v), op, Term::Var(w)) }),
        // symbolic var (id 3) vs symbolic constant, Eq/Ne only
        (prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Ne)], 0usize..3).prop_map(|(op, i)| {
            let syms = ["Mkt", "R&D", "CS"];
            Condition::cmp(Term::Var(CVarId(3)), op, Term::sym(syms[i]))
        }),
        // linear: sum of two numeric vars vs constant
        (arb_numeric_var(), arb_numeric_var(), arb_op(), 0i64..4).prop_map(|(v, w, op, k)| {
            Condition::cmp(LinExpr::var(v).plus_var(1, w), op, LinExpr::constant(k))
        }),
    ]
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    let leaf = prop_oneof![Just(Condition::True), Just(Condition::False), arb_atom(),];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Condition::conj),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Condition::disj),
            inner.prop_map(|c| c.negate()),
        ]
    })
}

/// Brute-force: enumerate every assignment of all 4 variables and check
/// whether any satisfies the condition.
fn brute_force_sat(reg: &CVarRegistry, cond: &Condition) -> bool {
    let domains: Vec<Vec<Const>> = (0..NVARS)
        .map(|i| reg.domain(CVarId(i)).members().expect("finite"))
        .collect();
    let mut idx = vec![0usize; NVARS as usize];
    loop {
        let assignment = Assignment::from_pairs(
            (0..NVARS).map(|i| (CVarId(i), domains[i as usize][idx[i as usize]].clone())),
        );
        if cond.eval(&assignment.lookup()) == Some(true) {
            return true;
        }
        // odometer
        let mut carry = true;
        for i in (0..NVARS as usize).rev() {
            if !carry {
                break;
            }
            idx[i] += 1;
            if idx[i] < domains[i].len() {
                carry = false;
            } else {
                idx[i] = 0;
            }
        }
        if carry {
            return false;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solver_agrees_with_brute_force(cond in arb_condition()) {
        let reg = registry();
        let solver_says = satisfiable(&reg, &cond).expect("supported fragment");
        let brute_says = brute_force_sat(&reg, &cond);
        prop_assert_eq!(solver_says, brute_says);
    }

    #[test]
    fn models_actually_satisfy(cond in arb_condition()) {
        let reg = registry();
        if let Some(model) = find_model(&reg, &cond).expect("supported fragment") {
            // The model binds exactly the mentioned variables; extend it
            // arbitrarily for evaluation.
            let mut full = model.clone();
            for i in 0..NVARS {
                if full.get(CVarId(i)).is_none() {
                    let dom = reg.domain(CVarId(i)).members().expect("finite");
                    full.set(CVarId(i), dom[0].clone());
                }
            }
            prop_assert_eq!(cond.eval(&full.lookup()), Some(true));
        }
    }

    #[test]
    fn simplify_is_equivalence_preserving(cond in arb_condition()) {
        let reg = registry();
        let s = simplify(&cond);
        prop_assert!(equivalent(&reg, &cond, &s).expect("supported fragment"));
    }

    #[test]
    fn negation_flips_satisfiability_of_valid_and_unsat(cond in arb_condition()) {
        let reg = registry();
        let sat = satisfiable(&reg, &cond).unwrap();
        let neg_sat = satisfiable(&reg, &cond.clone().negate()).unwrap();
        // At least one of cond, ¬cond is satisfiable.
        prop_assert!(sat || neg_sat);
    }
}
