//! Per-phase timing, mirroring the paper's evaluation pipeline.
//!
//! Table 4 of the paper reports, for each query, the time spent in the
//! SQL phases (data generation + condition updates) and the time spent
//! in Z3 (pruning contradictory rows) separately. [`PhaseStats`] is the
//! accumulator threaded through evaluation so the bench harness can
//! print the same columns.

use faure_solver::session::SolverStats;
use std::time::Duration;

/// Accumulated per-phase statistics for one query evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Time in the relational phases: pattern matching, joins, and
    /// condition construction (the paper's "sql" column).
    pub relational: Duration,
    /// Time in the solver phase: satisfiability pruning and
    /// simplification (the paper's "Z3" column).
    pub solver: Duration,
    /// Number of tuples produced (the paper's "#tuples" column).
    pub tuples: usize,
    /// Number of tuples removed by the solver phase.
    pub pruned: usize,
    /// Fine-grained solver counters.
    pub solver_stats: SolverStats,
}

impl PhaseStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another stats record into this one.
    pub fn absorb(&mut self, other: &PhaseStats) {
        self.relational += other.relational;
        self.solver += other.solver;
        self.tuples += other.tuples;
        self.pruned += other.pruned;
        self.solver_stats.sat_calls += other.solver_stats.sat_calls;
        self.solver_stats.sat_true += other.solver_stats.sat_true;
        self.solver_stats.simplify_calls += other.solver_stats.simplify_calls;
        self.solver_stats.time += other.solver_stats.time;
    }

    /// Total wall-clock time (relational + solver).
    pub fn total(&self) -> Duration {
        self.relational + self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = PhaseStats {
            relational: Duration::from_millis(10),
            solver: Duration::from_millis(5),
            tuples: 3,
            pruned: 1,
            solver_stats: SolverStats::default(),
        };
        let b = PhaseStats {
            relational: Duration::from_millis(20),
            solver: Duration::from_millis(15),
            tuples: 7,
            pruned: 2,
            solver_stats: SolverStats::default(),
        };
        a.absorb(&b);
        assert_eq!(a.relational, Duration::from_millis(30));
        assert_eq!(a.solver, Duration::from_millis(20));
        assert_eq!(a.tuples, 10);
        assert_eq!(a.pruned, 3);
        assert_eq!(a.total(), Duration::from_millis(50));
    }
}
