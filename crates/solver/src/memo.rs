//! Shared, lock-sharded solver memo for parallel evaluation.
//!
//! A [`crate::Session`] memoises satisfiability and simplification
//! results keyed by the pooled [`CondId`] of the (canonical) condition
//! — interning is injective on structure, so an id key is exactly as
//! precise as the old whole-tree key while hashing a single `u32`.
//! Entries are `(CondId, generation)`-stamped. Under parallel fixpoint
//! evaluation each worker thread runs its own session; without sharing,
//! every worker would re-solve the conditions its siblings already
//! decided and the ~87 % memo hit rate the fixpoint relies on would
//! fall with the thread count. [`SharedMemo`] is the shared backing
//! store: a fixed set of mutex-protected shards, each holding a slice
//! of the condition space selected by hash.
//!
//! Sharding keeps contention low (two workers only collide when their
//! condition ids land in the same shard — the shard is just
//! `id % SHARDS`, no hashing at all) while staying dependency-free —
//! plain `std::sync::Mutex`, no lock-free machinery.
//!
//! ## Soundness under races
//!
//! The memo caches *ground truth*: `satisfiable` and `simplify_pruned`
//! are deterministic functions of the condition (given the append-only
//! registry of the run). If two workers race on the same uncached
//! condition, both compute the same answer and the second `put` is a
//! no-op overwrite — results never depend on interleaving, only the
//! hit/miss statistics do.
//!
//! ## Cross-run reuse
//!
//! Conditions reference c-variables only by [`CVarId`](faure_ctable::CVarId)
//! — a registry index — so a cached verdict is meaningful for *any*
//! registry that assigns the same `(name, domain)` sequence. A memo
//! built with [`SharedMemo::for_registry`] records the registry's
//! structural [fingerprint](faure_ctable::CVarRegistry::fingerprint);
//! callers that want to carry the memo across evaluation runs (batch
//! mode) check [`matches_registry`](SharedMemo::matches_registry) and
//! discard the memo when the signature changed.
//!
//! Each entry is additionally stamped with the run *generation* current
//! at insert time. [`begin_run`](SharedMemo::begin_run) bumps the
//! generation; a lookup that finds an entry stamped by an earlier
//! generation reports it as a **cross-run** hit, which sessions surface
//! as [`SolverStats::cross_run_hits`](crate::SolverStats::cross_run_hits)
//! so batch-mode reuse is observable in metrics.

use faure_ctable::pool::{self, CondId};
use faure_ctable::{CVarRegistry, Condition};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. A small power of two is
/// plenty: with the engine's worker counts (single digits) the
/// collision probability per access is `workers / SHARDS`.
const SHARDS: usize = 16;

/// Upper bound on entries per shard per kind, so the whole memo stays
/// within the same budget as a local session memo
/// (`MEMO_CAP = 1 << 16` entries total per kind).
const SHARD_CAP: usize = super::session::MEMO_CAP / SHARDS;

/// One memo entry: the cached value, the run generation that wrote
/// it, and the writer's shard tag (0 = untagged / single-space).
type Entry<V> = (V, u32, u8);

/// A satisfiability/simplification memo shareable across worker
/// sessions and, when fingerprinted, across evaluation runs (see
/// module docs).
///
/// Entries carry the run generation that produced them; lookups report
/// whether the hit crossed a [`begin_run`](SharedMemo::begin_run)
/// boundary.
#[derive(Debug, Default)]
pub struct SharedMemo {
    sat: Vec<Mutex<HashMap<CondId, Entry<bool>>>>,
    simplify: Vec<Mutex<HashMap<CondId, Entry<CondId>>>>,
    /// Current run generation; entries written during run `g` are
    /// cross-run hits for every run `> g`.
    generation: AtomicU32,
    /// Structural fingerprint of the registry this memo was built for,
    /// or `None` for an anonymous single-run memo.
    fingerprint: Option<u64>,
}

impl SharedMemo {
    /// An empty, anonymous memo (no registry fingerprint — valid for a
    /// single evaluation run only).
    pub fn new() -> Self {
        Self::with_fingerprint(None)
    }

    /// An empty memo keyed to `reg`'s structural fingerprint, eligible
    /// for reuse across runs whose registry
    /// [`matches_registry`](SharedMemo::matches_registry).
    pub fn for_registry(reg: &CVarRegistry) -> Self {
        Self::with_fingerprint(Some(reg.fingerprint()))
    }

    fn with_fingerprint(fingerprint: Option<u64>) -> Self {
        SharedMemo {
            sat: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            simplify: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            generation: AtomicU32::new(0),
            fingerprint,
        }
    }

    /// Whether this memo's cached verdicts are valid for `reg`: true
    /// exactly when the memo was built with
    /// [`for_registry`](SharedMemo::for_registry) over a registry with
    /// the same structural fingerprint. Anonymous memos never match.
    pub fn matches_registry(&self, reg: &CVarRegistry) -> bool {
        self.fingerprint == Some(reg.fingerprint())
    }

    /// Marks the start of a new evaluation run: entries cached before
    /// this call are reported as cross-run hits by subsequent lookups.
    /// Returns the new generation (for diagnostics).
    pub fn begin_run(&self) -> u32 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn current_generation(&self) -> u32 {
        self.generation.load(Ordering::Relaxed)
    }

    fn shard(cond: CondId) -> usize {
        cond.index() as usize % SHARDS
    }
}

/// Whether a memo hit crossed evaluation-shard boundaries: both the
/// reader and the entry's writer are tagged (non-zero) and differ.
/// Untagged traffic (the serial driver, tag `0`) never counts.
fn cross_shard(writer: u8, reader: u8) -> bool {
    writer != 0 && reader != 0 && writer != reader
}

impl SharedMemo {
    /// Cached satisfiability verdict for `cond`, if any, paired with
    /// whether the entry predates the current run generation
    /// (`(verdict, cross_run)`).
    pub fn sat_get(&self, cond: CondId) -> Option<(bool, bool)> {
        self.sat_get_from(cond, 0)
            .map(|(sat, cross_run, _)| (sat, cross_run))
    }

    /// [`sat_get`](SharedMemo::sat_get) from evaluation-shard `reader`
    /// (see [`Session::set_shard_tag`](crate::Session::set_shard_tag)):
    /// additionally reports whether the entry was written by a
    /// *different* tagged shard (`(verdict, cross_run, cross_shard)`).
    pub fn sat_get_from(&self, cond: CondId, reader: u8) -> Option<(bool, bool, bool)> {
        let gen = self.current_generation();
        self.sat[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned")
            .get(&cond)
            .map(|&(sat, entry_gen, writer)| (sat, entry_gen < gen, cross_shard(writer, reader)))
    }

    /// Caches a satisfiability verdict stamped with the current run
    /// generation (dropped once the shard is at capacity, bounding
    /// memory on adversarial workloads).
    pub fn sat_put(&self, cond: CondId, sat: bool) {
        self.sat_put_from(cond, sat, 0);
    }

    /// [`sat_put`](SharedMemo::sat_put) tagged with the writing
    /// evaluation shard (`0` = untagged driver session).
    pub fn sat_put_from(&self, cond: CondId, sat: bool, writer: u8) {
        let gen = self.current_generation();
        let mut shard = self.sat[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned");
        if shard.len() < SHARD_CAP || shard.contains_key(&cond) {
            shard.insert(cond, (sat, gen, writer));
        }
    }

    /// Cached simplification of `cond`, if any, paired with whether the
    /// entry predates the current run generation.
    pub fn simplify_get(&self, cond: CondId) -> Option<(Condition, bool)> {
        self.simplify_get_from(cond, 0)
            .map(|(c, cross_run, _)| (c, cross_run))
    }

    /// [`simplify_get`](SharedMemo::simplify_get) from evaluation-shard
    /// `reader`, reporting cross-shard reuse like
    /// [`sat_get_from`](SharedMemo::sat_get_from).
    pub fn simplify_get_from(&self, cond: CondId, reader: u8) -> Option<(Condition, bool, bool)> {
        let gen = self.current_generation();
        self.simplify[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned")
            .get(&cond)
            .map(|&(simplified, entry_gen, writer)| {
                (
                    pool::resolve(simplified),
                    entry_gen < gen,
                    cross_shard(writer, reader),
                )
            })
    }

    /// Caches a simplification result (capacity-bounded like
    /// [`sat_put`](SharedMemo::sat_put)).
    pub fn simplify_put(&self, cond: CondId, simplified: &Condition) {
        self.simplify_put_from(cond, simplified, 0);
    }

    /// [`simplify_put`](SharedMemo::simplify_put) tagged with the
    /// writing evaluation shard.
    pub fn simplify_put_from(&self, cond: CondId, simplified: &Condition, writer: u8) {
        let gen = self.current_generation();
        let simplified = pool::intern(simplified);
        let mut shard = self.simplify[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned");
        if shard.len() < SHARD_CAP || shard.contains_key(&cond) {
            shard.insert(cond, (simplified, gen, writer));
        }
    }

    /// Total cached entries (both kinds), for diagnostics.
    pub fn len(&self) -> usize {
        self.sat
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum::<usize>()
            + self
                .simplify
                .iter()
                .map(|s| s.lock().expect("memo shard poisoned").len())
                .sum::<usize>()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{Domain, Term};
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip() {
        let memo = SharedMemo::new();
        let c = pool::intern(&Condition::eq(Term::int(1), Term::int(1)));
        assert_eq!(memo.sat_get(c), None);
        memo.sat_put(c, true);
        assert_eq!(memo.sat_get(c), Some((true, false)));
        let s = pool::intern(&Condition::eq(Term::int(1), Term::int(2)));
        memo.simplify_put(s, &Condition::False);
        assert_eq!(memo.simplify_get(s), Some((Condition::False, false)));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let memo = Arc::new(SharedMemo::new());
        let conds: Vec<CondId> = (0..64)
            .map(|i| pool::intern(&Condition::eq(Term::int(i), Term::int(i % 3))))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let memo = Arc::clone(&memo);
                let conds = &conds;
                s.spawn(move || {
                    for &c in conds {
                        memo.sat_put(c, true);
                        assert_eq!(memo.sat_get(c), Some((true, false)));
                    }
                });
            }
        });
        assert_eq!(memo.len(), 64);
    }

    #[test]
    fn generations_mark_cross_run_hits() {
        let memo = SharedMemo::new();
        memo.begin_run();
        let c = pool::intern(&Condition::eq(Term::int(1), Term::int(1)));
        memo.sat_put(c, true);
        memo.simplify_put(c, &Condition::True);
        // Same run: not cross-run.
        assert_eq!(memo.sat_get(c), Some((true, false)));
        assert_eq!(memo.simplify_get(c), Some((Condition::True, false)));
        // Next run: the entries now cross the boundary.
        memo.begin_run();
        assert_eq!(memo.sat_get(c), Some((true, true)));
        assert_eq!(memo.simplify_get(c), Some((Condition::True, true)));
        // A fresh put in the new run is in-run again.
        let d = pool::intern(&Condition::eq(Term::int(2), Term::int(2)));
        memo.sat_put(d, true);
        assert_eq!(memo.sat_get(d), Some((true, false)));
    }

    #[test]
    fn fingerprint_gates_reuse() {
        let mut reg = CVarRegistry::new();
        reg.fresh("x", Domain::Bool01);
        let memo = SharedMemo::for_registry(&reg);
        assert!(memo.matches_registry(&reg));

        // Same structure, different registry instance: still matches.
        let mut twin = CVarRegistry::new();
        twin.fresh("x", Domain::Bool01);
        assert!(memo.matches_registry(&twin));

        // Different structure: invalidated.
        let mut other = CVarRegistry::new();
        other.fresh("x", Domain::Bool01);
        other.fresh("y", Domain::Open);
        assert!(!memo.matches_registry(&other));

        // Anonymous memos never claim cross-run validity.
        assert!(!SharedMemo::new().matches_registry(&reg));
    }
}
