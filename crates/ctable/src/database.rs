//! Databases: named collections of c-tables sharing one c-variable
//! registry.

use crate::cvar::{CVarId, CVarRegistry, Domain};
use crate::error::CtableError;
use crate::relation::{CTuple, Relation, Schema};
use std::collections::BTreeMap;
use std::fmt;

/// A fauré database: a c-variable registry plus named c-tables.
///
/// All relations of a database share the registry, so a c-variable may
/// appear in several tables (e.g. the same link-state variable in both
/// `F` and the derived `R` of Table 3).
#[derive(Clone, Debug, Default)]
pub struct Database {
    /// Registry of all c-variables.
    pub cvars: CVarRegistry,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh c-variable.
    pub fn fresh_cvar(&mut self, name: impl Into<String>, domain: Domain) -> CVarId {
        self.cvars.fresh(name, domain)
    }

    /// Registers a batch of fresh c-variables in one call (ids in
    /// input order) — see [`CVarRegistry::fresh_batch`].
    pub fn fresh_cvars<N: Into<String>>(
        &mut self,
        vars: impl IntoIterator<Item = (N, Domain)>,
    ) -> Vec<CVarId> {
        self.cvars.fresh_batch(vars)
    }

    /// Creates an empty relation; errors if the name is taken.
    pub fn create_relation(&mut self, schema: Schema) -> Result<(), CtableError> {
        if self.relations.contains_key(&schema.name) {
            return Err(CtableError::DuplicateRelation(schema.name));
        }
        self.relations
            .insert(schema.name.clone(), Relation::empty(schema));
        Ok(())
    }

    /// Inserts (or replaces) a relation wholesale.
    pub fn set_relation(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema.name.clone(), relation);
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Looks up a relation mutably.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Removes a relation, returning it if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Appends a tuple to the named relation.
    pub fn insert(&mut self, name: &str, tuple: CTuple) -> Result<(), CtableError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| CtableError::UnknownRelation(name.to_owned()))?
            .push(tuple)
    }

    /// Names of all relations (sorted).
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Iterator over all relations (sorted by name).
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            writeln!(f, "{}({}):", rel.schema.name, rel.schema.attrs.join(", "))?;
            for t in rel.iter() {
                writeln!(f, "  {}", t.display(&self.cvars))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn create_and_insert() {
        let mut db = Database::new();
        db.create_relation(Schema::new("F", &["a", "b"])).unwrap();
        db.insert("F", CTuple::new([Term::int(1), Term::int(2)]))
            .unwrap();
        assert_eq!(db.relation("F").unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation(Schema::new("F", &["a"])).unwrap();
        assert_eq!(
            db.create_relation(Schema::new("F", &["a"])),
            Err(CtableError::DuplicateRelation("F".into()))
        );
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = Database::new();
        assert!(matches!(
            db.insert("X", CTuple::new([Term::int(1)])),
            Err(CtableError::UnknownRelation(_))
        ));
    }

    #[test]
    fn display_lists_relations() {
        let mut db = Database::new();
        db.create_relation(Schema::new("P", &["dest", "path"]))
            .unwrap();
        db.insert("P", CTuple::new([Term::sym("1.2.3.4"), Term::sym("[ABC]")]))
            .unwrap();
        let shown = db.to_string();
        assert!(shown.contains("P(dest, path):"));
        assert!(shown.contains("(1.2.3.4, [ABC])"));
    }
}
