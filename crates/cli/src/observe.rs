//! Observability surface of the CLI: batch `eval` with `--trace` /
//! `--metrics`, and the `faure profile` text report.
//!
//! All three outputs come from the same recorded span stream
//! ([`faure_trace::Recorder`]) plus the engine's [`PhaseStats`]:
//!
//! * `--trace` renders the raw spans in Chrome `trace_event` JSON
//!   (loadable in `chrome://tracing` / Perfetto);
//! * `--metrics` rolls them up into the stable aggregated-metrics
//!   schema documented in DESIGN.md (`faure_metrics_version: 1`);
//! * `faure profile` renders a rustc-style text report (top rules by
//!   time, iteration table, solver memo hit rate).
//!
//! Batch `eval` prepares the program **once** (`Engine::prepare`) and
//! runs it against every database — the cross-query plan-reuse path the
//! engine refactor introduced — with per-database spans grouped in one
//! trace. Preparation is *hinted*: the databases are loaded first, the
//! semantic analyzer infers per-column domains against each, and the
//! intersection of their facts (a hint must hold for every database in
//! the batch) drives plan compilation — provably-infeasible rules
//! become statically-pruned empty plans, counted in the metrics
//! document's `ops.static_cut`.

use crate::{err, load_database, render_relation, CliError, EngineKnobs};
use faure_core::plan::Hints;
use faure_core::{
    parse_program, DeletePattern, Delta, DeltaReport, Engine, EvalOptions, PrunePolicy,
};
use faure_ctable::{Const, Database};
use faure_storage::PhaseStats;
use faure_trace::metrics::{rollup_by_arg, rollup_spans, Rollup};
use faure_trace::{
    chrome, json_escape, prom, telemetry, Clock, Event, FlightRecorder, MonotonicClock, Recorder,
    Tee, TraceSink, Tracer,
};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Observability switches for `faure eval`: which artifacts to build
/// (`--trace` / `--metrics`), the always-on flight-recorder ring to
/// tee span events into, and whether `--updates` streams a live
/// per-update progress line to stderr.
#[derive(Debug, Default)]
pub struct ObsOptions {
    /// Build the Chrome trace JSON (`--trace`).
    pub want_trace: bool,
    /// Build the aggregated-metrics JSON (`--metrics`).
    pub want_metrics: bool,
    /// Flight-recorder ring receiving every span event (teed alongside
    /// the per-run recorder); `None` disables the tee.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Emit a per-update progress line on stderr during `--updates`.
    pub progress: bool,
}

impl ObsOptions {
    /// Switches for a plain programmatic run: no artifacts, no flight
    /// ring, no progress stream.
    pub fn none() -> Self {
        Self::default()
    }

    /// Switches matching the old positional `(want_trace,
    /// want_metrics)` call shape.
    pub fn artifacts(want_trace: bool, want_metrics: bool) -> Self {
        ObsOptions {
            want_trace,
            want_metrics,
            ..Self::default()
        }
    }
}

/// Builds the run's tracer: the per-run [`Recorder`] when trace or
/// metrics artifacts are wanted, teed with the flight ring when one is
/// installed, disabled when neither is present (the zero-overhead
/// path — evaluation output is bit-identical either way).
fn build_tracer(recorder: &Arc<Recorder>, obs: &ObsOptions) -> Tracer {
    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    if obs.want_trace || obs.want_metrics {
        sinks.push(Arc::clone(recorder) as Arc<dyn TraceSink>);
    }
    if let Some(flight) = &obs.flight {
        sinks.push(Arc::clone(flight) as Arc<dyn TraceSink>);
    }
    match sinks.len() {
        0 => Tracer::disabled(),
        1 => Tracer::new(sinks.pop().expect("one sink")),
        _ => Tracer::new(Arc::new(Tee::new(sinks))),
    }
}

/// Output of a (possibly batch) `faure eval` run.
#[derive(Debug)]
pub struct EvalReport {
    /// Human-readable relation listing + stats lines (stdout).
    pub rendered: String,
    /// Chrome `trace_event` JSON, when `--trace` was requested.
    pub trace_json: Option<String>,
    /// Aggregated-metrics JSON, when `--metrics` was requested.
    pub metrics_json: Option<String>,
}

/// One database's worth of recorded evaluation, used to build the
/// metrics document.
struct DbRun {
    label: String,
    stats: PhaseStats,
    events: Vec<Event>,
}

/// `faure eval` implementation over one or more databases. The program
/// is prepared once; each database is a separate
/// [`run`](faure_core::PreparedProgram::run) over the same compiled
/// plans. With `want_trace` / `want_metrics`, the pipeline is recorded
/// and the corresponding JSON documents are returned in the report
/// (tracing never changes evaluation results).
#[allow(clippy::too_many_arguments)]
pub fn cmd_eval_batch(
    dbs: &[(String, String)],
    program_label: &str,
    program_text: &str,
    prune: PrunePolicy,
    only_relation: Option<&str>,
    knobs: &EngineKnobs,
    obs: &ObsOptions,
) -> Result<EvalReport, CliError> {
    if dbs.is_empty() {
        return Err(err("eval needs at least one database file"));
    }
    let program = parse_program(program_text).map_err(|e| err(e.to_string()))?;
    let mut opts = EvalOptions {
        prune,
        ..Default::default()
    };
    knobs.configure(&mut opts);

    let recorder = Arc::new(Recorder::new());
    let tracer = build_tracer(&recorder, obs);

    // Load every database up front: planner hints must hold for each
    // database they will run against.
    let loaded: Vec<(&String, Database)> = dbs
        .iter()
        .map(|(label, text)| {
            load_database(text)
                .map(|db| (label, db))
                .map_err(|e| err(format!("{label}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let hints = batch_hints(&program, loaded.iter().map(|(_, db)| db));

    let mut prepared = Engine::with_options(opts)
        .prepare_traced_with_hints(&program, hints, &tracer)
        .map_err(|e| err(e.to_string()))?;
    prepared
        .set_shard_keys(knobs.shard_keys.iter().map(|(p, c)| (p.as_str(), *c)))
        .map_err(|e| err(e.to_string()))?;
    let prepare_events = recorder.take();

    let mut rendered = String::new();
    let mut all_events = prepare_events.clone();
    let mut runs: Vec<DbRun> = Vec::new();

    for (label, db) in &loaded {
        let out = prepared
            .run_with_traced(db, &opts, &tracer)
            .map_err(|e| err(format!("{label}: {e}")))?;
        let events = recorder.take();

        if dbs.len() > 1 {
            writeln!(rendered, "== {label} ==").map_err(|e| err(e.to_string()))?;
        }
        match only_relation {
            Some(r) => render_relation(r, &out.database, &mut rendered)?,
            None => {
                for p in program.idb_predicates() {
                    render_relation(p, &out.database, &mut rendered)?;
                }
            }
        }
        writeln!(
            rendered,
            "-- {} tuples, relational {:?}, solver {:?}",
            out.stats.tuples, out.stats.relational, out.stats.solver
        )
        .map_err(|e| err(e.to_string()))?;

        all_events.extend(events.iter().cloned());
        runs.push(DbRun {
            label: (*label).clone(),
            stats: out.stats,
            events,
        });
    }

    let trace_json = obs.want_trace.then(|| chrome::trace_json(&all_events));
    let metrics_json = obs
        .want_metrics
        .then(|| metrics_document(program_label, &program, &prepare_events, &runs, &[]));
    Ok(EvalReport {
        rendered,
        trace_json,
        metrics_json,
    })
}

/// One applied update from an `--updates` stream, with its source line
/// and the engine's [`DeltaReport`] — feeds both the rendered summary
/// and the metrics document's `updates` array.
struct UpdateRun {
    line: usize,
    text: String,
    report: DeltaReport,
}

/// Parses an update-stream file: one update per line, `+R(c, ...)` to
/// insert a fact and `-R(c, ...)` to delete the exact tuple (mapped to
/// [`DeletePattern::exact`]). Constants are integers, quoted strings,
/// or bare symbols; `%` starts a comment; blank lines are skipped; a
/// trailing `.` is allowed. Returns `(line_number, source_text, delta)`
/// triples — one delta per line, applied in file order.
fn parse_update_stream(text: &str) -> Result<Vec<(usize, String, Delta)>, CliError> {
    let mut updates = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('%').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (lineno, shown) = (lineno + 1, line.to_owned());
        let bad = |m: &str| err(format!("updates line {lineno}: {m} in `{shown}`"));
        let (is_insert, rest) = match line.as_bytes()[0] {
            b'+' => (true, &line[1..]),
            b'-' => (false, &line[1..]),
            _ => return Err(bad("update lines start with `+` or `-`")),
        };
        let rest = rest.trim();
        let rest = rest.strip_suffix('.').unwrap_or(rest).trim_end();
        let (pred, args) = rest
            .split_once('(')
            .ok_or_else(|| bad("expected `Pred(const, ...)`"))?;
        let pred = pred.trim();
        if pred.is_empty() {
            return Err(bad("missing predicate name"));
        }
        let args = args
            .strip_suffix(')')
            .ok_or_else(|| bad("expected closing `)`"))?;
        let mut row: Vec<Const> = Vec::new();
        for item in args.split(',') {
            let item = item.trim();
            if item.is_empty() {
                if args.trim().is_empty() {
                    break; // zero-arity tuple `R()`
                }
                return Err(bad("empty argument"));
            }
            if let Ok(n) = item.parse::<i64>() {
                row.push(Const::Int(n));
            } else if let Some(q) = item.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                row.push(Const::sym(q));
            } else {
                row.push(Const::sym(item));
            }
        }
        let mut delta = Delta::new();
        if is_insert {
            delta.push_insert_fact(pred, row);
        } else {
            delta.push_delete(pred, DeletePattern::exact(row));
        }
        updates.push((lineno, shown, delta));
    }
    Ok(updates)
}

/// `faure eval --updates stream.fdl` implementation: materializes the
/// program's fixpoint over the database once, then applies each update
/// line as its own [`Delta`] through the incremental maintenance path,
/// reporting per-update latency. The rendered output lists every
/// applied update with its change counts and wall time, then the final
/// relations; `--metrics` adds a per-update `updates` array (schema
/// `faure_metrics_version: 1`) with `per_update_wall_ns` per entry.
#[allow(clippy::too_many_arguments)]
pub fn cmd_eval_updates(
    db_label: &str,
    db_text: &str,
    program_label: &str,
    program_text: &str,
    updates_label: &str,
    updates_text: &str,
    prune: PrunePolicy,
    only_relation: Option<&str>,
    knobs: &EngineKnobs,
    obs: &ObsOptions,
) -> Result<EvalReport, CliError> {
    let program = parse_program(program_text).map_err(|e| err(e.to_string()))?;
    let mut opts = EvalOptions {
        prune,
        ..Default::default()
    };
    knobs.configure(&mut opts);
    let updates = parse_update_stream(updates_text)?;

    let recorder = Arc::new(Recorder::new());
    let tracer = build_tracer(&recorder, obs);

    let db = load_database(db_text).map_err(|e| err(format!("{db_label}: {e}")))?;
    let hints = batch_hints(&program, std::iter::once(&db));
    let mut prepared = Engine::with_options(opts)
        .prepare_traced_with_hints(&program, hints, &tracer)
        .map_err(|e| err(e.to_string()))?;
    prepared
        .set_shard_keys(knobs.shard_keys.iter().map(|(p, c)| (p.as_str(), *c)))
        .map_err(|e| err(e.to_string()))?;
    let prepare_events = recorder.take();

    // Initial fixpoint: the batch evaluation, run through the standing
    // materialized state that the per-update applies then maintain.
    let t0 = std::time::Instant::now();
    let mut state = prepared
        .materialize_with(&db, &opts, &tracer)
        .map_err(|e| err(format!("{db_label}: {e}")))?;
    let materialize_wall = t0.elapsed();
    let initial_events = recorder.take();
    let initial_stats = state.stats().clone();

    let mut rendered = String::new();
    let mut all_events = prepare_events.clone();
    all_events.extend(initial_events.iter().cloned());
    writeln!(
        rendered,
        "-- materialized {} in {}",
        db_label,
        fmt_ns(materialize_wall.as_nanos() as u64)
    )
    .map_err(|e| err(e.to_string()))?;

    let total_updates = updates.len();
    let mut applied: Vec<UpdateRun> = Vec::new();
    for (idx, (line, text, delta)) in updates.into_iter().enumerate() {
        let report = prepared
            .apply(&mut state, delta)
            .map_err(|e| err(format!("{updates_label}:{line}: {e}")))?;
        all_events.extend(recorder.take());
        if obs.progress {
            // Live churn progress on stderr: one line per applied
            // update, flushed immediately so a watcher (or a human
            // tailing the run) sees maintenance latency as it happens.
            // stdout carries only the final report, so piping results
            // stays clean.
            let sv = &report.stats.solver_stats;
            eprintln!(
                "update {}/{total_updates} line {line}: +{} -{} edb, {} rederived, {} overdeleted in {} (memo {:.1}%)",
                idx + 1,
                report.inserted,
                report.deleted,
                report.rederived,
                report.overdeleted,
                fmt_ns(report.wall.as_nanos() as u64),
                sv.memo_hit_rate() * 100.0
            );
        }
        writeln!(
            rendered,
            "-- update {line} `{text}`: +{} / -{} edb, {} rederived, {} overdeleted, {} pruned ({})",
            report.inserted,
            report.deleted,
            report.rederived,
            report.overdeleted,
            report.pruned,
            fmt_ns(report.wall.as_nanos() as u64)
        )
        .map_err(|e| err(e.to_string()))?;
        applied.push(UpdateRun { line, text, report });
    }

    match only_relation {
        Some(r) => render_state_relation(r, &state, &mut rendered)?,
        None => {
            for p in program.idb_predicates() {
                render_state_relation(p, &state, &mut rendered)?;
            }
        }
    }
    let total_ns: u64 = applied
        .iter()
        .map(|u| u.report.wall.as_nanos() as u64)
        .sum();
    let mean_ns = total_ns / applied.len().max(1) as u64;
    let max_ns = applied
        .iter()
        .map(|u| u.report.wall.as_nanos() as u64)
        .max()
        .unwrap_or(0);
    writeln!(
        rendered,
        "-- {} updates applied: per-update mean {}, max {}, total {}",
        applied.len(),
        fmt_ns(mean_ns),
        fmt_ns(max_ns),
        fmt_ns(total_ns)
    )
    .map_err(|e| err(e.to_string()))?;

    let runs = [DbRun {
        label: db_label.to_owned(),
        stats: initial_stats,
        events: initial_events,
    }];
    let trace_json = obs.want_trace.then(|| chrome::trace_json(&all_events));
    let metrics_json = obs
        .want_metrics
        .then(|| metrics_document(program_label, &program, &prepare_events, &runs, &applied));
    Ok(EvalReport {
        rendered,
        trace_json,
        metrics_json,
    })
}

/// Renders a predicate's current contents out of the standing
/// materialized state (EDB or derived, reflecting every applied delta).
fn render_state_relation(
    name: &str,
    state: &faure_core::MaterializedState,
    out: &mut String,
) -> Result<(), CliError> {
    let Some(rel) = state.relation(name) else {
        return Err(err(format!("no relation named {name}")));
    };
    writeln!(out, "{}({}):", rel.schema.name, rel.schema.attrs.join(", "))
        .map_err(|e| err(e.to_string()))?;
    for t in rel.iter() {
        writeln!(out, "  {}", t.display(&state.database().cvars))
            .map_err(|e| err(e.to_string()))?;
    }
    Ok(())
}

/// Planner hints that are sound for **every** database in the batch:
/// per-database inference results are intersected (a predicate is only
/// hinted empty, and a rule only hinted infeasible, if that holds under
/// each database), and column cardinalities take the per-column
/// maximum. One database ⇒ its hints verbatim; zero ⇒ unreachable
/// (`cmd_eval_batch` rejects empty batches).
fn batch_hints<'a>(
    program: &faure_core::Program,
    dbs: impl Iterator<Item = &'a Database>,
) -> Hints {
    let mut merged: Option<Hints> = None;
    for db in dbs {
        let h = faure_analyze::plan_hints(program, Some(db));
        merged = Some(match merged {
            None => h,
            Some(m) => Hints {
                col_cards: h
                    .col_cards
                    .iter()
                    .filter_map(|(k, &card)| {
                        m.col_cards.get(k).map(|&mc| (k.clone(), mc.max(card)))
                    })
                    .collect(),
                empty_preds: m
                    .empty_preds
                    .intersection(&h.empty_preds)
                    .cloned()
                    .collect(),
                infeasible_rules: m
                    .infeasible_rules
                    .intersection(&h.infeasible_rules)
                    .copied()
                    .collect(),
            },
        });
    }
    merged.unwrap_or_default()
}

/// Builds the `faure_metrics_version: 1` JSON document. The schema is
/// documented in DESIGN.md ("Observability") and asserted by CI; keep
/// the two in sync.
fn metrics_document(
    program_label: &str,
    program: &faure_core::Program,
    prepare_events: &[Event],
    runs: &[DbRun],
    updates: &[UpdateRun],
) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\"faure_metrics_version\":1,");
    let _ = write!(s, "\"program\":\"{}\",", json_escape(program_label));

    // Prepare-phase rollup (safety / stratify / plan-compile).
    s.push_str("\"prepare\":[");
    push_rollups(&mut s, &rollup_spans(prepare_events));
    s.push_str("],");

    s.push_str("\"databases\":[");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_db_metrics(&mut s, program, run);
    }
    s.push_str("],");

    // Per-delta maintenance latency (`eval --updates`): one entry per
    // applied update line, in order. Empty for plain batch eval.
    s.push_str("\"updates\":[");
    for (i, u) in updates.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let r = &u.report;
        let _ = write!(
            s,
            "{{\"seq\":{},\"line\":{},\"update\":\"{}\",\"inserted\":{},\"deleted\":{},\
             \"overdeleted\":{},\"rederived\":{},\"pruned\":{},\"strata_touched\":{},\
             \"counting_strata\":{},\"rederive_strata\":{},\"per_update_wall_ns\":{}}}",
            i,
            u.line,
            json_escape(&u.text),
            r.inserted,
            r.deleted,
            r.overdeleted,
            r.rederived,
            r.pruned,
            r.strata_touched,
            r.counting_strata,
            r.rederive_strata,
            r.wall.as_nanos()
        );
    }
    s.push(']');
    if !updates.is_empty() {
        let total: u128 = updates.iter().map(|u| u.report.wall.as_nanos()).sum();
        let max = updates
            .iter()
            .map(|u| u.report.wall.as_nanos())
            .max()
            .unwrap_or(0);
        let _ = write!(
            s,
            ",\"updates_summary\":{{\"count\":{},\"total_wall_ns\":{},\
             \"mean_wall_ns\":{},\"max_wall_ns\":{}}}",
            updates.len(),
            total,
            total / updates.len() as u128,
            max
        );
    }

    // Whole-process totals: every apply (initial materializations plus
    // per-update maintenance) folded together. These are the same
    // increments the live telemetry registry accumulates at apply
    // boundaries, so a final `--telemetry-jsonl` snapshot (or a last
    // `/metrics` scrape) agrees with this block counter-for-counter.
    // `idb_tuples` is the absolute row count after the last apply — a
    // gauge, not a sum.
    let mut tot = PhaseStats::new();
    for run in runs {
        tot.absorb(&run.stats);
    }
    for u in updates {
        tot.absorb(&u.report.stats);
    }
    let idb_tuples = updates
        .last()
        .map(|u| u.report.stats.tuples)
        .or_else(|| runs.last().map(|r| r.stats.tuples))
        .unwrap_or(0);
    let _ = write!(
        s,
        ",\"totals\":{{\"runs\":{},\"updates_applied\":{},\"idb_tuples\":{},\
         \"probes\":{},\"rows_matched\":{},\"sat_calls\":{},\"sat_true\":{},\
         \"simplify_calls\":{},\"memo_hits\":{},\"cross_run_hits\":{},\"memo_misses\":{},\
         \"pruned\":{},\"plan_cache_hits\":{},\"plan_cache_misses\":{}}}",
        runs.len(),
        updates.len(),
        idb_tuples,
        tot.ops.probes,
        tot.ops.rows_matched,
        tot.solver_stats.sat_calls,
        tot.solver_stats.sat_true,
        tot.solver_stats.simplify_calls,
        tot.solver_stats.memo_hits,
        tot.solver_stats.cross_run_hits,
        tot.solver_stats.memo_misses,
        tot.pruned,
        tot.plan_cache_hits,
        tot.plan_cache_misses
    );
    s.push('}');
    s
}

fn push_rollups(s: &mut String, rollups: &[Rollup]) {
    for (i, r) in rollups.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"cat\":\"{}\",\"name\":\"{}\",\"count\":{},\"wall_ns\":{}}}",
            json_escape(r.cat),
            json_escape(r.name),
            r.count,
            r.wall_ns
        );
    }
}

fn push_db_metrics(s: &mut String, program: &faure_core::Program, run: &DbRun) {
    let st = &run.stats;
    let sv = &st.solver_stats;
    let _ = write!(s, "{{\"label\":\"{}\",", json_escape(&run.label));
    let _ = write!(
        s,
        "\"relational_ns\":{},\"solver_ns\":{},\"prune_wall_ns\":{},\"tuples\":{},\"pruned\":{},",
        st.relational.as_nanos(),
        st.solver.as_nanos(),
        st.prune_wall.as_nanos(),
        st.tuples,
        st.pruned
    );
    let _ = write!(
        s,
        "\"ops\":{{\"probes\":{},\"rows_matched\":{},\"conds_conjoined\":{},\
         \"cmp_pruned\":{},\"neg_checks\":{},\"static_cut\":{}}},",
        st.ops.probes,
        st.ops.rows_matched,
        st.ops.conds_conjoined,
        st.ops.cmp_pruned,
        st.ops.neg_checks,
        st.ops.static_cut
    );
    let _ = write!(
        s,
        "\"solver\":{{\"sat_calls\":{},\"sat_true\":{},\"simplify_calls\":{},\
         \"memo_hits\":{},\"cross_run_hits\":{},\"memo_misses\":{},\"memo_hit_rate\":{:.4},\
         \"memo_cross_run_hit_rate\":{:.4},\"time_ns\":{},\"latency_ns\":{}}},",
        sv.sat_calls,
        sv.sat_true,
        sv.simplify_calls,
        sv.memo_hits,
        sv.cross_run_hits,
        sv.memo_misses,
        sv.memo_hit_rate(),
        sv.memo_cross_run_hit_rate(),
        sv.time.as_nanos(),
        sv.latency.to_json()
    );
    let _ = write!(
        s,
        "\"plan_cache\":{{\"hits\":{},\"misses\":{}}},",
        st.plan_cache_hits, st.plan_cache_misses
    );
    let pool = faure_ctable::pool::pool_stats();
    let _ = write!(
        s,
        "\"pool\":{{\"pool_hits\":{},\"pool_misses\":{},\"pool_size\":{},\"hit_rate\":{:.4}}},",
        pool.hits,
        pool.misses,
        pool.size,
        pool.hit_rate()
    );
    let sizes: Vec<String> = st.delta_sizes.iter().map(usize::to_string).collect();
    let _ = write!(s, "\"delta_sizes\":[{}],", sizes.join(","));

    // Sharded-fixpoint counters (additive to schema v1; all-zero with
    // `count` 0 and `imbalance` null when the run was not sharded).
    let sh = &st.shard;
    let imbalance = sh
        .imbalance()
        .map_or_else(|| "null".to_owned(), |r| format!("{r:.4}"));
    let _ = write!(
        s,
        "\"shards\":{{\"count\":{},\"routed_rows\":{},\"broadcast_rows\":{},\
         \"exchanged_batches\":{},\"passes\":{},\"imbalance\":{}}},",
        sh.shards, sh.routed_rows, sh.broadcast_rows, sh.exchanged_batches, sh.passes, imbalance
    );

    s.push_str("\"phases\":[");
    push_rollups(s, &rollup_spans(&run.events));
    s.push_str("],");

    s.push_str("\"rules\":[");
    let per_rule = rollup_by_arg(&run.events, "fixpoint", "rule-pass", "rule");
    for (i, (ri, r)) in per_rule.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let head = r
            .label("head")
            .map(str::to_owned)
            .or_else(|| {
                program
                    .rules
                    .get(*ri as usize)
                    .map(|rule| rule.head.pred.clone())
            })
            .unwrap_or_default();
        let _ = write!(
            s,
            "{{\"rule\":{},\"head\":\"{}\",\"passes\":{},\"wall_ns\":{},\
             \"matches\":{},\"rows_out\":{},\"cond_size\":{}}}",
            ri,
            json_escape(&head),
            r.count,
            r.wall_ns,
            r.sum("matches"),
            r.sum("rows_out"),
            r.sum("cond_size")
        );
    }
    s.push_str("]}");
}

/// Formats nanoseconds human-readably (ns → µs → ms → s).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `faure profile <prog.fl> <db.fdb>` implementation: runs the program
/// with tracing enabled and renders a rustc-style text report — phase
/// breakdown, per-iteration delta sizes, top rules by time, and the
/// solver memo / latency summary.
pub fn cmd_profile(
    program_label: &str,
    program_text: &str,
    db_label: &str,
    db_text: &str,
    knobs: &EngineKnobs,
) -> Result<String, CliError> {
    cmd_profile_with_clock(
        program_label,
        program_text,
        db_label,
        db_text,
        knobs,
        Arc::new(MonotonicClock::starting_now()),
    )
}

/// [`cmd_profile`] with an injected trace clock — the golden-output
/// test drives this with a [`faure_trace::ManualClock`] so every span
/// duration in the report is deterministic.
pub fn cmd_profile_with_clock(
    program_label: &str,
    program_text: &str,
    db_label: &str,
    db_text: &str,
    knobs: &EngineKnobs,
    clock: Arc<dyn Clock>,
) -> Result<String, CliError> {
    let program = parse_program(program_text).map_err(|e| err(e.to_string()))?;
    let db = load_database(db_text)?;
    let mut opts = EvalOptions::default();
    knobs.configure(&mut opts);

    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::with_clock(Arc::clone(&recorder) as Arc<dyn TraceSink>, clock);
    let mut prepared = Engine::with_options(opts)
        .prepare_traced(&program, &tracer)
        .map_err(|e| err(e.to_string()))?;
    prepared
        .set_shard_keys(knobs.shard_keys.iter().map(|(p, c)| (p.as_str(), *c)))
        .map_err(|e| err(e.to_string()))?;
    let out = prepared
        .run_traced(&db, &tracer)
        .map_err(|e| err(e.to_string()))?;
    let events = recorder.take();
    let st = &out.stats;
    let sv = &st.solver_stats;

    let mut s = String::new();
    let w = &mut s;
    let _ = writeln!(w, "profile: {program_label} on {db_label}");
    let _ = writeln!(
        w,
        "  total {}  (relational {}, solver {})",
        fmt_ns((st.relational + st.solver).as_nanos() as u64),
        fmt_ns(st.relational.as_nanos() as u64),
        fmt_ns(st.solver.as_nanos() as u64),
    );
    let _ = writeln!(
        w,
        "  tuples {}  pruned {}  plan cache {} hits / {} compiled",
        st.tuples, st.pruned, st.plan_cache_hits, st.plan_cache_misses
    );
    let _ = writeln!(
        w,
        "  solver: {} sat calls ({} sat), memo hit rate {:.1}% ({} hits / {} misses, {} cross-run)",
        sv.sat_calls,
        sv.sat_true,
        sv.memo_hit_rate() * 100.0,
        sv.memo_hits,
        sv.memo_misses,
        sv.cross_run_hits
    );
    if sv.latency.count() > 0 {
        let _ = writeln!(
            w,
            "  solver latency: {} checks, mean {}  p50 ≤ {}  p99 ≤ {}",
            sv.latency.count(),
            fmt_ns(sv.latency.mean_ns()),
            fmt_ns(sv.latency.quantile(0.5)),
            fmt_ns(sv.latency.quantile(0.99)),
        );
    }

    // Phase breakdown from the span rollup.
    let _ = writeln!(w, "\nphases:");
    let _ = writeln!(w, "  {:<22} {:>7} {:>12}", "phase", "count", "wall");
    for r in rollup_spans(&events) {
        // `run` nests everything else; listing it would double-count.
        if r.cat == "eval" && r.name == "run" {
            continue;
        }
        let _ = writeln!(
            w,
            "  {:<22} {:>7} {:>12}",
            format!("{}/{}", r.cat, r.name),
            r.count,
            fmt_ns(r.wall_ns)
        );
    }

    // Prune-phase breakdown: one row per recorded prune span (per
    // predicate, in execution order), plus the wall-clock total the
    // driver thread spent in the prune phase. `wall` here is elapsed
    // driver time; the solver line above is per-worker CPU summed, so
    // under `--threads N` the prune wall shrinking while solver time
    // stays flat is the parallel prune paying off.
    let prunes: Vec<&Event> = events
        .iter()
        .filter(|e| e.cat == "eval" && e.name == "prune")
        .collect();
    if !prunes.is_empty() {
        let _ = writeln!(
            w,
            "\nprune: {} removed in {} wall",
            st.pruned,
            fmt_ns(st.prune_wall.as_nanos() as u64)
        );
        let _ = writeln!(
            w,
            "  {:<16} {:>8} {:>8} {:>8} {:>12}",
            "pred", "rows", "removed", "threads", "wall"
        );
        for e in prunes {
            let _ = writeln!(
                w,
                "  {:<16} {:>8} {:>8} {:>8} {:>12}",
                e.arg_str("pred").unwrap_or("?"),
                e.arg_u64("rows").unwrap_or(0),
                e.arg_u64("removed").unwrap_or(0),
                e.arg_u64("threads").unwrap_or(1),
                fmt_ns(e.dur_ns)
            );
        }
    }

    // Iteration table (semi-naive delta sizes, in execution order).
    let iters: Vec<&Event> = events
        .iter()
        .filter(|e| e.cat == "fixpoint" && e.name == "iteration")
        .collect();
    if !iters.is_empty() {
        let _ = writeln!(w, "\niterations:");
        let _ = writeln!(w, "  {:>5} {:>11} {:>12}", "iter", "delta rows", "wall");
        for e in iters {
            let _ = writeln!(
                w,
                "  {:>5} {:>11} {:>12}",
                e.arg_u64("iteration").unwrap_or(0),
                e.arg_u64("delta_rows").unwrap_or(0),
                fmt_ns(e.dur_ns)
            );
        }
    }

    // Per-shard breakdown (only when the partitioned fixpoint ran, so
    // serial profiles — and the golden file — are unchanged).
    let sh = &st.shard;
    if sh.passes > 0 {
        let _ = writeln!(
            w,
            "\nshards: {} workers, {} delta passes, {} batches exchanged",
            sh.shards, sh.passes, sh.exchanged_batches
        );
        let _ = writeln!(
            w,
            "  rows routed {} (broadcast {})",
            sh.routed_rows, sh.broadcast_rows
        );
        if let Some(r) = sh.imbalance() {
            let _ = writeln!(w, "  imbalance (max/mean shard wall): {r:.2}");
        }
        let _ = writeln!(w, "  {:>5} {:>12}", "shard", "wall");
        for (i, wall) in sh.shard_wall.iter().enumerate() {
            let _ = writeln!(w, "  {:>5} {:>12}", i, fmt_ns(wall.as_nanos() as u64));
        }
    }

    // Top rules by time.
    let mut per_rule = rollup_by_arg(&events, "fixpoint", "rule-pass", "rule");
    per_rule.sort_by_key(|r| std::cmp::Reverse(r.1.wall_ns));
    let _ = writeln!(w, "\ntop rules by time:");
    let _ = writeln!(
        w,
        "  {:>12} {:>6} {:>9} {:>9}  rule",
        "wall", "passes", "matches", "rows"
    );
    for (ri, r) in per_rule.iter().take(10) {
        let rule_text = program
            .rules
            .get(*ri as usize)
            .map(|rule| rule.to_string())
            .unwrap_or_else(|| format!("#{ri}"));
        let _ = writeln!(
            w,
            "  {:>12} {:>6} {:>9} {:>9}  {}",
            fmt_ns(r.wall_ns),
            r.count,
            r.sum("matches"),
            r.sum("rows_out"),
            rule_text
        );
    }
    Ok(s)
}

/// Handle to the background `--telemetry-jsonl` writer. The thread
/// snapshots the process-global telemetry registry every interval and
/// appends one JSON object per line; [`finish`](Self::finish) stops it
/// and forces a final snapshot line, so the file always ends with the
/// post-run counter totals.
#[derive(Debug)]
pub struct TelemetryJsonl {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    path: String,
}

impl TelemetryJsonl {
    /// Signals the writer to stop, waits for the final snapshot line,
    /// and surfaces any deferred I/O error as a CLI error naming the
    /// output path.
    pub fn finish(self) -> Result<(), CliError> {
        self.stop.store(true, Ordering::Release);
        match self.handle.join() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(err(format!("{}: {e}", self.path))),
            Err(_) => Err(err(format!(
                "{}: telemetry writer thread panicked",
                self.path
            ))),
        }
    }
}

/// Starts the `--telemetry-jsonl` background writer: one snapshot of
/// the global registry per `interval_ms`, rendered by
/// [`faure_trace::prom::render_jsonl`], one line each. The file is
/// created eagerly so a bad path fails the command up front instead of
/// silently producing nothing.
pub fn spawn_telemetry_jsonl(path: &str, interval_ms: u64) -> Result<TelemetryJsonl, CliError> {
    let file = std::fs::File::create(path).map_err(|e| err(format!("{path}: {e}")))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let registry = telemetry::global();
    let interval = std::time::Duration::from_millis(interval_ms.max(1));
    let handle = std::thread::Builder::new()
        .name("faure-telemetry-jsonl".to_owned())
        .spawn(move || -> std::io::Result<()> {
            let mut out = std::io::BufWriter::new(file);
            loop {
                // Read the flag *before* snapshotting: when `finish`
                // raises it, the snapshot taken here is at least as
                // fresh as the last published counters, so the final
                // line reflects the completed run.
                let stopping = stop_flag.load(Ordering::Acquire);
                out.write_all(prom::render_jsonl(&registry.snapshot()).as_bytes())?;
                out.write_all(b"\n")?;
                out.flush()?;
                if stopping {
                    return Ok(());
                }
                // Sleep in short steps so `finish` returns promptly
                // even under a long `--telemetry-interval-ms`.
                let step = std::time::Duration::from_millis(20);
                let mut slept = std::time::Duration::ZERO;
                while slept < interval && !stop_flag.load(Ordering::Acquire) {
                    let nap = step.min(interval - slept);
                    std::thread::sleep(nap);
                    slept += nap;
                }
            }
        })
        .map_err(|e| err(format!("{path}: failed to spawn telemetry writer: {e}")))?;
    Ok(TelemetryJsonl {
        stop,
        handle,
        path: path.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
@cvar x in {0, 1}
@cvar y in {0, 1}
@cvar z in {0, 1}
@schema F(f, n1, n2)
F(1, 1, 2) :- $x = 1.
F(1, 1, 3) :- $x = 0.
F(1, 2, 3) :- $y = 1.
F(1, 2, 4) :- $y = 0.
F(1, 3, 5) :- $z = 1.
F(1, 3, 4) :- $z = 0.
F(1, 4, 5).
";

    const REACH: &str = "\
R(f, a, b) :- F(f, a, b).
R(f, a, b) :- F(f, a, c), R(f, c, b).
";

    fn one_db(label: &str) -> Vec<(String, String)> {
        vec![(label.to_owned(), FIG1.to_owned())]
    }

    #[test]
    fn batch_eval_single_db_matches_plain_eval() {
        let report = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::none(),
        )
        .unwrap();
        let plain =
            crate::cmd_eval(FIG1, REACH, PrunePolicy::EndOfStratum, Some("R"), None).unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&report.rendered), strip(&plain));
        assert!(report.trace_json.is_none());
        assert!(report.metrics_json.is_none());
    }

    #[test]
    fn batch_eval_renders_per_db_sections_and_shares_plans() {
        let dbs = vec![
            ("a.fdb".to_owned(), FIG1.to_owned()),
            ("b.fdb".to_owned(), FIG1.to_owned()),
        ];
        let report = cmd_eval_batch(
            &dbs,
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::artifacts(false, true),
        )
        .unwrap();
        assert!(report.rendered.contains("== a.fdb =="));
        assert!(report.rendered.contains("== b.fdb =="));
        let metrics = report.metrics_json.unwrap();
        assert!(metrics.contains("\"faure_metrics_version\":1"));
        assert!(metrics.contains("\"label\":\"a.fdb\""));
        assert!(metrics.contains("\"label\":\"b.fdb\""));
        // Both runs report identical plan-cache counters: plans were
        // compiled once, at prepare time, then reused per database.
        let caches: Vec<&str> = metrics
            .match_indices("\"plan_cache\":{")
            .map(|(i, _)| {
                let rest = &metrics[i..];
                &rest[..=rest.find('}').unwrap()]
            })
            .collect();
        assert_eq!(caches.len(), 2, "{metrics}");
        assert_eq!(caches[0], caches[1], "{metrics}");
    }

    #[test]
    fn batch_second_db_reuses_memo_across_runs() {
        // Both databases share the same c-variable registry
        // (fingerprint), so the prepared program's memo carries over:
        // the second run must report cross-run memo hits, the first
        // (cold) run none.
        let dbs = vec![
            ("a.fdb".to_owned(), FIG1.to_owned()),
            ("b.fdb".to_owned(), FIG1.to_owned()),
        ];
        let report = cmd_eval_batch(
            &dbs,
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::artifacts(false, true),
        )
        .unwrap();
        let metrics = report.metrics_json.unwrap();
        let hits: Vec<u64> = metrics
            .match_indices("\"cross_run_hits\":")
            .map(|(i, key)| {
                let rest = &metrics[i + key.len()..];
                let end = rest.find(',').unwrap();
                rest[..end].parse().unwrap()
            })
            .collect();
        // Two per-database entries plus the whole-process totals block.
        assert_eq!(hits.len(), 3, "{metrics}");
        assert_eq!(hits[0], 0, "cold run saw cross-run hits: {metrics}");
        assert!(hits[1] > 0, "warm run reused no memo entries: {metrics}");
        assert_eq!(hits[2], hits[0] + hits[1], "{metrics}");
        assert!(
            metrics.contains("\"memo_cross_run_hit_rate\":0.0000"),
            "{metrics}"
        );
    }

    #[test]
    fn trace_output_is_chrome_trace_json() {
        let report = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            None,
            &EngineKnobs::default(),
            &ObsOptions::artifacts(true, false),
        )
        .unwrap();
        let trace = report.trace_json.unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"rule-pass\""));
        assert!(trace.contains("\"name\":\"plan-compile\""));
    }

    #[test]
    fn metrics_document_has_schema_keys() {
        let report = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            None,
            &EngineKnobs::default(),
            &ObsOptions::artifacts(false, true),
        )
        .unwrap();
        let m = report.metrics_json.unwrap();
        for key in [
            "\"faure_metrics_version\":1",
            "\"program\":\"reach.fl\"",
            "\"prepare\":[",
            "\"databases\":[",
            "\"relational_ns\":",
            "\"solver_ns\":",
            "\"prune_wall_ns\":",
            "\"tuples\":",
            "\"pruned\":",
            "\"ops\":{\"probes\":",
            "\"solver\":{\"sat_calls\":",
            "\"cross_run_hits\":",
            "\"memo_hit_rate\":",
            "\"memo_cross_run_hit_rate\":",
            "\"latency_ns\":[",
            "\"plan_cache\":{\"hits\":",
            "\"pool\":{\"pool_hits\":",
            "\"pool_size\":",
            "\"delta_sizes\":[",
            "\"phases\":[",
            "\"rules\":[",
            "\"head\":\"R\"",
            "\"totals\":{\"runs\":1,\"updates_applied\":0,\"idb_tuples\":",
        ] {
            assert!(m.contains(key), "missing {key} in {m}");
        }
    }

    #[test]
    fn tracing_does_not_change_rendered_results() {
        let base = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::none(),
        )
        .unwrap();
        let traced = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::artifacts(true, true),
        )
        .unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&base.rendered), strip(&traced.rendered));
    }

    #[test]
    fn update_stream_parses_signs_consts_and_comments() {
        let stream = "\
% churn stream
+F(1, 4, 6).
-F(1, 4, 5)
+Lbl(\"R&D\", core1, 7)  % inline comment

";
        let updates = parse_update_stream(stream).unwrap();
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[0].0, 2);
        assert_eq!(updates[0].1, "+F(1, 4, 6).");
        assert_eq!(updates[0].2.insert.len(), 1);
        assert!(updates[0].2.delete.is_empty());
        assert_eq!(updates[1].2.delete.len(), 1);
        assert_eq!(
            updates[1].2.delete[0].1.cols,
            vec![
                Some(Const::Int(1)),
                Some(Const::Int(4)),
                Some(Const::Int(5))
            ]
        );
        let (rel, tuple) = &updates[2].2.insert[0];
        assert_eq!(rel, "Lbl");
        assert_eq!(tuple.terms.len(), 3);
        for bad in ["F(1, 2)", "+F 1 2", "+F(1,", "+(1)"] {
            assert!(parse_update_stream(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn eval_updates_reports_per_update_latency() {
        let stream = "+F(1, 4, 6).\n-F(1, 4, 5).\n";
        let report = cmd_eval_updates(
            "fig1.fdb",
            FIG1,
            "reach.fl",
            REACH,
            "stream.fdl",
            stream,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::artifacts(false, true),
        )
        .unwrap();
        assert!(report.rendered.contains("-- materialized fig1.fdb"));
        assert!(
            report.rendered.contains("-- update 1 `+F(1, 4, 6).`:"),
            "{}",
            report.rendered
        );
        assert!(
            report.rendered.contains("-- 2 updates applied:"),
            "{}",
            report.rendered
        );
        let m = report.metrics_json.unwrap();
        for key in [
            "\"faure_metrics_version\":1",
            "\"updates\":[{\"seq\":0,\"line\":1,\"update\":\"+F(1, 4, 6).\"",
            "\"per_update_wall_ns\":",
            "\"rederived\":",
            "\"overdeleted\":",
            "\"updates_summary\":{\"count\":2,",
        ] {
            assert!(m.contains(key), "missing {key} in {m}");
        }
    }

    #[test]
    fn eval_updates_final_state_matches_batch_reeval() {
        // Applying the stream incrementally must land on the same
        // relation a from-scratch evaluation over the edited database
        // computes (rows compared as sets; FIG1 cells are ground, so
        // the order-safe fast path keeps conditions bit-identical).
        let stream = "-F(1, 4, 5).\n+F(1, 4, 6).\n+F(1, 6, 7).\n";
        let incr = cmd_eval_updates(
            "fig1.fdb",
            FIG1,
            "reach.fl",
            REACH,
            "stream.fdl",
            stream,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &EngineKnobs::default(),
            &ObsOptions::none(),
        )
        .unwrap();
        let edited = FIG1.replace("F(1, 4, 5).\n", "F(1, 4, 6).\nF(1, 6, 7).\n");
        let full =
            crate::cmd_eval(&edited, REACH, PrunePolicy::EndOfStratum, Some("R"), None).unwrap();
        let rows = |s: &str| {
            let mut v: Vec<String> = s
                .lines()
                .filter(|l| l.starts_with("  "))
                .map(|l| l.trim().to_owned())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(rows(&incr.rendered), rows(&full), "{}", incr.rendered);
    }

    #[test]
    fn profile_renders_report_sections() {
        let report =
            cmd_profile("reach.fl", REACH, "fig1.fdb", FIG1, &EngineKnobs::default()).unwrap();
        assert!(report.contains("profile: reach.fl on fig1.fdb"), "{report}");
        assert!(report.contains("memo hit rate"), "{report}");
        assert!(report.contains("phases:"), "{report}");
        assert!(report.contains("fixpoint/rule-pass"), "{report}");
        assert!(report.contains("prune:"), "{report}");
        assert!(report.contains("cross-run"), "{report}");
        assert!(report.contains("iterations:"), "{report}");
        assert!(report.contains("top rules by time:"), "{report}");
        assert!(report.contains("R(f, a, b)"), "{report}");
    }

    #[test]
    fn profile_serial_run_omits_shard_section() {
        let report =
            cmd_profile("reach.fl", REACH, "fig1.fdb", FIG1, &EngineKnobs::default()).unwrap();
        assert!(!report.contains("\nshards:"), "{report}");
    }

    #[test]
    fn profile_sharded_run_renders_shard_breakdown() {
        let knobs = EngineKnobs {
            shards: Some(2),
            ..EngineKnobs::default()
        };
        let report = cmd_profile("reach.fl", REACH, "fig1.fdb", FIG1, &knobs).unwrap();
        assert!(
            report.contains("shards: 2 workers,"),
            "missing shard section: {report}"
        );
        assert!(report.contains("rows routed "), "{report}");
        assert!(
            report.contains("imbalance (max/mean shard wall):"),
            "{report}"
        );
        assert!(report.contains("shard         wall"), "{report}");
    }

    #[test]
    fn sharded_batch_eval_matches_serial_rows() {
        // Ground database: every derived condition is `true`, so the
        // rendered rows are directly comparable as sorted sets.
        let ground = "\
@schema E(a, b)
E(1, 2).
E(2, 3).
E(3, 4).
E(4, 5).
";
        let tc = "R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n";
        let run = |knobs: &EngineKnobs| {
            let report = cmd_eval_batch(
                &[("g.fdb".to_owned(), ground.to_owned())],
                "tc.fl",
                tc,
                PrunePolicy::EndOfStratum,
                Some("R"),
                knobs,
                &ObsOptions::artifacts(false, true),
            )
            .unwrap();
            let mut rows: Vec<String> = report
                .rendered
                .lines()
                .filter(|l| l.starts_with("  "))
                .map(|l| l.trim().to_owned())
                .collect();
            rows.sort_unstable();
            (rows, report.metrics_json.unwrap())
        };
        let (serial_rows, serial_metrics) = run(&EngineKnobs::default());
        let (sharded_rows, sharded_metrics) = run(&EngineKnobs {
            shards: Some(4),
            ..EngineKnobs::default()
        });
        assert_eq!(serial_rows, sharded_rows);
        assert!(
            serial_metrics.contains("\"shards\":{\"count\":0,"),
            "{serial_metrics}"
        );
        assert!(
            sharded_metrics.contains("\"shards\":{\"count\":4,"),
            "{sharded_metrics}"
        );
        assert!(
            sharded_metrics.contains("\"routed_rows\":"),
            "{sharded_metrics}"
        );
    }

    #[test]
    fn shard_key_overrides_validate_against_program() {
        let knobs = EngineKnobs {
            shards: Some(2),
            shard_keys: vec![("NoSuch".to_owned(), 0)],
            ..EngineKnobs::default()
        };
        let e = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &knobs,
            &ObsOptions::none(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("invalid shard key"), "{e}");
        // A valid override is accepted and still derives the same rows.
        let ok = EngineKnobs {
            shards: Some(2),
            shard_keys: vec![("R".to_owned(), 2)],
            ..EngineKnobs::default()
        };
        let report = cmd_eval_batch(
            &one_db("fig1.fdb"),
            "reach.fl",
            REACH,
            PrunePolicy::EndOfStratum,
            Some("R"),
            &ok,
            &ObsOptions::none(),
        )
        .unwrap();
        assert!(report.rendered.contains("R("), "{}", report.rendered);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
