//! Per-rule join-feasibility analysis under inferred column domains.
//!
//! Given the current per-predicate column domains, [`analyze_rule`]
//! computes the abstract environment of one rule — the domain of each
//! rule variable as the **meet** of the column domains at every one of
//! its positive-atom occurrences, then refined by the rule's
//! `variable op constant` comparison atoms — and reports the first
//! proof of infeasibility it finds, if any:
//!
//! * a positive atom ranges over a predicate with no possible tuples;
//! * a constant (or domain-restricted c-variable) argument falls
//!   outside the column's inferred domain;
//! * a shared variable's occurrence domains are disjoint (the join can
//!   never produce a row);
//! * a comparison contradicts the inferred domain of its variable.
//!
//! The environment is an over-approximation, so an infeasibility proof
//! is sound: the rule can never derive a tuple, over any world.

use crate::domains::AbsDom;
use crate::infer::Columns;
use faure_core::{ArgTerm, CompExpr, Comparison, Rule};
use faure_ctable::{CVarRegistry, CmpOp, Const};
use std::collections::{BTreeMap, BTreeSet};

/// Why a rule can never derive a tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Infeasibility {
    /// A positive body atom ranges over a predicate that can hold no
    /// tuple at all.
    EmptyPredicate {
        /// Body literal index.
        literal: usize,
        /// The empty predicate.
        predicate: String,
    },
    /// A constant argument falls outside the inferred column domain.
    ConstOutsideDomain {
        /// Body literal index.
        literal: usize,
        /// Argument column.
        col: usize,
        /// The constant.
        constant: Const,
        /// The probed predicate.
        predicate: String,
        /// The inferred column domain it misses.
        domain: AbsDom,
    },
    /// A c-variable argument's registry domain is disjoint from the
    /// inferred column domain.
    CVarOutsideDomain {
        /// Body literal index.
        literal: usize,
        /// Argument column.
        col: usize,
        /// The c-variable name.
        cvar: String,
        /// The probed predicate.
        predicate: String,
        /// The inferred column domain it misses.
        domain: AbsDom,
    },
    /// A shared rule variable's occurrence domains are disjoint.
    DisjointColumns {
        /// Body literal index of the occurrence that emptied the meet.
        literal: usize,
        /// Argument column of that occurrence.
        col: usize,
        /// The variable.
        variable: String,
        /// Its domain before this occurrence.
        before: AbsDom,
        /// The column domain of this occurrence.
        here: AbsDom,
    },
    /// A comparison contradicts the variable's domain.
    Comparison {
        /// Index into `rule.comparisons`.
        comparison: usize,
        /// The variable whose domain was emptied.
        variable: String,
        /// The variable's domain as inferred from atoms alone (before
        /// any comparison refinement). When the comparison empties this
        /// domain directly the contradiction is against *inferred*
        /// facts (diagnostic F0011); otherwise it only contradicts
        /// earlier comparisons (already F0008's territory).
        atom_domain: AbsDom,
        /// Whether the comparison contradicts the atom-inferred domain
        /// on its own.
        against_atoms: bool,
    },
}

/// The abstract semantics of one rule body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleSemantics {
    /// Final domain of each rule variable (atom meets + comparison
    /// refinements). Variables of infeasible rules keep whatever was
    /// computed before the proof of infeasibility.
    pub env: BTreeMap<String, AbsDom>,
    /// Domain of each rule variable from positive atoms only.
    pub atom_env: BTreeMap<String, AbsDom>,
    /// The first infeasibility proof found, if any.
    pub infeasible: Option<Infeasibility>,
}

/// The column domain for `pred[col]`, defaulting to ⊤ when the
/// predicate or column is unknown (e.g. under an arity conflict).
fn col_domain(columns: &Columns, pred: &str, col: usize) -> AbsDom {
    columns
        .get(pred)
        .and_then(|cols| cols.get(col))
        .cloned()
        .unwrap_or(AbsDom::Top)
}

/// Computes the abstract environment and feasibility of `rule` under
/// the current `columns` and the set of possibly-`nonempty` predicates.
/// `reg` supplies c-variable domains when a database was given.
pub fn analyze_rule(
    rule: &Rule,
    columns: &Columns,
    nonempty: &BTreeSet<String>,
    reg: Option<&CVarRegistry>,
) -> RuleSemantics {
    let mut sem = RuleSemantics::default();

    // Positive atoms: meet the column domain into each argument.
    for (li, lit) in rule.body.iter().enumerate() {
        if lit.is_negative() {
            continue;
        }
        let atom = lit.atom();
        let pred = atom.pred.as_str();
        if !nonempty.contains(pred) {
            sem.infeasible = Some(Infeasibility::EmptyPredicate {
                literal: li,
                predicate: pred.to_owned(),
            });
            return sem;
        }
        for (col, arg) in atom.args.iter().enumerate() {
            let d = col_domain(columns, pred, col);
            match arg {
                ArgTerm::Cst(c) => {
                    if !d.contains(c) {
                        sem.infeasible = Some(Infeasibility::ConstOutsideDomain {
                            literal: li,
                            col,
                            constant: c.clone(),
                            predicate: pred.to_owned(),
                            domain: d,
                        });
                        return sem;
                    }
                }
                ArgTerm::CVar(name) => {
                    let cd = reg
                        .and_then(|r| r.by_name(name).map(|id| AbsDom::from_domain(r.domain(id))))
                        .unwrap_or(AbsDom::Top);
                    if cd.meet(&d).is_bottom() {
                        sem.infeasible = Some(Infeasibility::CVarOutsideDomain {
                            literal: li,
                            col,
                            cvar: name.clone(),
                            predicate: pred.to_owned(),
                            domain: d,
                        });
                        return sem;
                    }
                }
                ArgTerm::Var(v) => {
                    let before = sem.env.get(v).cloned().unwrap_or(AbsDom::Top);
                    let met = before.meet(&d);
                    if met.is_bottom() {
                        sem.infeasible = Some(Infeasibility::DisjointColumns {
                            literal: li,
                            col,
                            variable: v.clone(),
                            before,
                            here: d,
                        });
                        return sem;
                    }
                    sem.env.insert(v.clone(), met);
                }
            }
        }
    }
    sem.atom_env = sem.env.clone();

    // Comparisons: sequentially refine `var op const` shapes.
    for (ci, cmp) in rule.comparisons.iter().enumerate() {
        let Some((var, op, c)) = var_op_const(cmp) else {
            continue;
        };
        // Safety guarantees comparison variables are atom-bound; under
        // a safety violation the variable is simply unknown (⊤).
        let cur = sem.env.get(var).cloned().unwrap_or(AbsDom::Top);
        let refined = cur.refine(op, &c);
        if refined.is_bottom() {
            let atom_domain = sem.atom_env.get(var).cloned().unwrap_or(AbsDom::Top);
            // Would the comparisons alone (over an unconstrained ⊤
            // variable) already be contradictory? Then the unsat-rule
            // pass owns the report and the atom domains add nothing.
            let alone_bottom = rule
                .comparisons
                .iter()
                .take(ci + 1)
                .filter_map(var_op_const)
                .filter(|(v, _, _)| *v == var)
                .fold(AbsDom::Top, |d, (_, op, c)| d.refine(op, &c))
                .is_bottom();
            let against_atoms = !alone_bottom && atom_domain.refine(op, &c).is_bottom();
            sem.infeasible = Some(Infeasibility::Comparison {
                comparison: ci,
                variable: var.to_owned(),
                atom_domain,
                against_atoms,
            });
            return sem;
        }
        sem.env.insert(var.to_owned(), refined);
    }
    sem
}

/// Destructures a comparison of the shape `var op const` (in either
/// orientation), the only shape the refinement understands.
fn var_op_const(cmp: &Comparison) -> Option<(&str, CmpOp, Const)> {
    match (&cmp.lhs, &cmp.rhs) {
        (CompExpr::Arg(ArgTerm::Var(v)), CompExpr::Arg(ArgTerm::Cst(c))) => {
            Some((v.as_str(), cmp.op, c.clone()))
        }
        (CompExpr::Arg(ArgTerm::Cst(c)), CompExpr::Arg(ArgTerm::Var(v))) => {
            Some((v.as_str(), flip(cmp.op), c.clone()))
        }
        _ => None,
    }
}

/// Mirrors a comparison operator (for `const op var` normalisation).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}
