//! Inter-domain analysis under limited visibility.
//!
//! The paper's second motivation (§1): "the inability to obtain the
//! BGP configuration inputs from external domains leaves most attempts
//! to verify the global routing behavior futile … even when some
//! aspects of the network are unknown, it is desirable to implement
//! some (perhaps weaker) verification than stop working entirely."
//!
//! This module models exactly that situation with c-tables:
//!
//! * the operator's **own domain** exports concrete routing edges;
//! * each **external domain** is opaque — all that is known is *which
//!   neighbour it might forward through*, modelled as a c-variable
//!   `nh̄_d` (the domain's chosen next hop) ranging over its
//!   neighbours, plus optional **policy facts** that exclude choices
//!   (e.g. "domain 3 never routes through its provider 4": `nh̄_3 ≠ 4`);
//! * the forwarding c-table `E(from, to)` then contains, per external
//!   domain, one row per candidate neighbour guarded by `nh̄_d = n`.
//!
//! Reachability questions get *partial* answers in the paper's sense:
//! definite (`true` condition — reachable no matter what the external
//! domains do), conditional (reachable exactly under some choices), or
//! definitely not (no satisfiable condition). This is loss-less: no
//! commitment to any particular external behaviour is baked in.

use faure_ctable::{CTuple, CVarId, Condition, Const, Database, Domain, Schema, Term};
use std::collections::BTreeMap;

/// A domain (AS) identifier.
pub type DomainId = i64;

/// How much is known about one domain.
#[derive(Clone, Debug)]
pub enum Visibility {
    /// Fully known: exact forwarding edges to the given neighbours.
    Known(Vec<DomainId>),
    /// Opaque: forwards to exactly one of the candidate neighbours,
    /// which one is unknown.
    Opaque {
        /// Candidate next hops.
        candidates: Vec<DomainId>,
    },
}

/// Builder for an inter-domain scenario.
#[derive(Clone, Debug, Default)]
pub struct Internet {
    domains: BTreeMap<DomainId, Visibility>,
    /// Exclusions: `(domain, forbidden next hop)` policy knowledge.
    exclusions: Vec<(DomainId, DomainId)>,
}

/// The compiled scenario.
pub struct Scenario {
    /// Database with the `E(from, to)` forwarding c-table.
    pub db: Database,
    /// The next-hop c-variable of each opaque domain.
    pub choice_vars: BTreeMap<DomainId, CVarId>,
}

impl Internet {
    /// An empty scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a fully known domain with its forwarding neighbours.
    pub fn known(mut self, d: DomainId, neighbours: &[DomainId]) -> Self {
        self.domains
            .insert(d, Visibility::Known(neighbours.to_vec()));
        self
    }

    /// Declares an opaque domain: it forwards to exactly one of
    /// `candidates`, unknown which.
    pub fn opaque(mut self, d: DomainId, candidates: &[DomainId]) -> Self {
        self.domains.insert(
            d,
            Visibility::Opaque {
                candidates: candidates.to_vec(),
            },
        );
        self
    }

    /// Adds policy knowledge: `d` never forwards through `banned`.
    pub fn exclude(mut self, d: DomainId, banned: DomainId) -> Self {
        self.exclusions.push((d, banned));
        self
    }

    /// Compiles the scenario into a c-table database.
    ///
    /// Exclusions *shrink the domain* of the choice variable: knowing
    /// "domain `d` never forwards through `n`" removes `n` from the
    /// worlds under consideration (this is what sharpens conditional
    /// answers into definite ones). A domain whose every candidate is
    /// excluded contributes no edges at all.
    pub fn build(self) -> Scenario {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["from", "to"]))
            .expect("fresh database");
        let mut choice_vars = BTreeMap::new();

        for (&d, vis) in &self.domains {
            match vis {
                Visibility::Known(neighbours) => {
                    for &n in neighbours {
                        db.insert("E", CTuple::new([Term::int(d), Term::int(n)]))
                            .expect("arity 2");
                    }
                }
                Visibility::Opaque { candidates } => {
                    let allowed: Vec<DomainId> = candidates
                        .iter()
                        .copied()
                        .filter(|&n| {
                            !self
                                .exclusions
                                .iter()
                                .any(|&(xd, banned)| xd == d && banned == n)
                        })
                        .collect();
                    if allowed.is_empty() {
                        continue;
                    }
                    let var = db.fresh_cvar(format!("nh{d}"), Domain::Ints(allowed.clone()));
                    choice_vars.insert(d, var);
                    for &n in allowed.iter() {
                        db.insert(
                            "E",
                            CTuple::with_cond(
                                [Term::int(d), Term::int(n)],
                                Condition::eq(Term::Var(var), Term::int(n)),
                            ),
                        )
                        .expect("arity 2");
                    }
                }
            }
        }
        Scenario { db, choice_vars }
    }
}

/// The reachability program over the inter-domain edge table.
pub fn reach_program() -> faure_core::Program {
    faure_core::parse_program(
        "Reach(a, b) :- E(a, b).\n\
         Reach(a, b) :- E(a, c), Reach(c, b).\n",
    )
    .expect("static program text")
}

/// Classification of a reachability question under partial knowledge.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// Reachable no matter what the opaque domains do.
    Definite,
    /// Reachable exactly under the returned condition on the opaque
    /// domains' choices.
    Conditional(Condition),
    /// Not reachable under any choice.
    No,
}

/// Asks whether `from` can reach `to` in the scenario.
pub fn can_reach(
    scenario: &Scenario,
    from: DomainId,
    to: DomainId,
) -> Result<Answer, Box<dyn std::error::Error>> {
    let out = faure_core::evaluate(&reach_program(), &scenario.db)?;
    let Some(rel) = out.relation("Reach") else {
        return Ok(Answer::No);
    };
    let row = rel
        .iter()
        .find(|t| t.terms == vec![Term::int(from), Term::int(to)]);
    match row {
        None => Ok(Answer::No),
        Some(t) if t.cond == Condition::True => Ok(Answer::Definite),
        Some(t) => Ok(Answer::Conditional(t.cond.clone())),
    }
}

/// Convenience: the constant domain value (used in conditions shown to
/// users).
pub fn domain_const(d: DomainId) -> Const {
    Const::Int(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Our domain 1 peers with 2 and 3; opaque transit 2 forwards to 4
    /// or 5; opaque transit 3 forwards to 4; 4 and 5 both reach the
    /// destination 9.
    fn scenario() -> Scenario {
        Internet::new()
            .known(1, &[2, 3])
            .opaque(2, &[4, 5])
            .known(3, &[4])
            .known(4, &[9])
            .known(5, &[9])
            .build()
    }

    #[test]
    fn definite_despite_opacity() {
        // 1 → 9 succeeds whichever way domain 2 forwards: via 3→4 it is
        // even independent of 2.
        let s = scenario();
        assert_eq!(can_reach(&s, 1, 9).unwrap(), Answer::Definite);
    }

    #[test]
    fn conditional_through_opaque_transit() {
        // 2 → 5 only happens if domain 2 picks 5.
        let s = scenario();
        match can_reach(&s, 2, 5).unwrap() {
            Answer::Conditional(c) => {
                let var = s.choice_vars[&2];
                assert!(faure_solver::equivalent(
                    &s.db.cvars,
                    &c,
                    &Condition::eq(Term::Var(var), Term::int(5)),
                )
                .unwrap());
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_is_no() {
        let s = scenario();
        assert_eq!(can_reach(&s, 9, 1).unwrap(), Answer::No);
    }

    #[test]
    fn policy_knowledge_sharpens_answers() {
        // Without policy: 2 → 4 is conditional (2 might pick 5).
        let loose = Internet::new()
            .opaque(2, &[4, 5])
            .known(4, &[9])
            .known(5, &[8])
            .build();
        assert!(matches!(
            can_reach(&loose, 2, 9).unwrap(),
            Answer::Conditional(_)
        ));
        // Knowing "2 never forwards through 5" makes 2 → 9 definite.
        let tight = Internet::new()
            .opaque(2, &[4, 5])
            .exclude(2, 5)
            .known(4, &[9])
            .known(5, &[8])
            .build();
        assert_eq!(can_reach(&tight, 2, 9).unwrap(), Answer::Definite);
    }

    #[test]
    fn chained_opacity_composes_conditions() {
        // 1 → 2? → 3? → 9: both hops opaque with detours.
        let s = Internet::new()
            .known(1, &[2])
            .opaque(2, &[3, 8])
            .opaque(3, &[9, 8])
            .build();
        match can_reach(&s, 1, 9).unwrap() {
            Answer::Conditional(c) => {
                let expected = Condition::eq(Term::Var(s.choice_vars[&2]), Term::int(3))
                    .and(Condition::eq(Term::Var(s.choice_vars[&3]), Term::int(9)));
                assert!(faure_solver::equivalent(&s.db.cvars, &c, &expected).unwrap());
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn lossless_against_world_enumeration() {
        // The partial answer must agree with enumerating every
        // combination of external choices.
        let s = scenario();
        let out = faure_core::evaluate(&reach_program(), &s.db).unwrap();
        let rel = out.relation("Reach").unwrap();
        for world in faure_ctable::worlds::WorldIter::new(&s.db, None).unwrap() {
            // Ground closure in this world.
            let e = world.relation("E").unwrap();
            let mut reach: std::collections::BTreeSet<(i64, i64)> = e
                .tuples
                .iter()
                .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
                .collect();
            loop {
                let snapshot: Vec<_> = reach.iter().copied().collect();
                let before = reach.len();
                for &(a, b) in &snapshot {
                    for &(c, d) in &snapshot {
                        if b == c {
                            reach.insert((a, d));
                        }
                    }
                }
                if reach.len() == before {
                    break;
                }
            }
            let lookup = world.assignment.lookup();
            for t in rel.iter() {
                let pair = (
                    t.terms[0].as_const().unwrap().as_int().unwrap(),
                    t.terms[1].as_const().unwrap().as_int().unwrap(),
                );
                assert_eq!(
                    t.cond.eval(&lookup) == Some(true),
                    reach.contains(&pair),
                    "pair {pair:?} world {:?}",
                    world.assignment
                );
            }
        }
    }
}
