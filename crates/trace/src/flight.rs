//! Flight recorder: a bounded ring-buffer [`TraceSink`].
//!
//! The [`crate::Recorder`] keeps *every* event, which is right for a
//! bounded batch run but unbounded for a long-lived process. The
//! [`FlightRecorder`] keeps only the last `capacity` events and counts
//! what it evicted, so the CLI can install it unconditionally and, on
//! a panic or error exit, dump the recent span history as a
//! Perfetto-loadable Chrome trace — the black-box recorder pattern.
//!
//! Chunk-order preservation: the engine's parallel driver submits each
//! rule pass's buffered worker spans as **one batch in chunk index
//! order** ([`crate::Tracer::submit`] → [`TraceSink::record_batch`]).
//! The ring appends a whole batch under a single lock acquisition, so
//! concurrent submitters can interleave *between* batches but never
//! *within* one — the retained suffix of any batch stays contiguous
//! and in order, which is what makes the dump readable.

use crate::chrome;
use crate::{Event, TraceSink};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity when the CLI's `--flight-capacity` is absent.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A fixed-capacity ring of the most recent trace events.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding at most `capacity` events (capacity 0 is clamped
    /// to 1 — a recorder that can hold nothing records nothing useful).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted to make room (exact: evictions happen
    /// under the ring lock).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events as Chrome `trace_event` JSON (loadable in
    /// Perfetto / `chrome://tracing`), for the panic-hook and
    /// error-exit dumps.
    pub fn to_chrome_json(&self) -> String {
        chrome::trace_json(&self.snapshot())
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, event: Event) {
        self.record_batch(vec![event]);
    }

    fn record_batch(&self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        let mut dropped = 0u64;
        for e in events {
            if ring.len() == self.capacity {
                ring.pop_front();
                dropped += 1;
            }
            ring.push_back(e);
        }
        if dropped > 0 {
            // Counted under the lock's critical section, so the total
            // is exact even under concurrent submitters.
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

/// Fans one event stream out to several sinks — e.g. the per-run
/// [`crate::Recorder`] that feeds `--trace`/`--metrics` *and* the
/// always-on flight ring.
#[derive(Debug)]
pub struct Tee {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl Tee {
    /// A tee over `sinks` (events are cloned per extra sink).
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Tee { sinks }
    }
}

impl TraceSink for Tee {
    fn record(&self, event: Event) {
        let Some((last, rest)) = self.sinks.split_last() else {
            return;
        };
        for s in rest {
            s.record(event.clone());
        }
        last.record(event);
    }

    fn record_batch(&self, events: Vec<Event>) {
        let Some((last, rest)) = self.sinks.split_last() else {
            return;
        };
        for s in rest {
            s.record_batch(events.clone());
        }
        last.record_batch(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn ev(name: &'static str, start: u64) -> Event {
        Event {
            cat: "test",
            name,
            start_ns: start,
            dur_ns: 1,
            track: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring = FlightRecorder::new(3);
        for i in 0..5 {
            ring.record(ev("e", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let starts: Vec<u64> = ring.snapshot().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![2, 3, 4]);
    }

    #[test]
    fn batch_larger_than_capacity_keeps_its_tail() {
        let ring = FlightRecorder::new(2);
        ring.record_batch((0..5).map(|i| ev("e", i)).collect());
        let starts: Vec<u64> = ring.snapshot().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![3, 4]);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = FlightRecorder::new(0);
        ring.record(ev("e", 1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn dump_is_chrome_trace_json() {
        let ring = FlightRecorder::new(8);
        ring.record(ev("span", 10));
        let json = ring.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn tee_duplicates_to_all_sinks() {
        let rec = Arc::new(Recorder::new());
        let ring = Arc::new(FlightRecorder::new(4));
        let tee = Tee::new(vec![
            Arc::clone(&rec) as Arc<dyn TraceSink>,
            Arc::clone(&ring) as Arc<dyn TraceSink>,
        ]);
        tee.record(ev("a", 1));
        tee.record_batch(vec![ev("b", 2), ev("c", 3)]);
        assert_eq!(rec.len(), 3);
        assert_eq!(ring.len(), 3);
    }
}
