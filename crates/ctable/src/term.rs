//! Terms — elements of the c-domain `dom^C`.

use crate::cvar::{CVarId, CVarRegistry};
use crate::value::Const;
use std::fmt;

/// A cell value in a c-table: either a constant or a c-variable.
///
/// The paper extends the usual attribute domain `dom` with the
/// c-variables, forming the **c-domain** `dom^C`; a `Term` is exactly
/// one element of `dom^C`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A known constant.
    Const(Const),
    /// An unknown value named by a c-variable.
    Var(CVarId),
}

impl Term {
    /// Convenience constructor for symbolic constants.
    pub fn sym(name: &str) -> Self {
        Term::Const(Const::sym(name))
    }

    /// Convenience constructor for integer constants.
    pub fn int(v: i64) -> Self {
        Term::Const(Const::int(v))
    }

    /// Whether this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The constant payload, if any.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// The c-variable payload, if any.
    pub fn as_var(&self) -> Option<CVarId> {
        match self {
            Term::Const(_) => None,
            Term::Var(v) => Some(*v),
        }
    }

    /// Instantiates the term under an assignment lookup.
    ///
    /// `lookup` returns the constant assigned to a c-variable, or
    /// `None` if the variable is unbound; it is usually backed by a
    /// possible-world [`Assignment`](crate::worlds::Assignment).
    /// Returns `None` exactly when the term is an unbound c-variable.
    pub fn instantiate(&self, lookup: &impl Fn(CVarId) -> Option<Const>) -> Option<Const> {
        match self {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => lookup(*v),
        }
    }

    /// Renders the term using c-variable names from `reg` (c-variables
    /// are shown with a trailing `'`, mimicking the paper's overbar).
    pub fn display<'a>(&'a self, reg: &'a CVarRegistry) -> TermDisplay<'a> {
        TermDisplay { term: self, reg }
    }
}

/// Helper returned by [`Term::display`].
pub struct TermDisplay<'a> {
    term: &'a Term,
    reg: &'a CVarRegistry,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{}'", self.reg.name(*v)),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

impl From<CVarId> for Term {
    fn from(v: CVarId) -> Self {
        Term::Var(v)
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Self {
        Term::int(v)
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Self {
        Term::sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvar::Domain;

    #[test]
    fn accessors() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let t = Term::Var(x);
        assert!(!t.is_const());
        assert_eq!(t.as_var(), Some(x));
        assert_eq!(Term::int(3).as_const(), Some(&Const::Int(3)));
    }

    #[test]
    fn instantiate_substitutes_vars() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let lookup = |v: CVarId| {
            assert_eq!(v, x);
            Some(Const::Int(1))
        };
        assert_eq!(Term::Var(x).instantiate(&lookup), Some(Const::Int(1)));
        assert_eq!(Term::sym("A").instantiate(&lookup), Some(Const::sym("A")));
        let unbound = |_: CVarId| None;
        assert_eq!(Term::Var(x).instantiate(&unbound), None);
        assert_eq!(Term::sym("A").instantiate(&unbound), Some(Const::sym("A")));
    }

    #[test]
    fn display_uses_registry_names() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        assert_eq!(Term::Var(x).display(&reg).to_string(), "x'");
        assert_eq!(Term::sym("Mkt").display(&reg).to_string(), "Mkt");
    }
}
