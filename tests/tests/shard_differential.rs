//! Differential testing of the sharded fixpoint engine (ISSUE 10).
//!
//! The sharded driver (`EvalOptions::shards > 1`) partitions each
//! stratum's delta across worker shards on the `ShardPlan` key and
//! merges exchanged batches in `(producer, seq)` order at every pass
//! barrier. That must be invisible in results: same derived rows with
//! the same *canonicalized* conditions as the single-space engine at
//! every shard count. (Stored-condition spelling and row order may
//! legitimately differ — the barrier merge interleaves producers
//! differently than one serial scan — which is why the comparison
//! canonicalizes and sorts, unlike the bit-exact `engine_parallel`
//! suite for thread-level parallelism.)
//!
//! Programs and databases come from the shared corpus
//! (`faure_tests::corpus`): linear and non-linear recursion, stratified
//! negation over EDB and IDB, comparison pushdown, and c-variable-only
//! comparisons. C-variable head cells also land in partition-key
//! columns, so the broadcast fallback is constantly exercised.
//!
//! Beyond output equality the suite pins:
//! * **determinism at a fixed shard count** — two identical sharded
//!   runs agree on rows, conditions, *and* the deterministic counters
//!   (`tuples`, `delta_sizes`, routed/broadcast row counts);
//! * **composition with incremental `apply`** — a standing sharded
//!   state maintained through a delta stream matches the serial
//!   maintained state (the recompute fallback dispatches to the
//!   sharded driver too).

use faure_core::engine::canonicalize;
use faure_core::{evaluate_with, Delta, Engine, EvalOptions, EvalOutput, Program};
use faure_ctable::{Const, Database};
use faure_tests::corpus::{arb_db, arb_program};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Every derived row of every IDB relation as a canonical string —
/// terms plus the canonicalized condition — collected into a set so the
/// comparison is insensitive to row order and condition spelling.
fn canonical_rows(out: &EvalOutput, program: &Program) -> BTreeSet<String> {
    let mut rows = BTreeSet::new();
    for pred in program.idb_predicates() {
        for row in out.relation(pred).expect("IDB relation exists").iter() {
            rows.insert(format!(
                "{pred}{:?} | {:?}",
                row.terms,
                canonicalize(row.cond.clone())
            ));
        }
    }
    rows
}

fn eval_sharded(program: &Program, db: &Database, shards: usize) -> EvalOutput {
    let opts = EvalOptions {
        shards,
        ..EvalOptions::default()
    };
    evaluate_with(program, db, &opts).expect("evaluation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded evaluation derives the same rows and canonicalized
    /// conditions as the single-space engine at 2, 4, and 8 shards.
    #[test]
    fn sharded_matches_single_space(db in arb_db(), program in arb_program()) {
        let serial = canonical_rows(&eval_sharded(&program, &db, 1), &program);
        for shards in [2usize, 4, 8] {
            let sharded = canonical_rows(&eval_sharded(&program, &db, shards), &program);
            prop_assert_eq!(
                &serial,
                &sharded,
                "shards={} diverged from single-space\nprogram:\n{}",
                shards,
                &program
            );
        }
    }

    /// Two runs at the same shard count agree bit-for-bit on the
    /// deterministic counters: tuples, per-iteration delta sizes, and
    /// the routed/broadcast row counts.
    #[test]
    fn sharded_counters_are_deterministic(db in arb_db(), program in arb_program()) {
        let a = eval_sharded(&program, &db, 4);
        let b = eval_sharded(&program, &db, 4);
        prop_assert_eq!(canonical_rows(&a, &program), canonical_rows(&b, &program));
        prop_assert_eq!(a.stats.tuples, b.stats.tuples);
        prop_assert_eq!(&a.stats.delta_sizes, &b.stats.delta_sizes);
        prop_assert_eq!(a.stats.shard.routed_rows, b.stats.shard.routed_rows);
        prop_assert_eq!(a.stats.shard.broadcast_rows, b.stats.shard.broadcast_rows);
        prop_assert_eq!(a.stats.shard.passes, b.stats.shard.passes);
    }

    /// A standing sharded materialization maintained through a stream
    /// of EDB insertions matches the serial maintained state after
    /// every batch (the incremental path routes recomputed strata
    /// through the sharded driver too).
    #[test]
    fn sharded_apply_matches_serial_apply(
        db in arb_db(),
        program in arb_program(),
        stream in prop::collection::vec(
            prop::collection::vec((0i64..3, 0i64..3), 1..3), 1..3),
    ) {
        let serial_opts = EvalOptions::default();
        let sharded_opts = EvalOptions { shards: 4, ..EvalOptions::default() };
        let prepared_serial = Engine::with_options(serial_opts)
            .prepare(&program).expect("prepare");
        let prepared_sharded = Engine::with_options(sharded_opts)
            .prepare(&program).expect("prepare");
        let mut st_serial = prepared_serial
            .materialize(&db).expect("materialize");
        let mut st_sharded = prepared_sharded
            .materialize(&db).expect("materialize");
        for batch in &stream {
            let mut delta = Delta::new();
            for &(a, b) in batch {
                delta.push_insert_fact("E", [Const::Int(a), Const::Int(b)]);
            }
            prepared_serial
                .apply(&mut st_serial, delta.clone())
                .expect("serial apply");
            prepared_sharded
                .apply(&mut st_sharded, delta)
                .expect("sharded apply");
            for pred in program.idb_predicates() {
                let rows = |st: &faure_core::MaterializedState| -> BTreeSet<String> {
                    st.relation(pred)
                        .expect("IDB relation exists")
                        .iter()
                        .map(|row| {
                            format!("{:?} | {:?}", row.terms, canonicalize(row.cond.clone()))
                        })
                        .collect()
                };
                prop_assert_eq!(
                    rows(&st_serial),
                    rows(&st_sharded),
                    "pred {} diverged after apply\nprogram:\n{}",
                    pred,
                    &program
                );
            }
        }
    }
}
