//! # faure-cli — the `faure` command-line tool
//!
//! A standalone front end over the whole toolkit. Databases are plain
//! text: c-variable declarations plus *conditional facts*, which are
//! ordinary fauré-log facts whose body is a condition —
//!
//! ```text
//! % figure1.fdb — the Figure 1 fast-reroute state
//! @cvar x in {0, 1}
//! @cvar y in {0, 1}
//! @cvar z in {0, 1}
//!
//! F(1, 1, 2) :- $x = 1.     % protected primary
//! F(1, 1, 3) :- $x = 0.     % its backup
//! F(1, 2, 3) :- $y = 1.
//! F(1, 2, 4) :- $y = 0.
//! F(1, 3, 5) :- $z = 1.
//! F(1, 3, 4) :- $z = 0.
//! F(1, 4, 5).               % unconditional
//! ```
//!
//! Subcommands (see `faure help`):
//!
//! * `eval <db> <program> [--prune P] [--relation R]` — evaluate a
//!   fauré-log program and print derived relations with conditions;
//! * `check <program>` — span-aware static analysis: all diagnostics
//!   (`F0001`…) with source snippets; `--domains <db>` adds the
//!   database-aware passes;
//! * `check <db> <constraint>` — direct verification of a `panic`
//!   constraint, with violation witnesses;
//! * `scenarios <db> <constraint>` — enumerate the concrete worlds
//!   (e.g. failure combinations) violating the constraint;
//! * `subsume <target> <known>...` — the category-(i) test;
//! * `sql <db> <query>` — a SELECT over the c-tables;
//! * `worlds <db>` — enumerate the possible worlds (small inputs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod observe;

pub use observe::{
    cmd_eval_batch, cmd_eval_updates, cmd_profile, cmd_profile_with_clock, spawn_telemetry_jsonl,
    EvalReport, ObsOptions, TelemetryJsonl,
};

use faure_core::{evaluate_with, parse_program, EvalOptions, Program, PrunePolicy};
use faure_ctable::{CVarRegistry, Const, Database, Domain};
use faure_verify::{check_direct, violation_scenarios, Constraint, DirectVerdict};
use std::fmt;

/// CLI errors (message-only; the binary prints and exits non-zero).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl From<Box<dyn std::error::Error>> for CliError {
    fn from(e: Box<dyn std::error::Error>) -> Self {
        err(e.to_string())
    }
}

/// Parses a `.fdb` database file: `@cvar` directives plus conditional
/// facts (any fauré-log program whose heads are ground-up-to-cvars).
///
/// Directive forms:
///
/// ```text
/// @cvar name in {0, 1}
/// @cvar name in {Mkt, "R&D", 7000}
/// @cvar name open
/// ```
pub fn load_database(text: &str) -> Result<Database, CliError> {
    let mut db = Database::new();
    let mut program_lines = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("@cvar") {
            parse_cvar_directive(rest.trim(), &mut db)
                .map_err(|m| err(format!("line {}: {m}", lineno + 1)))?;
        } else if let Some(rest) = line.strip_prefix("@schema") {
            parse_schema_directive(rest.trim(), &mut db)
                .map_err(|m| err(format!("line {}: {m}", lineno + 1)))?;
        } else {
            program_lines.push_str(raw);
            program_lines.push('\n');
        }
    }
    let program = parse_program(&program_lines).map_err(|e| err(format!("database facts: {e}")))?;
    for rule in &program.rules {
        if !rule.body.is_empty() {
            return Err(err(format!(
                "database files may contain only (conditional) facts, found rule `{rule}`"
            )));
        }
    }
    // Loading is an auxiliary evaluation (facts-only program, run to
    // normalise conditional facts into tables) — keep it out of the
    // process-global telemetry so `/metrics` tracks only pipeline work.
    let out = faure_core::without_telemetry(|| {
        evaluate_with(
            &program,
            &db,
            &EvalOptions {
                prune: PrunePolicy::Never,
                ..Default::default()
            },
        )
    })
    .map_err(|e| err(e.to_string()))?;
    Ok(out.database)
}

fn parse_cvar_directive(rest: &str, db: &mut Database) -> Result<(), String> {
    // "<name> in {v, v, ...}" or "<name> open"
    let (name, spec) = rest
        .split_once(char::is_whitespace)
        .ok_or("expected `@cvar <name> in {...}` or `@cvar <name> open`")?;
    let spec = spec.trim();
    if spec == "open" {
        db.fresh_cvar(name, Domain::Open);
        return Ok(());
    }
    let Some(set) = spec.strip_prefix("in") else {
        return Err("expected `in {...}` or `open`".into());
    };
    let set = set.trim();
    let inner = set
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected `{v, v, ...}`")?;
    let mut members = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Ok(n) = item.parse::<i64>() {
            members.push(Const::Int(n));
        } else if let Some(q) = item.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            members.push(Const::sym(q));
        } else {
            members.push(Const::sym(item));
        }
    }
    if members.is_empty() {
        return Err("domain must not be empty".into());
    }
    db.fresh_cvar(name, Domain::Consts(members));
    Ok(())
}

/// Parses `@schema Name(attr, attr, ...)` — declares a relation with
/// named attributes (facts otherwise get synthesised `c0..cn` names).
fn parse_schema_directive(rest: &str, db: &mut Database) -> Result<(), String> {
    let (name, args) = rest
        .split_once('(')
        .ok_or("expected `@schema Name(attr, ...)`")?;
    let name = name.trim();
    let args = args.strip_suffix(')').ok_or("expected closing `)`")?;
    let attrs: Vec<&str> = args
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    db.create_relation(faure_ctable::Schema::new(name, &attrs))
        .map_err(|e| e.to_string())
}

/// Engine tuning knobs shared by the eval-family subcommands:
/// `--threads N` (data-parallel rule passes), `--shards N` (partitioned
/// fixpoint with delta exchange), and `--shard-key pred=col` overrides
/// of the planner's chosen partition key. Both axes preserve results:
/// thread parallelism is bit-identical, sharding is set-identical after
/// condition canonicalization.
#[derive(Debug, Default, Clone)]
pub struct EngineKnobs {
    /// `--threads N`; `None` keeps the engine default (`FAURE_THREADS`).
    pub threads: Option<usize>,
    /// `--shards N`; `None` keeps the engine default (`FAURE_SHARDS`).
    pub shards: Option<usize>,
    /// `--shard-key pred=col` overrides, applied to the prepared
    /// program's shard plan before evaluation.
    pub shard_keys: Vec<(String, usize)>,
}

impl EngineKnobs {
    /// Knobs carrying only a thread count (the pre-sharding call shape).
    pub fn threads(threads: Option<usize>) -> Self {
        EngineKnobs {
            threads,
            ..Self::default()
        }
    }

    /// Applies the option-level knobs to an [`EvalOptions`]. Shard-key
    /// overrides are per-prepared-program and applied separately.
    pub(crate) fn configure(&self, opts: &mut EvalOptions) {
        if let Some(n) = self.threads {
            opts.threads = n.max(1);
        }
        if let Some(n) = self.shards {
            opts.shards = n.max(1);
        }
    }
}

/// Parses a `--shard-key` value of the form `pred=col` (a derived
/// predicate name and a zero-based head column index).
pub fn parse_shard_key(s: &str) -> Result<(String, usize), CliError> {
    let (pred, col) = s
        .split_once('=')
        .ok_or_else(|| err(format!("--shard-key takes `pred=col`, got `{s}`")))?;
    let pred = pred.trim();
    let col: usize = col
        .trim()
        .parse()
        .map_err(|_| err(format!("--shard-key column must be an integer, got `{s}`")))?;
    if pred.is_empty() {
        return Err(err(format!("--shard-key needs a predicate name in `{s}`")));
    }
    Ok((pred.to_owned(), col))
}

/// Parses `--prune` values.
pub fn parse_prune(s: &str) -> Result<PrunePolicy, CliError> {
    match s {
        "never" => Ok(PrunePolicy::Never),
        "stratum" => Ok(PrunePolicy::EndOfStratum),
        "iteration" => Ok(PrunePolicy::EveryIteration),
        "eager" => Ok(PrunePolicy::Eager),
        other => Err(err(format!(
            "unknown prune policy `{other}` (never|stratum|iteration|eager)"
        ))),
    }
}

/// Renders a relation with conditions.
pub fn render_relation(
    name: &str,
    db: &Database,
    out: &mut impl fmt::Write,
) -> Result<(), CliError> {
    let Some(rel) = db.relation(name) else {
        return Err(err(format!("no relation named {name}")));
    };
    writeln!(out, "{}({}):", rel.schema.name, rel.schema.attrs.join(", "))
        .map_err(|e| err(e.to_string()))?;
    for t in rel.iter() {
        writeln!(out, "  {}", t.display(&db.cvars)).map_err(|e| err(e.to_string()))?;
    }
    Ok(())
}

/// `faure eval` implementation; returns the rendered output.
/// `threads` > 1 runs the parallel fixpoint (results are bit-identical
/// to serial at any thread count); `None` keeps the engine default
/// (serial, or the `FAURE_THREADS` environment variable).
pub fn cmd_eval(
    db_text: &str,
    program_text: &str,
    prune: PrunePolicy,
    only_relation: Option<&str>,
    threads: Option<usize>,
) -> Result<String, CliError> {
    let db = load_database(db_text)?;
    let program = parse_program(program_text).map_err(|e| err(e.to_string()))?;
    let mut opts = EvalOptions {
        prune,
        ..Default::default()
    };
    if let Some(n) = threads {
        opts.threads = n.max(1);
    }
    let out = evaluate_with(&program, &db, &opts).map_err(|e| err(e.to_string()))?;
    let mut s = String::new();
    match only_relation {
        Some(r) => render_relation(r, &out.database, &mut s)?,
        None => {
            for p in program.idb_predicates() {
                render_relation(p, &out.database, &mut s)?;
            }
        }
    }
    use fmt::Write;
    writeln!(
        s,
        "-- {} tuples, relational {:?}, solver {:?}",
        out.stats.tuples, out.stats.relational, out.stats.solver
    )
    .map_err(|e| err(e.to_string()))?;
    Ok(s)
}

/// `faure check` implementation.
pub fn cmd_check(db_text: &str, constraint_text: &str) -> Result<String, CliError> {
    let db = load_database(db_text)?;
    let program = parse_program(constraint_text).map_err(|e| err(e.to_string()))?;
    let constraint = Constraint::new("constraint", program).map_err(|e| err(e.to_string()))?;
    let verdict = check_direct(&constraint, &db).map_err(|e| err(e.to_string()))?;
    let mut s = String::new();
    use fmt::Write;
    match verdict {
        DirectVerdict::Holds => writeln!(&mut s, "HOLDS in every possible world"),
        DirectVerdict::Violated(vs) => writeln!(&mut s, "VIOLATED:").and_then(|()| {
            for v in &vs {
                writeln!(&mut s, "  {}", v.display(&db.cvars))?;
            }
            Ok(())
        }),
    }
    .map_err(|e| err(e.to_string()))?;
    Ok(s)
}

/// Result of `faure check <program.fl>` (the lint form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintOutcome {
    /// Rendered diagnostics plus a one-line summary.
    pub rendered: String,
    /// Number of error-severity diagnostics.
    pub errors: usize,
    /// Number of warning-severity diagnostics.
    pub warnings: usize,
}

/// `faure check <program.fl>` implementation: runs the span-aware
/// analyzer and renders all diagnostics rustc-style. With `db`, the
/// database-aware passes (schema arity, shadowing, undefined
/// relations) run too.
pub fn cmd_lint(source: &str, filename: &str, db: Option<&Database>) -> LintOutcome {
    use faure_analyze::Severity;
    let report = match db {
        Some(db) => faure_analyze::check_source_with_db(source, db),
        None => faure_analyze::check_source(source),
    };
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.len() - errors;
    let mut rendered = report.render(source, filename);
    match (errors, warnings) {
        (0, 0) => rendered.push_str(&format!("{filename}: no problems found\n")),
        (e, w) => rendered.push_str(&format!("{filename}: {e} error(s), {w} warning(s)\n")),
    }
    LintOutcome {
        rendered,
        errors,
        warnings,
    }
}

/// `faure check <program.fl> --format json` implementation: same
/// analysis as [`cmd_lint`], rendered as a JSON array of diagnostics
/// (code, severity, message, file, line, col, span) for editor and CI
/// integration.
pub fn cmd_lint_json(source: &str, filename: &str, db: Option<&Database>) -> LintOutcome {
    use faure_analyze::Severity;
    let report = match db {
        Some(db) => faure_analyze::check_source_with_db(source, db),
        None => faure_analyze::check_source(source),
    };
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.len() - errors;
    LintOutcome {
        rendered: report.to_json(source, filename),
        errors,
        warnings,
    }
}

/// `faure explain <program.fl>` implementation: prints the compiled
/// rule plans (join order by bound-column selectivity, semi-naive
/// delta slots, pushed-down comparisons, trailing negations) for every
/// stratum — the plans the evaluation engine caches and executes —
/// followed by the per-predicate column domains the abstract
/// interpreter infers from the program text alone.
pub fn cmd_explain(program_text: &str) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let program = parse_program(program_text).map_err(|e| CliError(e.to_string()))?;
    let mut out = faure_core::explain_program(&program).map_err(|e| CliError(e.to_string()))?;
    // Program-only inference: input relations are ⊤ (unknown contents),
    // so anything tighter below was proven from the rules themselves.
    let inference = faure_analyze::infer(&program, None);
    let _ = writeln!(out, "\ninferred domains (program-only):");
    for (pred, cols) in &inference.columns {
        let rendered: Vec<String> = cols.iter().map(|d| d.to_string()).collect();
        let empty = if inference.nonempty.contains(pred) {
            ""
        } else {
            "   [provably empty]"
        };
        let _ = writeln!(out, "  {pred}({}){empty}", rendered.join(", "));
    }
    Ok(out)
}

/// `faure explain <program.fl> --format json` implementation: the same
/// compiled plans as [`cmd_explain`], rendered as a JSON array (one
/// object per rule with its full and delta-pass plans) for editor and
/// CI integration — parity with `faure check --format json`.
pub fn cmd_explain_json(program_text: &str) -> Result<String, CliError> {
    let program = parse_program(program_text).map_err(|e| CliError(e.to_string()))?;
    faure_core::explain_program_json(&program).map_err(|e| CliError(e.to_string()))
}

/// `faure scenarios` implementation.
pub fn cmd_scenarios(
    db_text: &str,
    constraint_text: &str,
    limit: usize,
) -> Result<String, CliError> {
    let db = load_database(db_text)?;
    let program = parse_program(constraint_text).map_err(|e| err(e.to_string()))?;
    let constraint = Constraint::new("constraint", program).map_err(|e| err(e.to_string()))?;
    let scenarios = violation_scenarios(&constraint, &db, limit).map_err(|e| err(e.to_string()))?;
    let mut s = String::new();
    use fmt::Write;
    if scenarios.is_empty() {
        writeln!(&mut s, "no violating scenarios").map_err(|e| err(e.to_string()))?;
    }
    for a in &scenarios {
        if a.is_empty() {
            writeln!(&mut s, "violated in every world").map_err(|e| err(e.to_string()))?;
            continue;
        }
        let desc: Vec<String> = a
            .iter()
            .map(|(v, c)| format!("{}'={}", db.cvars.name(*v), c))
            .collect();
        writeln!(&mut s, "{}", desc.join(", ")).map_err(|e| err(e.to_string()))?;
    }
    Ok(s)
}

/// `faure subsume` implementation (category (i)): does the union of
/// `known` subsume `target`? The registry comes from an optional
/// database file supplying attribute domains.
pub fn cmd_subsume(
    target_text: &str,
    known_texts: &[String],
    reg: &CVarRegistry,
) -> Result<String, CliError> {
    let target = parse_program(target_text).map_err(|e| err(e.to_string()))?;
    let mut known = Program::new();
    for k in known_texts {
        known.extend(parse_program(k).map_err(|e| err(e.to_string()))?);
    }
    match faure_core::subsumes(&known, &target, reg).map_err(|e| err(e.to_string()))? {
        faure_core::Subsumption::Subsumed => {
            Ok("SUBSUMED: the known constraints prove the target\n".into())
        }
        faure_core::Subsumption::NotShown { uncovered_rule } => Ok(format!(
            "UNKNOWN: violation pattern #{uncovered_rule} of the target is not covered\n"
        )),
    }
}

/// `faure sql` implementation.
pub fn cmd_sql(db_text: &str, query: &str) -> Result<String, CliError> {
    let db = load_database(db_text)?;
    let table = faure_storage::sql::query(&db, query).map_err(|e| err(e.to_string()))?;
    let mut s = String::new();
    use fmt::Write;
    for row in table.iter() {
        writeln!(&mut s, "{}", row.display(&db.cvars)).map_err(|e| err(e.to_string()))?;
    }
    if table.is_empty() {
        s.push_str("(no rows)\n");
    }
    Ok(s)
}

/// `faure worlds` implementation.
pub fn cmd_worlds(db_text: &str, limit: usize) -> Result<String, CliError> {
    let db = load_database(db_text)?;
    let mut s = String::new();
    use fmt::Write;
    let mut n = 0usize;
    for world in
        faure_ctable::worlds::WorldIter::new(&db, Some(1 << 16)).map_err(|e| err(e.to_string()))?
    {
        n += 1;
        if n > limit {
            writeln!(&mut s, "... (more worlds omitted)").map_err(|e| err(e.to_string()))?;
            break;
        }
        let binds: Vec<String> = world
            .assignment
            .iter()
            .map(|(v, c)| format!("{}'={}", db.cvars.name(*v), c))
            .collect();
        writeln!(&mut s, "world {n}: {}", binds.join(", ")).map_err(|e| err(e.to_string()))?;
        for rel in world.relations.values() {
            for t in &rel.tuples {
                let cells: Vec<String> = t.iter().map(Const::to_string).collect();
                writeln!(&mut s, "  {}({})", rel.schema.name, cells.join(", "))
                    .map_err(|e| err(e.to_string()))?;
            }
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
@cvar x in {0, 1}
@cvar y in {0, 1}
@cvar z in {0, 1}
@schema F(f, n1, n2)
F(1, 1, 2) :- $x = 1.
F(1, 1, 3) :- $x = 0.
F(1, 2, 3) :- $y = 1.
F(1, 2, 4) :- $y = 0.
F(1, 3, 5) :- $z = 1.
F(1, 3, 4) :- $z = 0.
F(1, 4, 5).
";

    const REACH: &str = "\
R(f, a, b) :- F(f, a, b).
R(f, a, b) :- F(f, a, c), R(f, c, b).
";

    #[test]
    fn explain_prints_reordered_plans() {
        let text = cmd_explain(REACH).unwrap();
        // The recursive rule gets a delta-pass plan whose remaining
        // literal is probed on the bound join column.
        assert!(text.contains("plan [full]"), "{text}");
        assert!(text.contains("plan [Δ R @ body 2]"), "{text}");
        assert!(text.contains("scan Δ R(f, c, b)"), "{text}");
        assert!(text.contains("probe F(f, a, c)"), "{text}");
        assert!(text.contains("emit R(f, a, b)"), "{text}");
    }

    #[test]
    fn explain_rejects_unsafe_programs() {
        assert!(cmd_explain("R(a, b) :- F(a).\n").is_err());
    }

    #[test]
    fn lint_json_reports_diagnostics() {
        let out = cmd_lint_json("R(a, b) :- F(a).\n", "bad.fl", None);
        assert_eq!(out.errors, 1);
        assert!(
            out.rendered.contains("\"code\":\"F0001\""),
            "{}",
            out.rendered
        );
        assert!(
            out.rendered.contains("\"file\":\"bad.fl\""),
            "{}",
            out.rendered
        );
        let clean = cmd_lint_json("R(a) :- F(a).\n", "ok.fl", None);
        assert_eq!(clean.errors + clean.warnings, 0);
        assert_eq!(clean.rendered, "[]\n");
    }

    #[test]
    fn load_database_with_conditional_facts() {
        let db = load_database(FIG1).unwrap();
        let f = db.relation("F").unwrap();
        assert_eq!(f.len(), 7);
        assert!(f.is_conditional());
        assert_eq!(db.cvars.len(), 3);
    }

    #[test]
    fn directive_variants() {
        let db =
            load_database("@cvar a in {0, 1}\n@cvar s in {Mkt, \"R&D\"}\n@cvar o open\nT(1).\n")
                .unwrap();
        assert_eq!(db.cvars.len(), 3);
        assert_eq!(
            db.cvars.domain(db.cvars.by_name("o").unwrap()),
            &Domain::Open
        );
    }

    #[test]
    fn bad_directives_rejected() {
        assert!(load_database("@cvar\nT(1).\n").is_err());
        assert!(load_database("@cvar x in {}\nT(1).\n").is_err());
        assert!(load_database("@cvar x maybe\nT(1).\n").is_err());
    }

    #[test]
    fn rules_in_database_rejected() {
        let e = load_database("T(a) :- S(a).\n").unwrap_err();
        assert!(e.to_string().contains("only (conditional) facts"));
    }

    #[test]
    fn eval_end_to_end() {
        let out = cmd_eval(FIG1, REACH, PrunePolicy::EndOfStratum, Some("R"), None).unwrap();
        assert!(out.contains("R("), "{out}");
        // The FRR guarantee visible from the CLI: R(1,1,5) unconditional.
        assert!(
            out.contains("(1, 1, 5)\n") || out.contains("(1, 1, 5) "),
            "{out}"
        );
    }

    #[test]
    fn eval_threads_renders_identically() {
        let serial = cmd_eval(FIG1, REACH, PrunePolicy::EndOfStratum, Some("R"), Some(1)).unwrap();
        let parallel =
            cmd_eval(FIG1, REACH, PrunePolicy::EndOfStratum, Some("R"), Some(4)).unwrap();
        // Strip the trailing stats line (timings differ run to run).
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&serial), strip(&parallel));
    }

    #[test]
    fn explain_json_end_to_end() {
        let out = cmd_explain_json(REACH).unwrap();
        assert!(out.starts_with('['), "{out}");
        assert!(out.contains(r#""op":"scan-delta""#), "{out}");
        assert!(out.contains(r#""delta":{"pred":"R","body":2}"#), "{out}");
        assert!(cmd_explain_json("R(a, b) :- F(a).\n").is_err());
    }

    #[test]
    fn check_and_scenarios() {
        let constraint = format!("{REACH}panic :- F(f, a, b), !R(1, 1, 4).\n");
        let out = cmd_check(FIG1, &constraint).unwrap();
        assert!(out.starts_with("VIOLATED"));
        let sc = cmd_scenarios(FIG1, &constraint, 10).unwrap();
        // Exactly the three worlds where the in-use branch avoids 4.
        assert_eq!(sc.lines().count(), 3);
        let holds = format!("{REACH}panic :- F(f, a, b), !R(1, 1, 5).\n");
        assert!(cmd_check(FIG1, &holds).unwrap().starts_with("HOLDS"));
    }

    #[test]
    fn subsume_end_to_end() {
        let mut reg = CVarRegistry::new();
        reg.fresh("p", Domain::Ints(vec![80, 344, 7000]));
        let target = "panic :- R(p), p != 80, p != 344.\n";
        let known = vec!["panic :- R(p), p != 80.\n".to_owned()];
        let out = cmd_subsume(target, &known, &reg).unwrap();
        assert!(out.starts_with("SUBSUMED"));
        let out2 = cmd_subsume(&known[0], &[target.to_owned()], &reg).unwrap();
        assert!(out2.starts_with("UNKNOWN"));
    }

    #[test]
    fn sql_end_to_end() {
        let out = cmd_sql(FIG1, "SELECT * FROM F WHERE n1 = 4").unwrap();
        assert!(out.contains("(1, 4, 5)"));
    }

    #[test]
    fn worlds_end_to_end() {
        let out = cmd_worlds(FIG1, 100).unwrap();
        assert_eq!(out.matches("world ").count(), 8);
        // The unconditional link appears in every world.
        assert_eq!(out.matches("F(1, 4, 5)").count(), 8);
    }
}
