//! Reference evaluator: pure datalog over one possible world.
//!
//! Loss-less modeling (§4) is the claim that fauré-log on a c-table is
//! equivalent to *iterating pure datalog over every possible world*.
//! This module provides the right-hand side of that equivalence: a
//! deliberately simple, naive-fixpoint, ground evaluator. It shares no
//! code with the c-table engine, so agreement between the two is
//! meaningful evidence (see the `faure-tests` crate's property suites).
//!
//! A program's c-variables are resolved through the world's
//! [`Assignment`] — in a concrete world the "unknowns" have values, so
//! `$x` in a rule simply denotes that value.

use crate::analysis::{check_safety, stratify, AnalysisError};
use crate::ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule};
use faure_ctable::{Assignment, CVarRegistry, Const, GroundDatabase, GroundTuple};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Errors from the reference evaluator.
#[derive(Debug)]
pub enum RefError {
    /// Static analysis rejected the program.
    Analysis(AnalysisError),
    /// A c-variable in the program has no value in the world's
    /// assignment.
    UnboundCVar(String),
    /// A linear expression met a non-integer value.
    NonNumeric(String),
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::Analysis(e) => write!(f, "{e}"),
            RefError::UnboundCVar(n) => {
                write!(f, "c-variable ${n} has no value in the world assignment")
            }
            RefError::NonNumeric(n) => {
                write!(f, "non-integer value for ${n} in linear expression")
            }
        }
    }
}

impl std::error::Error for RefError {}

impl From<AnalysisError> for RefError {
    fn from(e: AnalysisError) -> Self {
        RefError::Analysis(e)
    }
}

/// Evaluates `program` on a single ground world, resolving `$cvar`
/// references through `reg` + the world's assignment. Returns the
/// derived relations (IDB only).
pub fn evaluate_ground(
    program: &Program,
    reg: &CVarRegistry,
    world: &GroundDatabase,
) -> Result<BTreeMap<String, BTreeSet<GroundTuple>>, RefError> {
    check_safety(program)?;
    let strat = stratify(program)?;

    // Resolve every program c-variable to a constant up front.
    let mut cvals: HashMap<&str, Const> = HashMap::new();
    for name in program.cvar_names() {
        let id = reg
            .by_name(name)
            .ok_or_else(|| RefError::UnboundCVar(name.to_owned()))?;
        let val = world
            .assignment
            .get(id)
            .ok_or_else(|| RefError::UnboundCVar(name.to_owned()))?;
        cvals.insert(name, val.clone());
    }

    let mut rels: BTreeMap<String, BTreeSet<GroundTuple>> = BTreeMap::new();
    // Seed with the world's EDB contents.
    for (name, rel) in &world.relations {
        rels.insert(name.clone(), rel.tuples.clone());
    }
    // Ensure every mentioned predicate exists.
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(Literal::atom)) {
            rels.entry(atom.pred.clone()).or_default();
        }
    }

    for stratum in &strat.strata {
        let rules: Vec<&Rule> = stratum.iter().map(|&i| &program.rules[i]).collect();
        loop {
            let mut changed = false;
            for rule in &rules {
                let derived = eval_rule_ground(rule, &cvals, &rels)?;
                let target = rels.entry(rule.head.pred.clone()).or_default();
                for t in derived {
                    if target.insert(t) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Return only the IDB.
    let idb: BTreeSet<&str> = program.idb_predicates();
    Ok(rels
        .into_iter()
        .filter(|(k, _)| idb.contains(k.as_str()))
        .collect())
}

type Theta<'r> = HashMap<&'r str, Const>;

fn eval_rule_ground(
    rule: &Rule,
    cvals: &HashMap<&str, Const>,
    rels: &BTreeMap<String, BTreeSet<GroundTuple>>,
) -> Result<Vec<GroundTuple>, RefError> {
    let mut out = Vec::new();
    let positives: Vec<&crate::ast::RuleAtom> = rule
        .body
        .iter()
        .filter(|l| !l.is_negative())
        .map(Literal::atom)
        .collect();
    let mut theta: Theta = HashMap::new();
    join_ground(rule, &positives, 0, cvals, rels, &mut theta, &mut out)?;
    Ok(out)
}

fn resolve_arg<'r>(
    arg: &'r ArgTerm,
    cvals: &HashMap<&str, Const>,
    theta: &Theta<'r>,
) -> Option<Const> {
    match arg {
        ArgTerm::Cst(c) => Some(c.clone()),
        ArgTerm::CVar(n) => cvals.get(n.as_str()).cloned(),
        ArgTerm::Var(v) => theta.get(v.as_str()).cloned(),
    }
}

fn join_ground<'r>(
    rule: &'r Rule,
    positives: &[&'r crate::ast::RuleAtom],
    depth: usize,
    cvals: &HashMap<&str, Const>,
    rels: &BTreeMap<String, BTreeSet<GroundTuple>>,
    theta: &mut Theta<'r>,
    out: &mut Vec<GroundTuple>,
) -> Result<(), RefError> {
    if depth == positives.len() {
        return finish_ground(rule, cvals, rels, theta, out);
    }
    let atom = positives[depth];
    let Some(rel) = rels.get(&atom.pred) else {
        return Ok(());
    };
    'rows: for row in rel {
        if row.len() != atom.args.len() {
            continue;
        }
        let mut bound_here: Vec<&'r str> = Vec::new();
        for (arg, cell) in atom.args.iter().zip(row) {
            match arg {
                ArgTerm::Var(v) => match theta.get(v.as_str()) {
                    Some(prev) => {
                        if prev != cell {
                            for b in bound_here.drain(..) {
                                theta.remove(b);
                            }
                            continue 'rows;
                        }
                    }
                    None => {
                        theta.insert(v.as_str(), cell.clone());
                        bound_here.push(v.as_str());
                    }
                },
                other => {
                    let want = resolve_arg(other, cvals, theta)
                        .expect("constants and c-values always resolve");
                    if want != *cell {
                        for b in bound_here.drain(..) {
                            theta.remove(b);
                        }
                        continue 'rows;
                    }
                }
            }
        }
        join_ground(rule, positives, depth + 1, cvals, rels, theta, out)?;
        for b in bound_here {
            theta.remove(b);
        }
    }
    Ok(())
}

fn finish_ground<'r>(
    rule: &'r Rule,
    cvals: &HashMap<&str, Const>,
    rels: &BTreeMap<String, BTreeSet<GroundTuple>>,
    theta: &Theta<'r>,
    out: &mut Vec<GroundTuple>,
) -> Result<(), RefError> {
    // Negated atoms: tuple must be absent.
    for lit in rule.body.iter().filter(|l| l.is_negative()) {
        let atom = lit.atom();
        let tuple: Vec<Const> = atom
            .args
            .iter()
            .map(|a| resolve_arg(a, cvals, theta).expect("safety guarantees binding"))
            .collect();
        if rels.get(&atom.pred).is_some_and(|r| r.contains(&tuple)) {
            return Ok(());
        }
    }
    // Comparisons.
    for cmp in &rule.comparisons {
        if !eval_comparison(cmp, cvals, theta)? {
            return Ok(());
        }
    }
    out.push(
        rule.head
            .args
            .iter()
            .map(|a| resolve_arg(a, cvals, theta).expect("safety guarantees binding"))
            .collect(),
    );
    Ok(())
}

fn eval_comparison(
    cmp: &Comparison,
    cvals: &HashMap<&str, Const>,
    theta: &Theta<'_>,
) -> Result<bool, RefError> {
    let side = |e: &CompExpr| -> Result<Const, RefError> {
        match e {
            CompExpr::Arg(a) => {
                Ok(resolve_arg(a, cvals, theta).expect("safety guarantees binding"))
            }
            CompExpr::Lin { terms, constant } => {
                let mut acc = *constant;
                for (coef, name) in terms {
                    let v = cvals
                        .get(name.as_str())
                        .ok_or_else(|| RefError::UnboundCVar(name.clone()))?;
                    let i = v
                        .as_int()
                        .ok_or_else(|| RefError::NonNumeric(name.clone()))?;
                    acc += coef * i;
                }
                Ok(Const::Int(acc))
            }
        }
    };
    let l = side(&cmp.lhs)?;
    let r = side(&cmp.rhs)?;
    Ok(cmp.op.eval(l.cmp(&r)))
}

/// Derived relations, as the reference evaluator reports them.
pub type GroundResult = BTreeMap<String, BTreeSet<GroundTuple>>;

/// Convenience: evaluates the program in **every** world of `db` and
/// returns, per world, the derived relations. Used by the
/// loss-lessness test suites.
pub fn evaluate_all_worlds(
    program: &Program,
    db: &faure_ctable::Database,
) -> Result<Vec<(Assignment, GroundResult)>, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for world in faure_ctable::worlds::WorldIter::new(db, None)? {
        let res = evaluate_ground(program, &db.cvars, &world)?;
        out.push((world.assignment, res));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use faure_ctable::{
        examples::table2_path_db, worlds::WorldIter, CTuple, Database, Domain, Schema, Term,
    };

    #[test]
    fn ground_transitive_closure() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        let program = parse_program("R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n").unwrap();
        let world = WorldIter::new(&db, None).unwrap().next().unwrap();
        let res = evaluate_ground(&program, &db.cvars, &world).unwrap();
        assert_eq!(res["R"].len(), 3);
    }

    #[test]
    fn cvar_comparisons_resolve_through_assignment() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        db.create_relation(Schema::new("N", &["a"])).unwrap();
        db.insert("N", CTuple::new([Term::int(7)])).unwrap();
        // Make x̄ relevant so worlds enumerate it.
        db.insert(
            "N",
            CTuple::with_cond(
                [Term::int(8)],
                faure_ctable::Condition::eq(Term::Var(x), Term::int(1)),
            ),
        )
        .unwrap();
        let program = parse_program("T(a) :- N(a), $x = 1.\n").unwrap();
        for world in WorldIter::new(&db, None).unwrap() {
            let res = evaluate_ground(&program, &db.cvars, &world).unwrap();
            let x_is_1 = world.assignment.get(x) == Some(&faure_ctable::Const::Int(1));
            if x_is_1 {
                assert_eq!(res["T"].len(), 2);
            } else {
                assert!(res["T"].is_empty());
            }
        }
    }

    #[test]
    fn negation_in_ground_worlds() {
        let (db, _) = table2_path_db();
        let program = parse_program(r#"Unpriced(d) :- P(d, p), !C(p, 3)."#).unwrap();
        // Just check it runs in every world without error; semantics are
        // cross-checked against the c-table engine in faure-tests.
        for world in WorldIter::new(&db, None).unwrap() {
            let _ = evaluate_ground(&program, &db.cvars, &world).unwrap();
        }
    }

    #[test]
    fn unbound_cvar_reported() {
        let db = Database::new();
        let program = parse_program("T(a) :- N(a), $ghost = 1.\n").unwrap();
        let world = GroundDatabase {
            assignment: Assignment::new(),
            relations: BTreeMap::new(),
        };
        assert!(matches!(
            evaluate_ground(&program, &db.cvars, &world),
            Err(RefError::UnboundCVar(_))
        ));
    }
}
