//! Differential testing of the parallel fixpoint engine.
//!
//! The engine partitions each rule's depth-0 match list across worker
//! threads (`EvalOptions::threads`) and merges the per-worker
//! partitions in chunk order, which must make a parallel run
//! *bit-identical* to a serial one: same tuples, same derived
//! conditions, in the same order — not merely the same set of possible
//! worlds. This property pins that down on the same random corpus the
//! plan-differential suite uses (recursive, non-linear-recursive, and
//! negated programs over random c-table databases), at 2, 4, and 8
//! worker threads.

use faure_core::eval::canonicalize;
use faure_core::{evaluate_with, EvalOptions, EvalOutput, Program};
use faure_ctable::{Condition, Database, Term};
use faure_tests::corpus::{arb_db, arb_program};
use proptest::prelude::*;

/// Every derived row of every IDB relation, in stored order: the raw
/// terms and condition, plus the condition after [`canonicalize`] (so a
/// mismatch distinguishes "different condition" from "same condition,
/// different spelling" in the failure output).
fn derived_rows(
    out: &EvalOutput,
    program: &Program,
) -> Vec<(String, Vec<Term>, Condition, Condition)> {
    let mut rows = Vec::new();
    for pred in program.idb_predicates() {
        for row in out.relation(pred).expect("IDB relation exists").iter() {
            rows.push((
                pred.to_owned(),
                row.terms.clone(),
                row.cond.clone(),
                canonicalize(row.cond.clone()),
            ));
        }
    }
    rows
}

fn eval_at(program: &Program, db: &Database, threads: usize) -> EvalOutput {
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    evaluate_with(program, db, &opts).expect("evaluation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel evaluation is bit-identical to serial at every thread
    /// count, including derived conditions (raw and canonicalized) and
    /// row order.
    #[test]
    fn parallel_is_bit_identical_to_serial(db in arb_db(), program in arb_program()) {
        let serial = derived_rows(&eval_at(&program, &db, 1), &program);
        for threads in [2usize, 4, 8] {
            let parallel = derived_rows(&eval_at(&program, &db, threads), &program);
            prop_assert_eq!(
                &serial,
                &parallel,
                "threads={} diverged from serial\nprogram:\n{}",
                threads,
                &program
            );
        }
    }
}
