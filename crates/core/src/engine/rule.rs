//! Single-rule plan execution — the c-valuation.
//!
//! A compiled [`RulePlan`] is executed as a nested-loop join over
//! c-tables. The driver ([`eval_rule`]) probes the plan's first step
//! once — those patterns never depend on the substitution, which is
//! empty at depth 0 — and then evaluates each match via [`eval_match`].
//! That split is what makes the parallel path possible: the match list
//! can be partitioned into contiguous chunks and each chunk handed to a
//! worker running the identical per-match code (see
//! [`super::parallel`]).

use super::{Ctx, EvalError, EvalOptions, PrunePolicy};
use crate::ast::{ArgTerm, CompExpr, Comparison, Rule, RuleAtom};
use crate::plan::RulePlan;
use faure_ctable::{Atom, CTuple, Condition, Expr, LinExpr, Term};
use faure_solver::Session;
use faure_storage::{exec, CondAcc, OpStats, Pattern, PreparedRow, Table};
use std::collections::{BTreeSet, HashMap};

/// Outcome of evaluating one comparison under a substitution: either
/// the branch dies (ground-false), or a condition fragment (possibly
/// `True`) joins the accumulator.
fn apply_comparison(
    ctx: &Ctx<'_>,
    cmp: &Comparison,
    theta: &HashMap<&str, Term>,
    acc: &mut CondAcc,
    ops: &mut OpStats,
) -> Result<bool, EvalError> {
    let atom = comparison_atom(ctx, cmp, theta)?;
    let mut vars = BTreeSet::new();
    atom.cvars(&mut vars);
    if vars.is_empty() {
        // Ground: decide now. A false (or undefined) comparison cuts
        // the branch before any further literal is joined.
        match atom.eval(&|_| unreachable!("ground atom")) {
            Some(true) => Ok(true),
            Some(false) | None => {
                ops.cmp_pruned += 1;
                Ok(false)
            }
        }
    } else if acc.push(Condition::Atom(atom), ops) {
        Ok(true)
    } else {
        ops.cmp_pruned += 1;
        Ok(false)
    }
}

/// Builds probe patterns for `atom` under the current substitution.
fn build_patterns(ctx: &Ctx<'_>, atom: &RuleAtom, theta: &HashMap<&str, Term>) -> Vec<Pattern> {
    atom.args
        .iter()
        .map(|arg| match arg {
            ArgTerm::Cst(c) => Pattern::Exact(Term::Const(c.clone())),
            ArgTerm::CVar(name) => Pattern::Exact(Term::Var(ctx.cvmap[name])),
            ArgTerm::Var(v) => match theta.get(v.as_str()) {
                Some(t) => Pattern::Exact(t.clone()),
                None => Pattern::Any,
            },
        })
        .collect()
}

/// Executes a compiled [`RulePlan`] against the current tables. When
/// the plan has a delta slot, `delta_table` supplies the iteration
/// delta it reads.
///
/// Returns the derived head rows (conditions structurally simplified
/// and DNF-normalised, `False` filtered out) as **ordered partitions**:
/// one partition per worker under parallel evaluation, a single
/// partition serially. Concatenated in order, the partitions equal the
/// serial enumeration order exactly.
///
/// Each pass is recorded as one `fixpoint`/`rule-pass` span carrying
/// the rule index, depth-0 match count, rows derived, and the summed
/// structural size of the derived conditions.
#[allow(clippy::too_many_arguments)]
pub(super) fn eval_rule(
    ctx: &Ctx<'_>,
    ri: usize,
    rule: &Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
) -> Result<Vec<Vec<PreparedRow>>, EvalError> {
    if plan.static_empty {
        // Semantic analysis proved the body can never produce a row:
        // cut the branch before probing anything.
        ops.static_cut += 1;
        return Ok(Vec::new());
    }
    let t_pass = ctx.tracer.now_ns();
    let mut matches_in = 0usize;
    let partitions = eval_rule_inner(
        ctx,
        rule,
        plan,
        tables,
        delta_table,
        session,
        opts,
        ops,
        &mut matches_in,
    )?;
    ctx.tracer
        .emit_span("fixpoint", "rule-pass", t_pass, 0, || {
            let rows_out: usize = partitions.iter().map(Vec::len).sum();
            let cond_size: usize = partitions.iter().flatten().map(|r| r.cond().size()).sum();
            let mut args = vec![
                ("rule", ri.into()),
                ("head", rule.head.pred.as_str().into()),
                ("matches", matches_in.into()),
                ("rows_out", rows_out.into()),
                ("cond_size", cond_size.into()),
            ];
            if let Some(dp) = plan.delta_pos {
                args.push(("delta_pos", dp.into()));
            }
            args
        });
    Ok(partitions)
}

#[allow(clippy::too_many_arguments)]
fn eval_rule_inner(
    ctx: &Ctx<'_>,
    rule: &Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
    matches_in: &mut usize,
) -> Result<Vec<Vec<PreparedRow>>, EvalError> {
    debug_assert_eq!(plan.delta_pos.is_some(), delta_table.is_some());
    let mut theta: HashMap<&str, Term> = HashMap::new();
    let mut acc = CondAcc::new();
    // Comparisons with no rule variables gate the whole rule pass.
    for &ci in &plan.initial_comparisons {
        if !apply_comparison(ctx, &rule.comparisons[ci], &theta, &mut acc, ops)? {
            return Ok(Vec::new());
        }
    }
    if plan.steps.is_empty() {
        // Fact rule: a single (possibly negation-gated) head row.
        let mut out = Vec::new();
        finish_rule(
            ctx, rule, plan, tables, &theta, &acc, session, opts, ops, &mut out,
        )?;
        return Ok(vec![out]);
    }

    // Probe the first step once, in the driver: depth-0 patterns are
    // substitution-independent, so every worker would compute the same
    // match list anyway.
    let step = &plan.steps[0];
    let atom = rule.body[step.lit_pos].atom();
    let table: &Table = if step.is_delta {
        delta_table.expect("delta plan executed with a delta table")
    } else {
        tables.get(&atom.pred).expect("table created in setup")
    };
    let patterns = build_patterns(ctx, atom, &theta);
    let matches = exec::probe(table, &ctx.reg_snapshot, &patterns, ops);
    *matches_in = matches.len();
    if matches.is_empty() {
        return Ok(Vec::new());
    }

    if opts.threads > 1 && matches.len() >= 2 {
        return super::parallel::run_partitioned(
            ctx,
            rule,
            plan,
            tables,
            delta_table,
            &acc,
            &matches,
            opts,
            session,
            ops,
        );
    }

    let mut out = Vec::new();
    for (row_idx, mu) in &matches {
        eval_match(
            ctx,
            rule,
            plan,
            tables,
            delta_table,
            *row_idx,
            mu,
            &mut theta,
            &mut acc,
            session,
            opts,
            ops,
            &mut out,
        )?;
    }
    Ok(vec![out])
}

/// Evaluates one depth-0 match: conjoins the matched row's condition
/// and the match condition `μ`, binds the first step's variables
/// (handling repeated variables within the atom), applies the step's
/// pushed-down comparisons, and recurses into the remaining join steps.
/// `theta`/`acc` are restored before returning, so a caller can reuse
/// them across matches.
#[allow(clippy::too_many_arguments)]
pub(super) fn eval_match<'r>(
    ctx: &Ctx<'_>,
    rule: &'r Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    row_idx: usize,
    mu: &Condition,
    theta: &mut HashMap<&'r str, Term>,
    acc: &mut CondAcc,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
    out: &mut Vec<PreparedRow>,
) -> Result<(), EvalError> {
    let step = &plan.steps[0];
    let atom = rule.body[step.lit_pos].atom();
    let table: &Table = if step.is_delta {
        delta_table.expect("delta plan executed with a delta table")
    } else {
        tables.get(&atom.pred).expect("table created in setup")
    };
    let mark = acc.mark();
    let mut ok = acc.push(table.cond(row_idx), ops) && acc.push(mu.clone(), ops);
    // Bind variables (handling repeated variables within the atom).
    let mut bound_here: Vec<&'r str> = Vec::new();
    if ok {
        ok = bind_row(atom, table, row_idx, theta, acc, ops, &mut bound_here);
    }
    // Pushed-down comparisons: every variable they mention is bound
    // by now, so ground-false ones cut the branch here instead of
    // after the remaining joins.
    if ok {
        for &ci in &step.comparisons {
            if !apply_comparison(ctx, &rule.comparisons[ci], theta, acc, ops)? {
                ok = false;
                break;
            }
        }
    }
    if ok {
        exec_step(
            ctx,
            rule,
            plan,
            tables,
            delta_table,
            1,
            theta,
            acc,
            session,
            opts,
            ops,
            out,
        )?;
    }
    acc.truncate(mark);
    for v in bound_here {
        theta.remove(v);
    }
    Ok(())
}

/// Binds `atom`'s variables against row `row_idx` of `table`, pushing
/// explicit equalities for variables repeated *within* the atom
/// (pre-bound variables were already covered by the probe pattern).
/// Only the cells under variable arguments are decoded out of the
/// columnar store — constant arguments never touch the row. Returns
/// `false` when a binding is contradictory; `bound_here` records the
/// fresh bindings for the caller to undo.
fn bind_row<'r>(
    atom: &'r RuleAtom,
    table: &Table,
    row_idx: usize,
    theta: &mut HashMap<&'r str, Term>,
    acc: &mut CondAcc,
    ops: &mut OpStats,
    bound_here: &mut Vec<&'r str>,
) -> bool {
    for (col, arg) in atom.args.iter().enumerate() {
        if let ArgTerm::Var(v) = arg {
            let cell = table.term(row_idx, col);
            match theta.get(v.as_str()) {
                Some(prev) => {
                    if bound_here.contains(&v.as_str()) {
                        match (prev, &cell) {
                            (Term::Const(a), Term::Const(b)) => {
                                if a != b {
                                    return false;
                                }
                            }
                            (a, b) => {
                                if a != b {
                                    let eq = Condition::eq(a.clone(), b.clone());
                                    if !acc.push(eq, ops) {
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                }
                None => {
                    theta.insert(v.as_str(), cell);
                    bound_here.push(v.as_str());
                }
            }
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn exec_step<'r>(
    ctx: &Ctx<'_>,
    rule: &'r Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    depth: usize,
    theta: &mut HashMap<&'r str, Term>,
    acc: &mut CondAcc,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
    out: &mut Vec<PreparedRow>,
) -> Result<(), EvalError> {
    if depth == plan.steps.len() {
        return finish_rule(ctx, rule, plan, tables, theta, acc, session, opts, ops, out);
    }
    let step = &plan.steps[depth];
    let atom = rule.body[step.lit_pos].atom();
    let table: &Table = if step.is_delta {
        delta_table.expect("delta plan executed with a delta table")
    } else {
        tables.get(&atom.pred).expect("table created in setup")
    };

    let patterns = build_patterns(ctx, atom, theta);
    for (row_idx, mu) in exec::probe(table, &ctx.reg_snapshot, &patterns, ops) {
        let mark = acc.mark();
        let mut ok = acc.push(table.cond(row_idx), ops) && acc.push(mu, ops);
        let mut bound_here: Vec<&'r str> = Vec::new();
        if ok {
            ok = bind_row(atom, table, row_idx, theta, acc, ops, &mut bound_here);
        }
        // Pushed-down comparisons: every variable they mention is bound
        // by now, so ground-false ones cut the branch here instead of
        // after the remaining joins.
        if ok {
            for &ci in &step.comparisons {
                if !apply_comparison(ctx, &rule.comparisons[ci], theta, acc, ops)? {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            exec_step(
                ctx,
                rule,
                plan,
                tables,
                delta_table,
                depth + 1,
                theta,
                acc,
                session,
                opts,
                ops,
                out,
            )?;
        }
        acc.truncate(mark);
        for v in bound_here {
            theta.remove(v);
        }
    }
    Ok(())
}

/// Applies negated literals, then emits the head row.
#[allow(clippy::too_many_arguments)]
fn finish_rule<'r>(
    ctx: &Ctx<'_>,
    rule: &'r Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    theta: &HashMap<&'r str, Term>,
    acc: &CondAcc,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
    out: &mut Vec<PreparedRow>,
) -> Result<(), EvalError> {
    let mut cond = acc.materialize();
    // Negation: "not derivable from the c-table".
    for &np in &plan.negations {
        let atom = rule.body[np].atom();
        let terms = instantiate_args(ctx, &atom.args, theta)?;
        let table = tables.get(&atom.pred).expect("table created in setup");
        ops.neg_checks += 1;
        cond = cond.and(table.negation_condition(&ctx.reg_snapshot, &terms));
        if cond == Condition::False {
            return Ok(());
        }
    }

    let cond = canonicalize(faure_solver::simplify(&cond));
    if cond == Condition::False {
        return Ok(());
    }
    if opts.prune == PrunePolicy::Eager && !session.satisfiable(&ctx.reg_snapshot, &cond)? {
        return Ok(());
    }

    let terms = instantiate_args(ctx, &rule.head.args, theta)?;
    // Normalising the condition here (PreparedRow::new runs the
    // minimal-DNF pass) keeps the post-join work inside the worker
    // thread; the serial merge is then just hash lookups.
    out.push(PreparedRow::new(CTuple { terms, cond }));
    Ok(())
}

fn instantiate_args(
    ctx: &Ctx<'_>,
    args: &[ArgTerm],
    theta: &HashMap<&str, Term>,
) -> Result<Vec<Term>, EvalError> {
    args.iter()
        .map(|a| match a {
            ArgTerm::Cst(c) => Ok(Term::Const(c.clone())),
            ArgTerm::CVar(name) => Ok(Term::Var(ctx.cvmap[name])),
            ArgTerm::Var(v) => theta
                .get(v.as_str())
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        })
        .collect()
}

/// Converts an AST comparison into a condition atom under the current
/// substitution.
fn comparison_atom(
    ctx: &Ctx<'_>,
    cmp: &Comparison,
    theta: &HashMap<&str, Term>,
) -> Result<Atom, EvalError> {
    let side = |e: &CompExpr| -> Result<Expr, EvalError> {
        match e {
            CompExpr::Arg(ArgTerm::Cst(c)) => Ok(Expr::Term(Term::Const(c.clone()))),
            CompExpr::Arg(ArgTerm::CVar(name)) => Ok(Expr::Term(Term::Var(ctx.cvmap[name]))),
            CompExpr::Arg(ArgTerm::Var(v)) => theta
                .get(v.as_str())
                .cloned()
                .map(Expr::Term)
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            CompExpr::Lin { terms, constant } => {
                let mut lin = LinExpr::constant(*constant);
                for (coef, name) in terms {
                    lin = lin.plus_var(*coef, ctx.cvmap[name]);
                }
                Ok(Expr::Lin(lin))
            }
        }
    };
    Ok(Atom {
        lhs: side(&cmp.lhs)?,
        op: cmp.op,
        rhs: side(&cmp.rhs)?,
    })
}

// ---------------------------------------------------------------------------
// condition canonicalisation
// ---------------------------------------------------------------------------

/// Sorts the children of `And` / `Or` nodes by the **total structural
/// order** on [`Condition`] so that logically identical conjunctions
/// built in different orders become structurally identical — the
/// delta-dedup in [`Table::insert`] then recognises them, which both
/// shrinks conditions and guarantees fixpoint termination.
///
/// The sort key used to be a 64-bit `DefaultHasher` value; two distinct
/// children with colliding hashes then got an arbitrary relative order,
/// so the "canonical" form was not collision-proof. Sorting by
/// `Condition`'s derived `Ord` is total and collision-free.
pub fn canonicalize(c: Condition) -> Condition {
    match c {
        Condition::And(cs) => {
            let mut cs: Vec<Condition> = Condition::take_children(cs)
                .into_iter()
                .map(canonicalize)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            match cs.len() {
                0 => Condition::True,
                1 => cs.pop().expect("len checked"),
                _ => Condition::conj(cs),
            }
        }
        Condition::Or(cs) => {
            let mut cs: Vec<Condition> = Condition::take_children(cs)
                .into_iter()
                .map(canonicalize)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            match cs.len() {
                0 => Condition::False,
                1 => cs.pop().expect("len checked"),
                _ => Condition::disj(cs),
            }
        }
        Condition::Not(inner) => canonicalize(Condition::take_inner(inner)).negate(),
        other => other,
    }
}
