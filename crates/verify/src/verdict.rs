//! Verdict types.

use faure_ctable::{Assignment, CVarRegistry, Condition};
use std::fmt;

/// One witnessed violation: the condition under which `panic` fires
/// and one concrete assignment of the c-variables realising it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The (satisfiable) panic condition.
    pub condition: Condition,
    /// A model of the condition — a concrete "possible world" in which
    /// the constraint is violated. Empty for unconditional violations.
    pub witness: Assignment,
}

impl Violation {
    /// Renders the violation using names from `reg`.
    pub fn display<'a>(&'a self, reg: &'a CVarRegistry) -> ViolationDisplay<'a> {
        ViolationDisplay { v: self, reg }
    }
}

/// Helper returned by [`Violation::display`].
pub struct ViolationDisplay<'a> {
    v: &'a Violation,
    reg: &'a CVarRegistry,
}

impl fmt::Display for ViolationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.v.condition == Condition::True {
            write!(f, "violated unconditionally")
        } else {
            write!(f, "violated when {}", self.v.condition.display(self.reg))?;
            if !self.v.witness.is_empty() {
                write!(f, " (e.g.")?;
                for (var, val) in self.v.witness.iter() {
                    write!(f, " {}'={}", self.reg.name(*var), val)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

/// Result of a full-information (direct) check.
#[derive(Clone, Debug)]
pub enum DirectVerdict {
    /// No satisfiable `panic` derivation: the constraint holds in every
    /// possible world of the state.
    Holds,
    /// At least one satisfiable violation.
    Violated(Vec<Violation>),
}

impl DirectVerdict {
    /// Whether the constraint holds.
    pub fn holds(&self) -> bool {
        matches!(self, DirectVerdict::Holds)
    }
}

/// Result of a relative test (category (i)/(ii)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelativeVerdict {
    /// The available information proves the constraint continues to
    /// hold.
    Proven,
    /// "I don't know" — more information is needed. The payload names
    /// the first uncovered violation pattern.
    Unknown {
        /// Index of the uncovered (unfolded) rule of the target.
        uncovered_rule: usize,
    },
}

impl RelativeVerdict {
    /// Whether the test succeeded.
    pub fn proven(&self) -> bool {
        matches!(self, RelativeVerdict::Proven)
    }
}

/// Which rung of the ladder decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Category (i): constraint definitions only.
    CategoryI,
    /// Category (ii): definitions + update.
    CategoryII,
    /// Direct evaluation on the full state.
    Direct,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::CategoryI => "category (i): constraints only",
            Level::CategoryII => "category (ii): constraints + update",
            Level::Direct => "direct: full state",
        })
    }
}

/// Outcome of the escalation ladder ([`crate::verify`]).
#[derive(Clone, Debug)]
pub struct Report {
    /// Name of the verified constraint.
    pub constraint: String,
    /// Per-level outcomes in the order attempted (level, proven?).
    pub attempts: Vec<(Level, bool)>,
    /// Final answer: `Some(true)` = holds, `Some(false)` = violated
    /// (only the direct level can answer `false`), `None` = unknown at
    /// every available level.
    pub outcome: Option<bool>,
    /// Violations, when the direct level found any.
    pub violations: Vec<Violation>,
}

impl Report {
    /// The level that decided, if any.
    pub fn decided_by(&self) -> Option<Level> {
        self.outcome?;
        self.attempts.last().map(|(l, _)| *l)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.constraint)?;
        match self.outcome {
            Some(true) => write!(f, "HOLDS")?,
            Some(false) => write!(f, "VIOLATED")?,
            None => write!(f, "UNKNOWN (more information needed)")?,
        }
        if let Some(level) = self.decided_by() {
            write!(f, " — decided by {level}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display() {
        let r = Report {
            constraint: "T1".into(),
            attempts: vec![(Level::CategoryI, true)],
            outcome: Some(true),
            violations: vec![],
        };
        let s = r.to_string();
        assert!(s.contains("[T1] HOLDS"));
        assert!(s.contains("category (i)"));
        assert_eq!(r.decided_by(), Some(Level::CategoryI));
    }

    #[test]
    fn unknown_report() {
        let r = Report {
            constraint: "T2".into(),
            attempts: vec![(Level::CategoryI, false)],
            outcome: None,
            violations: vec![],
        };
        assert!(r.to_string().contains("UNKNOWN"));
        assert_eq!(r.decided_by(), None);
    }

    #[test]
    fn violation_display_unconditional() {
        let reg = CVarRegistry::new();
        let v = Violation {
            condition: Condition::True,
            witness: Assignment::new(),
        };
        assert_eq!(v.display(&reg).to_string(), "violated unconditionally");
    }
}
