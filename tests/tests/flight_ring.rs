//! Property tests for the flight-recorder ring buffer.
//!
//! The ring is the CLI's always-on post-mortem sink: parallel rule
//! passes submit whole chunk batches, the ring keeps the newest
//! `capacity` events and counts what it evicted. Three properties must
//! survive concurrent submission:
//!
//! * **bounded retention** — never more than `capacity` events kept,
//!   and exactly `min(total, capacity)` once enough were submitted;
//! * **exact drop accounting** — `dropped()` equals submitted minus
//!   retained (evictions happen under the ring lock, so the counter
//!   cannot drift);
//! * **per-batch order** — each `record_batch` call lands contiguously;
//!   eviction only ever trims a batch's oldest prefix, so the retained
//!   part of every batch is an in-order, contiguous suffix of it.

use faure_trace::{Event, FlightRecorder, TraceSink};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// One synthetic event: `dur_ns` carries the submitting batch's global
/// id, `start_ns` the event's global sequence number within the run
/// (`batch_id * per_batch + k`), so the assertions can reconstruct
/// which batch every retained event came from and where it sat.
fn tagged(batch_id: usize, per_batch: usize, k: usize) -> Event {
    Event {
        cat: "test",
        name: "flight",
        start_ns: (batch_id * per_batch + k) as u64,
        dur_ns: batch_id as u64,
        track: 0,
        args: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_submission_bounds_counts_and_preserves_batch_order(
        threads in 1usize..5,
        batches_per_thread in 1usize..6,
        per_batch in 1usize..8,
        capacity in 1usize..48,
    ) {
        let ring = Arc::new(FlightRecorder::new(capacity));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for b in 0..batches_per_thread {
                        let batch_id = t * batches_per_thread + b;
                        let batch: Vec<Event> =
                            (0..per_batch).map(|k| tagged(batch_id, per_batch, k)).collect();
                        ring.record_batch(batch);
                    }
                });
            }
        });

        let total = threads * batches_per_thread * per_batch;
        let kept = ring.snapshot();
        prop_assert!(kept.len() <= capacity, "retained {} > capacity {capacity}", kept.len());
        prop_assert_eq!(kept.len(), total.min(capacity));
        prop_assert_eq!(ring.dropped() as usize, total - kept.len());
        prop_assert_eq!(ring.len(), kept.len());

        // Group retained events by submitting batch, in snapshot order.
        let mut by_batch: HashMap<u64, Vec<(usize, u64)>> = HashMap::new();
        for (pos, e) in kept.iter().enumerate() {
            by_batch.entry(e.dur_ns).or_default().push((pos, e.start_ns));
        }
        for (batch_id, items) in by_batch {
            // Contiguous in the ring, in submission order: batches are
            // appended under one lock and eviction pops only from the
            // front, so nothing can interleave into the middle.
            for w in items.windows(2) {
                prop_assert_eq!(w[1].0, w[0].0 + 1, "batch {} interleaved", batch_id);
                prop_assert_eq!(w[1].1, w[0].1 + 1, "batch {} reordered", batch_id);
            }
            // A suffix of the batch: if any event survived, the
            // batch's newest event did.
            let last_seq = items.last().expect("non-empty group").1;
            prop_assert_eq!(
                last_seq,
                (batch_id as usize * per_batch + per_batch - 1) as u64,
                "batch {} lost its tail", batch_id
            );
        }
    }

    /// Serial sanity: submitting one event at a time through the
    /// `TraceSink::record` path behaves like batches of one.
    #[test]
    fn serial_records_keep_newest(total in 1usize..80, capacity in 1usize..32) {
        let ring = FlightRecorder::new(capacity);
        for i in 0..total {
            ring.record(tagged(0, 1, i));
        }
        let kept = ring.snapshot();
        prop_assert_eq!(kept.len(), total.min(capacity));
        prop_assert_eq!(ring.dropped() as usize, total - kept.len());
        let seqs: Vec<u64> = kept.iter().map(|e| e.start_ns).collect();
        let expect: Vec<u64> =
            ((total - kept.len()) as u64..total as u64).collect();
        prop_assert_eq!(seqs, expect);
    }
}
