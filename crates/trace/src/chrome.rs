//! Chrome `trace_event` JSON writer.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) with
//! complete (`"ph":"X"`) events, loadable in `chrome://tracing` and
//! Perfetto. Timestamps and durations are microseconds with
//! sub-microsecond precision carried as decimals, per the format spec.
//! Each logical track becomes a `tid` with a `thread_name` metadata
//! event (`driver` for track 0, `worker N` for the parallel chunks),
//! so a parallel run renders as one lane per worker.

use crate::{json_escape, ArgValue, Event};

fn write_us(out: &mut String, ns: u64) {
    // ns → µs with 3 decimals, without going through f64 (exact).
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        out.push_str(&whole.to_string());
    } else {
        out.push_str(&format!("{whole}.{frac:03}"));
    }
}

fn write_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::UInt(u) => out.push_str(&u.to_string()),
        ArgValue::Int(i) => out.push_str(&i.to_string()),
        ArgValue::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => {
            out.push('"');
            out.push_str(&json_escape(s));
            out.push('"');
        }
    }
}

/// Renders `events` as a Chrome `trace_event` JSON document.
pub fn trace_json(events: &[Event]) -> String {
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    for track in &tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let name = if *track == 0 {
            "driver".to_owned()
        } else {
            format!("worker {track}")
        };
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&e.track.to_string());
        out.push_str(",\"cat\":\"");
        out.push_str(e.cat);
        out.push_str("\",\"name\":\"");
        out.push_str(&json_escape(e.name));
        out.push_str("\",\"ts\":");
        write_us(&mut out, e.start_ns);
        out.push_str(",\"dur\":");
        write_us(&mut out, e.dur_ns);
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(k));
                out.push_str("\":");
                write_arg_value(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }

    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: u32, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            cat: "eval",
            name: "stratum",
            start_ns,
            dur_ns,
            track,
            args: vec![],
        }
    }

    #[test]
    fn emits_complete_events_in_microseconds() {
        let json = trace_json(&[ev(0, 1_500, 2_000)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2"));
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
    }

    #[test]
    fn names_tracks_via_metadata_events() {
        let json = trace_json(&[ev(0, 0, 1), ev(2, 0, 1)]);
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"driver\""));
        assert!(json.contains("\"name\":\"worker 2\""));
        // one metadata event per distinct track, before the spans
        assert_eq!(json.matches("\"thread_name\"").count(), 2);
    }

    #[test]
    fn serialises_typed_args() {
        let mut e = ev(0, 0, 1);
        e.args = vec![
            ("rows", ArgValue::UInt(7)),
            ("delta", ArgValue::Int(-2)),
            ("rate", ArgValue::Float(0.5)),
            ("head", ArgValue::Str("R\"x".into())),
        ];
        let json = trace_json(&[e]);
        assert!(json.contains("\"rows\":7"));
        assert!(json.contains("\"delta\":-2"));
        assert!(json.contains("\"rate\":0.5"));
        assert!(json.contains("\"head\":\"R\\\"x\""));
    }

    #[test]
    fn empty_input_is_still_valid() {
        assert_eq!(
            trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}"
        );
    }
}
