//! Differential testing of the plan-compiled evaluator.
//!
//! The planning layer (`faure_core::plan`) reorders joins, forces delta
//! slots, and pushes comparisons down — none of which may change *what*
//! is derived. These properties pin that down from two directions:
//!
//! 1. **World-equivalence** (the paper's §4 loss-lessness, reused as a
//!    differential oracle): plan-compiled evaluation over the c-table
//!    must instantiate, in every possible world, to exactly what the
//!    independent ground evaluator (`faure_core::reference`) computes
//!    in that world — on *random* programs including recursive,
//!    non-linear-recursive, and negated rules over random databases.
//! 2. **Permutation invariance**: writing the same rule body in a
//!    different textual order must yield the identical relation (same
//!    tuples, same canonical conditions), because the planner re-orders
//!    literals by selectivity regardless of source order.
//!
//! Plus structural invariants on every compiled plan: each body literal
//! executes exactly once, each comparison is evaluated exactly once,
//! and a delta slot is always step 0.

use faure_core::{compile_rule, evaluate, parse_program, Program, Rule};
use faure_ctable::{CTuple, Condition, Const, Database, Domain, Schema, Term};
use faure_tests::assert_lossless;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

/// A small random database over E(a, b) and B(x) with two c-variables
/// ranging over {0, 1, 2} (so every instance has 9 possible worlds).
fn arb_db() -> impl Strategy<Value = Database> {
    let cell = 0usize..5;
    let cond = 0usize..5;
    let e_rows = prop::collection::vec((cell.clone(), cell.clone(), cond.clone()), 1..6);
    let b_rows = prop::collection::vec((cell, cond), 0..3);
    (e_rows, b_rows).prop_map(|(e_rows, b_rows)| {
        let mut db = Database::new();
        let v0 = db.fresh_cvar("v0", Domain::Ints(vec![0, 1, 2]));
        let v1 = db.fresh_cvar("v1", Domain::Ints(vec![0, 1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.create_relation(Schema::new("B", &["x"])).unwrap();
        let mk_cell = |code: usize| match code {
            0..=2 => Term::Const(Const::Int(code as i64)),
            3 => Term::Var(v0),
            _ => Term::Var(v1),
        };
        let mk_cond = |code: usize| match code {
            0 => Condition::True,
            1 => Condition::eq(Term::Var(v0), Term::int(1)),
            2 => Condition::ne(Term::Var(v0), Term::int(0)),
            3 => Condition::eq(Term::Var(v1), Term::int(1)),
            _ => Condition::eq(Term::Var(v0), Term::int(1))
                .and(Condition::ne(Term::Var(v1), Term::int(0))),
        };
        for (a, b, c) in e_rows {
            db.insert("E", CTuple::with_cond([mk_cell(a), mk_cell(b)], mk_cond(c)))
                .unwrap();
        }
        for (x, c) in b_rows {
            db.insert("B", CTuple::with_cond([mk_cell(x)], mk_cond(c)))
                .unwrap();
        }
        // Use both c-variables somewhere so world enumeration covers
        // them even when no row condition mentions them.
        db.insert("E", CTuple::new([Term::Var(v0), Term::Var(v1)]))
            .unwrap();
        db
    })
}

/// Random programs chosen to exercise every planner feature: join
/// reordering (constants written last), linear and non-linear recursion
/// (one and two delta slots per rule), stratified negation over both
/// EDB and IDB predicates, rule-variable comparison pushdown, and
/// c-variable-only comparisons (hoisted to initial filters).
fn arb_program() -> impl Strategy<Value = Program> {
    let k = 0i64..3;
    prop_oneof![
        // Reordering bait: the constant-bearing literal is written last.
        k.clone()
            .prop_map(|k| format!("Q(a, c) :- E(a, b), E(b, c), E({k}, a).\n")),
        // Pushdown: `a != k` binds after the first joined literal.
        k.clone()
            .prop_map(|k| format!("Q(a, c) :- E(a, b), E(b, c), a != {k}, c < 2.\n")),
        // Linear recursion — one delta slot.
        Just("R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n".to_string()),
        // Non-linear recursion — two delta slots per iteration.
        Just("R(a, b) :- E(a, b).\nR(a, c) :- R(a, b), R(b, c).\n".to_string()),
        // Stratified negation over the recursive IDB.
        Just(
            "R(a, b) :- E(a, b).\n\
             R(a, c) :- E(a, b), R(b, c).\n\
             N(a) :- E(a, b).\n\
             N(b) :- E(a, b).\n\
             Cut(a, b) :- N(a), N(b), !R(a, b).\n"
                .to_string()
        ),
        // Negation over EDB plus a unary join.
        k.clone()
            .prop_map(|k| format!("Q(a) :- E(a, b), B(b), !E(b, a), a != {k}.\n")),
        // C-variable-only comparison: hoisted before any join.
        k.prop_map(|k| format!("Q(a) :- E(a, b), $v0 + $v1 < {}.\n", k + 2)),
    ]
    .prop_map(|src| parse_program(&src).unwrap())
}

// ---------------------------------------------------------------------------
// structural plan invariants
// ---------------------------------------------------------------------------

/// Every compiled plan must execute each body literal exactly once and
/// each comparison exactly once, with any delta slot forced to step 0.
fn assert_plan_invariants(rule: &Rule, delta_pos: Option<usize>) {
    let plan = compile_rule(rule, delta_pos);
    assert_eq!(plan.delta_pos, delta_pos);

    let mut lits: Vec<usize> = plan.steps.iter().map(|s| s.lit_pos).collect();
    lits.extend(&plan.negations);
    lits.sort_unstable();
    let all: Vec<usize> = (0..rule.body.len()).collect();
    assert_eq!(lits, all, "each body literal appears exactly once\n{rule}");

    let mut cmps: Vec<usize> = plan.initial_comparisons.clone();
    for step in &plan.steps {
        cmps.extend(&step.comparisons);
    }
    cmps.sort_unstable();
    let all: Vec<usize> = (0..rule.comparisons.len()).collect();
    assert_eq!(cmps, all, "each comparison evaluated exactly once\n{rule}");

    if let Some(dp) = delta_pos {
        assert!(plan.steps[0].is_delta, "delta slot is step 0\n{rule}");
        assert_eq!(plan.steps[0].lit_pos, dp);
        assert!(
            plan.steps.iter().skip(1).all(|s| !s.is_delta),
            "only one delta step\n{rule}"
        );
    } else {
        assert!(plan.steps.iter().all(|s| !s.is_delta));
    }
}

/// Snapshot of a derived relation: tuples plus canonical conditions,
/// order-independent.
fn relation_snapshot(out: &faure_core::EvalOutput, program: &Program) -> BTreeSet<String> {
    let mut snap = BTreeSet::new();
    for pred in program.idb_predicates() {
        for row in out.relation(pred).expect("IDB relation exists").iter() {
            snap.insert(format!("{pred}{:?} :- {:?}", row.terms, row.cond));
        }
    }
    snap
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Plan-compiled evaluation is world-equivalent to the independent
    /// ground reference evaluator on random programs (recursive,
    /// non-linear-recursive, negated) over random c-table databases.
    #[test]
    fn plans_are_world_equivalent_to_reference(db in arb_db(), program in arb_program()) {
        let worlds = assert_lossless(&program, &db);
        prop_assert_eq!(worlds, 9, "two {{0,1,2}} c-variables span 9 worlds");
    }

    /// Structural invariants hold for the full plan and every delta
    /// variant of every generated rule.
    #[test]
    fn compiled_plans_cover_rules_exactly(program in arb_program()) {
        for rule in &program.rules {
            assert_plan_invariants(rule, None);
            for (pos, lit) in rule.body.iter().enumerate() {
                if !lit.is_negative() {
                    assert_plan_invariants(rule, Some(pos));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// permutation invariance (deterministic)
// ---------------------------------------------------------------------------

#[test]
fn body_order_does_not_change_results() {
    let (db, _) = faure_ctable::examples::table2_path_db();
    // The same join written in all 3! literal orders (modulo the
    // comparison, which the parser keeps separate anyway).
    let orders = [
        r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#,
        r#"Cost(c) :- C(p, c), P("1.2.3.4", p)."#,
    ];
    let mut snaps = Vec::new();
    for src in orders {
        let program = parse_program(src).unwrap();
        let out = evaluate(&program, &db).unwrap();
        snaps.push(relation_snapshot(&out, &program));
    }
    assert_eq!(snaps[0], snaps[1], "literal order must not matter");
}

#[test]
fn recursive_body_order_does_not_change_results() {
    let (db, _) = faure_net::frr::figure1_database();
    let orders = [
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- R(f, n3, n2), F(f, n1, n3).\n",
    ];
    let mut snaps = Vec::new();
    for src in orders {
        let program = parse_program(src).unwrap();
        let out = evaluate(&program, &db).unwrap();
        snaps.push(relation_snapshot(&out, &program));
    }
    assert_eq!(
        snaps[0], snaps[1],
        "recursive literal order must not matter"
    );
}
