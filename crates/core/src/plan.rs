//! Compiled rule plans — the query-planning layer between fauré-log
//! rules and c-table storage.
//!
//! Interpreting a rule used to mean re-deriving its join order and
//! re-scanning its comparison list on every fixpoint iteration. This
//! module compiles each `(rule, delta slot)` pair into a [`RulePlan`]
//! **once** (cached in a [`PlanCache`] for the whole evaluation) and
//! the engine then executes the plan every iteration:
//!
//! * **join order** — positive body literals are greedily reordered by
//!   *bound-variable selectivity*: at each step the literal with the
//!   most bound argument columns (constants, c-variables, and rule
//!   variables bound by earlier steps) is joined next, so it can be
//!   probed through the storage layer's column indexes instead of
//!   scanned;
//! * **delta slot** — for semi-naive evaluation, the literal reading
//!   the iteration delta is forced to the front (the delta is the small
//!   side; everything downstream becomes an indexed probe on bound
//!   columns);
//! * **comparison pushdown** — each rule comparison is attached to the
//!   earliest join step after which all its variables are bound;
//!   ground-false comparisons then cut join branches before the
//!   remaining literals are joined, instead of after the full join;
//! * **negation** — negated literals stay after all positive joins
//!   (they need the full binding; stratification already guarantees
//!   their tables are complete).
//!
//! Plans are purely *logical*: they hold body-literal indices and
//! comparison indices into the rule, not table references, so they are
//! compiled without a database and rendered by `faure explain`.

use crate::analysis::{check_safety, stratify, AnalysisError};
use crate::ast::{ArgTerm, Program, Rule};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Planner hints from semantic analysis.
///
/// The abstract-interpretation pass in `faure-analyze` infers, per
/// predicate column, a sound over-approximation of the values the
/// column can hold. This struct is the side-channel carrying those
/// facts down to plan compilation — the plan layer stays ignorant of
/// *how* they were derived, it only consumes them:
///
/// * [`col_cards`](Hints::col_cards) tightens the greedy join order: a
///   bound column whose domain holds a single value filters nothing,
///   so it no longer counts towards bound-column selectivity, and
///   literals over provably smaller relations win ties;
/// * [`empty_preds`](Hints::empty_preds) /
///   [`infeasible_rules`](Hints::infeasible_rules) compile the whole
///   rule to a statically-pruned empty plan
///   ([`RulePlan::static_empty`]): the engine cuts the branch before
///   executing a single probe and counts the cut in `OpStats`.
///
/// Hints are advisory: an empty [`Hints::default()`] reproduces the
/// unhinted planner exactly, and *any* sound hint set leaves results
/// bit-identical — only join order and skipped work may change.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hints {
    /// Inferred domain cardinality per `(predicate, column)`, for
    /// columns whose domains are finite. A missing entry means the
    /// column's domain is unknown or unbounded.
    pub col_cards: BTreeMap<(String, usize), u64>,
    /// Predicates that provably hold no tuple in any world.
    pub empty_preds: BTreeSet<String>,
    /// Rule indices (into `Program::rules`) whose bodies are provably
    /// infeasible — the join can never produce a row.
    pub infeasible_rules: BTreeSet<usize>,
}

impl Hints {
    /// Whether this hint set carries no information (the default).
    pub fn is_empty(&self) -> bool {
        self.col_cards.is_empty() && self.empty_preds.is_empty() && self.infeasible_rules.is_empty()
    }

    /// The estimated row count of `pred` (product of its column
    /// cardinalities), capped at `u64::MAX`, or `None` when any column
    /// is unbounded or unknown.
    fn est_rows(&self, pred: &str, arity: usize) -> Option<u64> {
        let mut est: u64 = 1;
        for col in 0..arity {
            let card = *self.col_cards.get(&(pred.to_owned(), col))?;
            est = est.saturating_mul(card);
        }
        Some(est)
    }
}

/// One positive join step of a compiled plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinStep {
    /// Index of the positive literal in the rule body.
    pub lit_pos: usize,
    /// Whether this step reads the iteration delta instead of the full
    /// table (at most one step per plan; always step 0 when present).
    pub is_delta: bool,
    /// How many of the literal's argument columns are bound when this
    /// step runs (constants, c-variables, previously bound rule
    /// variables) — the selectivity score that ordered it.
    pub bound_cols: usize,
    /// Rule variables first bound by this step, in argument order.
    pub binds: Vec<String>,
    /// Indices into `rule.comparisons` evaluated right after this step
    /// (pushdown: all their variables are bound here and not earlier).
    pub comparisons: Vec<usize>,
}

/// A compiled evaluation plan for one rule under one delta slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RulePlan {
    /// Body position of the delta literal, if this is a semi-naive
    /// delta pass.
    pub delta_pos: Option<usize>,
    /// Positive join steps, in execution order.
    pub steps: Vec<JoinStep>,
    /// Indices into `rule.comparisons` with no rule variables (ground
    /// or c-variable-only), evaluated before any join step.
    pub initial_comparisons: Vec<usize>,
    /// Body positions of negated literals, evaluated after all joins.
    pub negations: Vec<usize>,
    /// Statically pruned: semantic analysis proved the body can never
    /// produce a row (a positive literal over a provably-empty
    /// predicate, or a provably-infeasible join). The engine skips the
    /// plan entirely and counts the cut in `OpStats::static_cut`.
    pub static_empty: bool,
}

fn arg_is_bound(arg: &ArgTerm, bound: &BTreeSet<&str>) -> bool {
    match arg {
        ArgTerm::Cst(_) | ArgTerm::CVar(_) => true,
        ArgTerm::Var(v) => bound.contains(v.as_str()),
    }
}

fn bound_cols(rule: &Rule, lit_pos: usize, bound: &BTreeSet<&str>) -> usize {
    rule.body[lit_pos]
        .atom()
        .args
        .iter()
        .filter(|a| arg_is_bound(a, bound))
        .count()
}

/// Compiles the plan for `rule` with an optional forced delta literal.
///
/// The join order is chosen greedily: the delta literal (if any) goes
/// first; afterwards, among the remaining positive literals, the one
/// with the most bound columns wins, ties broken by fewer *unbound*
/// columns (a fully-bound binary atom beats a half-bound ternary one),
/// then by body position (stable for `explain` output).
pub fn compile_rule(rule: &Rule, delta_pos: Option<usize>) -> RulePlan {
    compile_rule_hinted(rule, usize::MAX, delta_pos, &Hints::default())
}

/// [`compile_rule`] with semantic-analysis hints (see [`Hints`]).
///
/// With hints the greedy key refines in two ways, both order-only (the
/// produced rows are identical): a bound column whose inferred domain
/// holds exactly one value stops counting as bound (probing it filters
/// nothing), and ties between equally-bound literals break towards the
/// literal with the smallest estimated relation size. An infeasible
/// rule — or one reading a provably-empty predicate — compiles to a
/// [statically-pruned](RulePlan::static_empty) plan.
pub fn compile_rule_hinted(
    rule: &Rule,
    rule_idx: usize,
    delta_pos: Option<usize>,
    hints: &Hints,
) -> RulePlan {
    let static_empty = hints.infeasible_rules.contains(&rule_idx)
        || rule
            .body
            .iter()
            .any(|l| !l.is_negative() && hints.empty_preds.contains(l.atom().pred.as_str()));
    let mut remaining: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_negative())
        .map(|(i, _)| i)
        .collect();
    let negations: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_negative())
        .map(|(i, _)| i)
        .collect();

    let mut bound: BTreeSet<&str> = BTreeSet::new();
    let mut pending_cmp: Vec<usize> = (0..rule.comparisons.len()).collect();
    let mut initial_comparisons = Vec::new();
    pending_cmp.retain(|&ci| {
        if rule.comparisons[ci].variables().is_empty() {
            initial_comparisons.push(ci);
            false
        } else {
            true
        }
    });

    let mut steps = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let pick = if let Some(dp) = delta_pos.filter(|_| steps.is_empty()) {
            remaining
                .iter()
                .position(|&p| p == dp)
                .expect("delta position must be a positive body literal")
        } else {
            let mut best = 0usize;
            let mut best_key = (0usize, usize::MAX, 0u64, usize::MAX);
            for (i, &p) in remaining.iter().enumerate() {
                let atom = rule.body[p].atom();
                // Effective bound columns: a bound column whose inferred
                // domain holds a single value filters nothing, so it
                // earns no selectivity credit.
                let eff_bc = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(col, a)| {
                        arg_is_bound(a, &bound)
                            && hints
                                .col_cards
                                .get(&(atom.pred.clone(), *col))
                                .is_none_or(|&card| card > 1)
                    })
                    .count();
                let unbound = atom.args.len() - bound_cols(rule, p, &bound);
                // Smaller estimated relations win ties (0 = unknown).
                let small = u64::MAX
                    - hints
                        .est_rows(&atom.pred, atom.args.len())
                        .unwrap_or(u64::MAX);
                // Max effective bound columns; then min unbound; then
                // min estimated size; then body order.
                let key = (eff_bc, usize::MAX - unbound, small, usize::MAX - p);
                if i == 0 || key > best_key {
                    best = i;
                    best_key = key;
                }
            }
            best
        };
        let lit_pos = remaining.swap_remove(pick);
        let bc = bound_cols(rule, lit_pos, &bound);
        let mut binds = Vec::new();
        for arg in &rule.body[lit_pos].atom().args {
            if let ArgTerm::Var(v) = arg {
                if bound.insert(v.as_str()) {
                    binds.push(v.clone());
                }
            }
        }
        let mut comparisons = Vec::new();
        pending_cmp.retain(|&ci| {
            let vars = rule.comparisons[ci].variables();
            if vars.iter().all(|v| bound.contains(v)) {
                comparisons.push(ci);
                false
            } else {
                true
            }
        });
        steps.push(JoinStep {
            lit_pos,
            is_delta: delta_pos == Some(lit_pos),
            bound_cols: bc,
            binds,
            comparisons,
        });
    }
    debug_assert!(
        pending_cmp.is_empty(),
        "safety guarantees every comparison variable is bound by a positive literal"
    );

    RulePlan {
        delta_pos,
        steps,
        initial_comparisons,
        negations,
        static_empty,
    }
}

/// Renders a plan against its rule, one numbered operator per line.
pub fn render_plan(rule: &Rule, plan: &RulePlan, out: &mut String) {
    use fmt::Write;
    let mut n = 0usize;
    let mut op = |out: &mut String| {
        n += 1;
        let _ = write!(out, "      {n}. ");
    };
    if plan.static_empty {
        op(out);
        let _ = writeln!(
            out,
            "prune (statically empty body — branch cut before execution)"
        );
    }
    for &ci in &plan.initial_comparisons {
        op(out);
        let _ = writeln!(out, "filter {}", rule.comparisons[ci]);
    }
    for step in &plan.steps {
        op(out);
        let atom = rule.body[step.lit_pos].atom();
        let kind = if step.is_delta {
            "scan Δ"
        } else if step.bound_cols > 0 {
            "probe"
        } else {
            "scan"
        };
        let _ = write!(out, "{kind} {atom}");
        if step.bound_cols > 0 {
            let _ = write!(out, "   [{} bound col(s)]", step.bound_cols);
        }
        if !step.binds.is_empty() {
            let _ = write!(out, "   binds {}", step.binds.join(", "));
        }
        let _ = writeln!(out);
        for &ci in &step.comparisons {
            op(out);
            let _ = writeln!(out, "filter {}   (pushed down)", rule.comparisons[ci]);
        }
    }
    for &np in &plan.negations {
        op(out);
        let _ = writeln!(out, "negate {}", rule.body[np]);
    }
    op(out);
    let _ = writeln!(out, "emit {}", rule.head);
}

/// Per-evaluation plan cache, keyed by `(rule index, delta slot)`.
///
/// The first request for a key compiles the plan (a miss); every later
/// request — one per fixpoint iteration — returns the cached plan (a
/// hit). The hit/miss counters surface in
/// [`faure_storage::PhaseStats`] so callers can assert that plans are
/// compiled once and reused.
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    plans: HashMap<(usize, Option<usize>), RulePlan>,
    /// Semantic-analysis hints applied to every compilation (empty by
    /// default — the unhinted planner).
    hints: Hints,
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that compiled a new plan.
    pub misses: u64,
}

impl PlanCache {
    /// An empty cache (unhinted planning).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that compiles every plan under `hints`.
    pub fn with_hints(hints: Hints) -> Self {
        PlanCache {
            hints,
            ..Self::default()
        }
    }

    /// The hints this cache compiles under.
    pub fn hints(&self) -> &Hints {
        &self.hints
    }

    /// A copy of this cache with its hit/miss counters reset — used by
    /// prepared-program runs, which start from a fully compiled cache
    /// but report per-run statistics.
    pub fn fresh_counters(&self) -> PlanCache {
        PlanCache {
            plans: self.plans.clone(),
            hints: self.hints.clone(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the plan for `(rule_idx, delta_pos)`, compiling it on
    /// first use.
    pub fn get_or_compile(
        &mut self,
        rule_idx: usize,
        rule: &Rule,
        delta_pos: Option<usize>,
    ) -> &RulePlan {
        let key = (rule_idx, delta_pos);
        if self.plans.contains_key(&key) {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.plans.insert(
                key,
                compile_rule_hinted(rule, rule_idx, delta_pos, &self.hints),
            );
        }
        self.plans.get(&key).expect("inserted above")
    }
}

/// How incremental maintenance handles deletions reaching a predicate
/// (see `engine::maintain`). The decision is purely structural — it
/// depends on the stratification, not the data — so it is compiled
/// here, once, alongside the rule plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeletionStrategy {
    /// Non-recursive stratum: a counting-gated single pass. Support
    /// counts on the stored rows bound the suspect set, and
    /// re-derivation runs only for rules whose heads actually lost
    /// rows; the over-delete frontier empties after one round because
    /// no rule reads an in-stratum predicate.
    Counting,
    /// Recursive stratum: DRed. Over-delete to the transitive closure
    /// of suspect rows (derivations reachable from the deleted
    /// tuples), then re-derive the survivors' contributions through
    /// the stratum fixpoint.
    Rederive,
}

/// Per-program maintenance metadata: which body positions can carry a
/// delta, which strata are recursive, and the deletion strategy per
/// derived predicate. Compiled once at prepare time (like the rule
/// plans); the `engine::maintain` module consumes it on every
/// [`Delta`](../engine/struct.Delta.html) application.
#[derive(Clone, Debug, Default)]
pub struct MaintenanceMeta {
    /// For each rule (by index into `Program::rules`): the body
    /// positions of its positive literals — every slot a delta pass
    /// can be pinned to. Unlike the prepare-time plan set (which only
    /// covers in-stratum recursion), maintenance deltas arrive on EDB
    /// and lower-stratum predicates too; the plans for those slots
    /// compile lazily through the same [`PlanCache`].
    pub delta_positions: Vec<Vec<usize>>,
    /// Per stratum: whether some rule reads an in-stratum predicate
    /// positively (the stratum needs fixpoint iteration).
    pub recursive_strata: Vec<bool>,
    /// Deletion strategy per derived predicate, keyed by name.
    pub strategies: BTreeMap<String, DeletionStrategy>,
    /// For each predicate: indices of rules that negate it. A change
    /// to such a predicate can strengthen *or* weaken the negated
    /// condition, so the affected stratum falls back to
    /// over-deleting every row of those rules' heads.
    pub negated_by: BTreeMap<String, BTreeSet<usize>>,
}

/// Partition keys for sharded evaluation: one key column per derived
/// predicate. The sharded fixpoint driver routes each changed row of a
/// predicate by hashing the constant in its key column (c-variable
/// cells broadcast — see `faure_storage::shard`).
///
/// The default key is the predicate's first *bound* head column: the
/// first head argument that is a rule variable occurring in some
/// positive body literal, i.e. a column a join actually constrains.
/// Head columns carrying constants or c-variables make poor partition
/// keys (all rows collide, or every row broadcasts), so they are
/// skipped; if no column qualifies the key falls back to column 0.
/// When several rules derive the same predicate the first rule in
/// program order decides, keeping the choice deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardPlan {
    /// Key column index per derived predicate.
    pub keys: BTreeMap<String, usize>,
}

impl ShardPlan {
    /// Compiles the default plan for `program` under `strata` (rule
    /// indices per stratum, as produced by `analysis::stratify`).
    pub fn build(program: &Program, strata: &[Vec<usize>]) -> ShardPlan {
        let mut keys = BTreeMap::new();
        for stratum_rules in strata {
            for &ri in stratum_rules {
                let rule = &program.rules[ri];
                let pred = rule.head.pred.as_str();
                if keys.contains_key(pred) {
                    continue;
                }
                let bound = rule.head.args.iter().position(|arg| match arg {
                    ArgTerm::Var(v) => rule.body.iter().any(|lit| {
                        !lit.is_negative()
                            && lit
                                .atom()
                                .args
                                .iter()
                                .any(|a| matches!(a, ArgTerm::Var(w) if w == v))
                    }),
                    ArgTerm::CVar(_) | ArgTerm::Cst(_) => false,
                });
                keys.insert(pred.to_owned(), bound.unwrap_or(0));
            }
        }
        ShardPlan { keys }
    }

    /// The key column for `pred` (column 0 for predicates the plan
    /// never saw, e.g. EDB relations).
    pub fn key_for(&self, pred: &str) -> usize {
        self.keys.get(pred).copied().unwrap_or(0)
    }

    /// Overrides the key column for one predicate (`--shard-key`).
    pub fn set_key(&mut self, pred: &str, col: usize) {
        self.keys.insert(pred.to_owned(), col);
    }
}

/// Compiles the maintenance metadata for `program` under `strata`
/// (rule indices per stratum, as produced by `analysis::stratify`).
pub fn maintenance_meta(program: &Program, strata: &[Vec<usize>]) -> MaintenanceMeta {
    let delta_positions: Vec<Vec<usize>> = program
        .rules
        .iter()
        .map(|rule| {
            rule.body
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_negative())
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let mut recursive_strata = Vec::with_capacity(strata.len());
    let mut strategies = BTreeMap::new();
    for stratum_rules in strata {
        let heads: BTreeSet<&str> = stratum_rules
            .iter()
            .map(|&ri| program.rules[ri].head.pred.as_str())
            .collect();
        let recursive = stratum_rules.iter().any(|&ri| {
            program.rules[ri]
                .body
                .iter()
                .any(|l| !l.is_negative() && heads.contains(l.atom().pred.as_str()))
        });
        recursive_strata.push(recursive);
        let strategy = if recursive {
            DeletionStrategy::Rederive
        } else {
            DeletionStrategy::Counting
        };
        for h in heads {
            strategies.insert(h.to_owned(), strategy);
        }
    }
    let mut negated_by: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        for lit in &rule.body {
            if lit.is_negative() {
                negated_by
                    .entry(lit.atom().pred.clone())
                    .or_default()
                    .insert(ri);
            }
        }
    }
    MaintenanceMeta {
        delta_positions,
        recursive_strata,
        strategies,
        negated_by,
    }
}

/// Renders the compiled plans for a whole program, stratum by stratum:
/// for each rule, the full-evaluation plan plus one delta-pass plan per
/// recursive body literal (the plans semi-naive evaluation actually
/// runs). This is the engine behind `faure explain`.
pub fn explain_program(program: &Program) -> Result<String, AnalysisError> {
    use fmt::Write;
    check_safety(program)?;
    let strat = stratify(program)?;
    let mut out = String::new();
    for (si, stratum_rules) in strat.strata.iter().enumerate() {
        let stratum_preds: BTreeSet<&str> = stratum_rules
            .iter()
            .map(|&ri| program.rules[ri].head.pred.as_str())
            .collect();
        let _ = writeln!(out, "stratum {si}:");
        for &ri in stratum_rules {
            let rule = &program.rules[ri];
            let _ = writeln!(out, "  rule {}: {}", ri + 1, rule);
            if rule.body.iter().all(|l| l.is_negative()) && rule.body.is_empty() {
                // Facts have no joins; the emit line still shows.
            }
            let _ = writeln!(out, "    plan [full]:");
            render_plan(rule, &compile_rule(rule, None), &mut out);
            for (pos, lit) in rule.body.iter().enumerate() {
                if lit.is_negative() || !stratum_preds.contains(lit.atom().pred.as_str()) {
                    continue;
                }
                let _ = writeln!(out, "    plan [Δ {} @ body {}]:", lit.atom().pred, pos + 1);
                render_plan(rule, &compile_rule(rule, Some(pos)), &mut out);
            }
        }
    }
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one plan as a JSON array of operator objects, mirroring the
/// numbered lines of [`render_plan`].
fn plan_to_json(rule: &Rule, plan: &RulePlan) -> String {
    use fmt::Write;
    let mut ops: Vec<String> = Vec::new();
    for &ci in &plan.initial_comparisons {
        ops.push(format!(
            r#"{{"op":"filter","expr":"{}","pushed":false}}"#,
            json_escape(&rule.comparisons[ci].to_string())
        ));
    }
    for step in &plan.steps {
        let atom = rule.body[step.lit_pos].atom();
        let kind = if step.is_delta {
            "scan-delta"
        } else if step.bound_cols > 0 {
            "probe"
        } else {
            "scan"
        };
        let binds: Vec<String> = step
            .binds
            .iter()
            .map(|b| format!("\"{}\"", json_escape(b)))
            .collect();
        ops.push(format!(
            r#"{{"op":"{kind}","atom":"{}","bound_cols":{},"binds":[{}]}}"#,
            json_escape(&atom.to_string()),
            step.bound_cols,
            binds.join(",")
        ));
        for &ci in &step.comparisons {
            ops.push(format!(
                r#"{{"op":"filter","expr":"{}","pushed":true}}"#,
                json_escape(&rule.comparisons[ci].to_string())
            ));
        }
    }
    for &np in &plan.negations {
        ops.push(format!(
            r#"{{"op":"negate","literal":"{}"}}"#,
            json_escape(&rule.body[np].to_string())
        ));
    }
    ops.push(format!(
        r#"{{"op":"emit","atom":"{}"}}"#,
        json_escape(&rule.head.to_string())
    ));
    let mut s = String::from("[");
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{op}");
    }
    s.push(']');
    s
}

/// The JSON form of [`explain_program`]: a JSON array with one object
/// per rule (`stratum`, `rule` index, rule `text`, and its compiled
/// `plans` — the full plan plus one delta plan per recursive body
/// literal). Powers `faure explain --format json` for editor and CI
/// integration, mirroring `faure check --format json`.
pub fn explain_program_json(program: &Program) -> Result<String, AnalysisError> {
    use fmt::Write;
    check_safety(program)?;
    let strat = stratify(program)?;
    let mut out = String::from("[");
    let mut first = true;
    for (si, stratum_rules) in strat.strata.iter().enumerate() {
        let stratum_preds: BTreeSet<&str> = stratum_rules
            .iter()
            .map(|&ri| program.rules[ri].head.pred.as_str())
            .collect();
        for &ri in stratum_rules {
            let rule = &program.rules[ri];
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                r#"{{"stratum":{si},"rule":{},"text":"{}","plans":[{{"delta":null,"ops":{}}}"#,
                ri + 1,
                json_escape(&rule.to_string()),
                plan_to_json(rule, &compile_rule(rule, None))
            );
            for (pos, lit) in rule.body.iter().enumerate() {
                if lit.is_negative() || !stratum_preds.contains(lit.atom().pred.as_str()) {
                    continue;
                }
                let _ = write!(
                    out,
                    r#",{{"delta":{{"pred":"{}","body":{}}},"ops":{}}}"#,
                    json_escape(&lit.atom().pred),
                    pos + 1,
                    plan_to_json(rule, &compile_rule(rule, Some(pos)))
                );
            }
            out.push_str("]}");
        }
    }
    out.push_str("]\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn constants_pull_literal_forward() {
        // C(p, c) has 0 bound columns; P("1.2.3.4", p) has 1 — the plan
        // must reorder to probe P first even though C is written first.
        let program = parse_program(r#"Cost(c) :- C(p, c), P("1.2.3.4", p)."#).unwrap();
        let plan = compile_rule(&program.rules[0], None);
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].lit_pos, 1, "P literal first");
        assert_eq!(plan.steps[0].bound_cols, 1);
        assert_eq!(plan.steps[1].lit_pos, 0);
        assert_eq!(plan.steps[1].bound_cols, 1, "p is bound by step 1");
    }

    #[test]
    fn delta_literal_is_forced_first() {
        let program = parse_program("R(a, b) :- E(a, c), R(c, b).").unwrap();
        let plan = compile_rule(&program.rules[0], Some(1));
        assert_eq!(plan.steps[0].lit_pos, 1);
        assert!(plan.steps[0].is_delta);
        // E(a, c) then probes with c bound.
        assert_eq!(plan.steps[1].lit_pos, 0);
        assert_eq!(plan.steps[1].bound_cols, 1);
    }

    #[test]
    fn comparisons_push_to_earliest_step() {
        let program = parse_program("Q(a) :- E(a, c), F(c, d), a != 0, d < 9, 1 < 2.").unwrap();
        let plan = compile_rule(&program.rules[0], None);
        // `1 < 2` has no variables: initial. `a != 0` binds at step 0
        // (E binds a, c); `d < 9` waits for F.
        assert_eq!(plan.initial_comparisons, vec![2]);
        assert_eq!(plan.steps[0].comparisons, vec![0]);
        assert_eq!(plan.steps[1].comparisons, vec![1]);
    }

    #[test]
    fn negations_follow_joins() {
        let program = parse_program("Open(a) :- N(a), !Block(a).").unwrap();
        let plan = compile_rule(&program.rules[0], None);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.negations, vec![1]);
    }

    #[test]
    fn shard_plan_picks_first_bound_column() {
        // R's first head column `a` is bound by E(a, b): key 0.
        let program = parse_program("R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n").unwrap();
        let strata = stratify(&program).unwrap().strata;
        let plan = ShardPlan::build(&program, &strata);
        assert_eq!(plan.key_for("R"), 0);
        // Unknown (EDB) predicates default to column 0.
        assert_eq!(plan.key_for("E"), 0);
    }

    #[test]
    fn shard_plan_skips_unbound_head_columns() {
        // Head column 0 is a constant, column 1 a c-variable; column 2
        // is the first rule variable bound by a body literal.
        let program = parse_program("Q(7, $x, a) :- E(a, b).").unwrap();
        let strata = stratify(&program).unwrap().strata;
        let plan = ShardPlan::build(&program, &strata);
        assert_eq!(plan.key_for("Q"), 2);
    }

    #[test]
    fn shard_plan_falls_back_to_column_zero() {
        // A fact rule binds nothing: fall back to column 0.
        let program = parse_program("F(1, 2).").unwrap();
        let strata = stratify(&program).unwrap().strata;
        let plan = ShardPlan::build(&program, &strata);
        assert_eq!(plan.key_for("F"), 0);
    }

    #[test]
    fn shard_plan_overrides_stick() {
        let program = parse_program("R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n").unwrap();
        let strata = stratify(&program).unwrap().strata;
        let mut plan = ShardPlan::build(&program, &strata);
        plan.set_key("R", 1);
        assert_eq!(plan.key_for("R"), 1);
    }

    #[test]
    fn cache_hits_on_reuse() {
        let program = parse_program("R(a, b) :- E(a, c), R(c, b).").unwrap();
        let mut cache = PlanCache::new();
        let rule = &program.rules[0];
        cache.get_or_compile(0, rule, Some(1));
        cache.get_or_compile(0, rule, Some(1));
        cache.get_or_compile(0, rule, None);
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn explain_renders_all_example_shapes() {
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n\
             Open(a) :- R(a, b), !Block(b), a != 0.\n",
        )
        .unwrap();
        let text = explain_program(&program).unwrap();
        assert!(text.contains("stratum 0"), "{text}");
        assert!(text.contains("plan [full]"), "{text}");
        assert!(text.contains("plan [Δ R @ body 2]"), "{text}");
        assert!(text.contains("scan Δ R(c, b)"), "{text}");
        assert!(text.contains("negate !Block(b)"), "{text}");
        assert!(text.contains("pushed down"), "{text}");
    }

    #[test]
    fn explain_json_mirrors_text_form() {
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n\
             Open(a) :- R(a, b), !Block(b), a != 0.\n",
        )
        .unwrap();
        let json = explain_program_json(&program).unwrap();
        assert!(json.starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains(r#""stratum":0"#), "{json}");
        assert!(json.contains(r#""delta":null"#), "{json}");
        assert!(json.contains(r#""delta":{"pred":"R","body":2}"#), "{json}");
        assert!(json.contains(r#""op":"scan-delta""#), "{json}");
        assert!(
            json.contains(r#""op":"negate","literal":"!Block(b)""#),
            "{json}"
        );
        assert!(
            json.contains(r#""op":"filter","expr":"a != 0","pushed":true"#),
            "{json}"
        );
        assert!(json.contains(r#""op":"emit""#), "{json}");
        // Quotes inside rule text are escaped.
        let q = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#).unwrap();
        let json = explain_program_json(&q).unwrap();
        assert!(json.contains(r#"P(\"1.2.3.4\", p)"#), "{json}");
    }

    #[test]
    fn explain_json_rejects_unsafe_programs() {
        let program = parse_program("R(a, b) :- E(a).\n").unwrap();
        assert!(explain_program_json(&program).is_err());
    }
}
