//! Stats-collecting solver session.
//!
//! The Table 4 reproduction reports the time spent in the solver phase
//! separately from the relational ("SQL") phase, mirroring the paper's
//! `sql` / `Z3` columns. [`Session`] wraps the solver entry points and
//! accumulates call counts and wall-clock time.

use crate::error::SolverError;
use crate::search;
use crate::simplify;
use faure_ctable::{Assignment, CVarRegistry, Condition};
use std::time::{Duration, Instant};

/// Accumulated solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of satisfiability queries issued.
    pub sat_calls: u64,
    /// How many of them came back satisfiable.
    pub sat_true: u64,
    /// Number of `simplify_pruned` invocations.
    pub simplify_calls: u64,
    /// Total wall-clock time inside the solver.
    pub time: Duration,
}

/// A solver session: entry points plus accumulated statistics.
///
/// Sessions are cheap; the evaluation pipeline creates one per query
/// run and folds its stats into the run report.
#[derive(Debug, Default)]
pub struct Session {
    stats: SolverStats,
}

impl Session {
    /// A fresh session with zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Resets statistics to zero.
    pub fn reset(&mut self) {
        self.stats = SolverStats::default();
    }

    /// Satisfiability with stats accounting.
    pub fn satisfiable(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<bool, SolverError> {
        let start = Instant::now();
        let out = search::satisfiable(reg, cond);
        self.stats.time += start.elapsed();
        self.stats.sat_calls += 1;
        if let Ok(true) = out {
            self.stats.sat_true += 1;
        }
        out
    }

    /// Model search with stats accounting.
    pub fn find_model(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<Option<Assignment>, SolverError> {
        let start = Instant::now();
        let out = search::find_model(reg, cond);
        self.stats.time += start.elapsed();
        self.stats.sat_calls += 1;
        if let Ok(Some(_)) = out {
            self.stats.sat_true += 1;
        }
        out
    }

    /// Solver-backed simplification with stats accounting.
    pub fn simplify_pruned(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<Condition, SolverError> {
        let start = Instant::now();
        let out = simplify::simplify_pruned(reg, cond);
        self.stats.time += start.elapsed();
        self.stats.simplify_calls += 1;
        out
    }

    /// Merges another session's stats into this one.
    pub fn absorb(&mut self, other: &Session) {
        self.stats.sat_calls += other.stats.sat_calls;
        self.stats.sat_true += other.stats.sat_true;
        self.stats.simplify_calls += other.stats.simplify_calls;
        self.stats.time += other.stats.time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{Domain, Term};

    #[test]
    fn stats_accumulate() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let sat = Condition::eq(Term::Var(x), Term::int(1));
        let unsat = sat.clone().and(Condition::eq(Term::Var(x), Term::int(0)));
        assert!(s.satisfiable(&reg, &sat).unwrap());
        assert!(!s.satisfiable(&reg, &unsat).unwrap());
        let st = s.stats();
        assert_eq!(st.sat_calls, 2);
        assert_eq!(st.sat_true, 1);
        s.reset();
        assert_eq!(s.stats(), SolverStats::default());
    }

    #[test]
    fn absorb_merges() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut a = Session::new();
        let mut b = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        a.satisfiable(&reg, &c).unwrap();
        b.satisfiable(&reg, &c).unwrap();
        a.absorb(&b);
        assert_eq!(a.stats().sat_calls, 2);
    }
}
