//! C-tuples, schemas, and relations (c-tables).

use crate::condition::Condition;
use crate::cvar::CVarRegistry;
use crate::error::CtableError;
use crate::term::Term;
use std::fmt;

/// One row of a c-table: a vector of terms plus a condition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CTuple {
    /// Cell values (one per schema attribute).
    pub terms: Vec<Term>,
    /// Row condition; [`Condition::True`] is the empty condition.
    pub cond: Condition,
}

impl CTuple {
    /// A tuple with the empty (always-true) condition.
    pub fn new<I: IntoIterator<Item = Term>>(terms: I) -> Self {
        CTuple {
            terms: terms.into_iter().collect(),
            cond: Condition::True,
        }
    }

    /// A tuple with an explicit condition.
    pub fn with_cond<I: IntoIterator<Item = Term>>(terms: I, cond: Condition) -> Self {
        CTuple {
            terms: terms.into_iter().collect(),
            cond,
        }
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Whether every cell is a constant (the condition may still
    /// mention c-variables).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// Renders with c-variable names from `reg`.
    pub fn display<'a>(&'a self, reg: &'a CVarRegistry) -> CTupleDisplay<'a> {
        CTupleDisplay { tuple: self, reg }
    }
}

/// Helper returned by [`CTuple::display`].
pub struct CTupleDisplay<'a> {
    tuple: &'a CTuple,
    reg: &'a CVarRegistry,
}

impl fmt::Display for CTupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, t) in self.tuple.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", t.display(self.reg))?;
        }
        f.write_str(")")?;
        if self.tuple.cond != Condition::True {
            write!(f, " [{}]", self.tuple.cond.display(self.reg))?;
        }
        Ok(())
    }
}

/// Relation schema: a name plus attribute names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    /// Relation (predicate) name, e.g. `"F"` or `"R"`.
    pub name: String,
    /// Attribute names, e.g. `["source", "dest"]`.
    pub attrs: Vec<String>,
}

impl Schema {
    /// Builds a schema.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> Self {
        Schema {
            name: name.into(),
            attrs: attrs.iter().map(|a| (*a).to_owned()).collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of attribute `attr`, if present.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }
}

/// A c-table: a schema plus a set of c-tuples.
///
/// Tuples are stored in insertion order; duplicate rows (same terms and
/// condition) are permitted at this layer — the storage engine
/// deduplicates and merges conditions.
#[derive(Clone, PartialEq, Debug)]
pub struct Relation {
    /// Relation schema.
    pub schema: Schema,
    /// The rows.
    pub tuples: Vec<CTuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a row, checking its arity against the schema.
    pub fn push(&mut self, tuple: CTuple) -> Result<(), CtableError> {
        if tuple.arity() != self.schema.arity() {
            return Err(CtableError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Appends a row of constants with the empty condition.
    pub fn push_facts<I>(&mut self, rows: I) -> Result<(), CtableError>
    where
        I: IntoIterator<Item = Vec<Term>>,
    {
        for row in rows {
            self.push(CTuple::new(row))?;
        }
        Ok(())
    }

    /// Iterator over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, CTuple> {
        self.tuples.iter()
    }

    /// Whether any cell of any row contains a c-variable or any row has
    /// a non-trivial condition — i.e. whether this is a *proper*
    /// c-table rather than an ordinary relation.
    pub fn is_conditional(&self) -> bool {
        self.tuples
            .iter()
            .any(|t| !t.is_ground() || t.cond != Condition::True)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::cvar::{CVarRegistry, Domain};
    use crate::term::Term;

    #[test]
    fn schema_lookup() {
        let s = Schema::new("R", &["subnet", "server", "port"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_index("server"), Some(1));
        assert_eq!(s.attr_index("nope"), None);
    }

    #[test]
    fn push_checks_arity() {
        let mut r = Relation::empty(Schema::new("F", &["a", "b"]));
        assert!(r.push(CTuple::new([Term::int(1), Term::int(2)])).is_ok());
        let err = r.push(CTuple::new([Term::int(1)])).unwrap_err();
        assert!(err.to_string().contains("arity"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn conditional_detection() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut r = Relation::empty(Schema::new("F", &["a", "b"]));
        r.push(CTuple::new([Term::int(1), Term::int(2)])).unwrap();
        assert!(!r.is_conditional());
        r.push(CTuple::with_cond(
            [Term::int(1), Term::int(3)],
            Condition::eq(Term::Var(x), Term::int(0)),
        ))
        .unwrap();
        assert!(r.is_conditional());
    }

    #[test]
    fn tuple_display() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let t = CTuple::with_cond(
            [Term::int(1), Term::Var(x)],
            Condition::eq(Term::Var(x), Term::int(1)),
        );
        assert_eq!(t.display(&reg).to_string(), "(1, x') [x' = 1]");
    }
}
