//! Quickstart: c-tables and fauré-log on the paper's Table 2.
//!
//! Builds the PATH' database — a c-table `P` whose rows contain
//! c-variables and conditions, plus a regular cost table `C` — runs the
//! paper's queries q1–q3, and demonstrates loss-less modeling by
//! cross-checking one query against brute-force possible-world
//! enumeration.
//!
//! Run with: `cargo run -p faure-examples --bin quickstart`

use faure_core::run;
use faure_ctable::examples::table2_path_db;
use faure_ctable::worlds::WorldIter;
use faure_ctable::Const;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (db, _) = table2_path_db();

    println!("=== The PATH' database (Table 2) ===");
    print!("{db}");

    // q2: cost of reaching 1.2.3.4 — the path is unknown (x̄), so the
    // answer is conditional: 3 if x̄ = [ABC], 4 if x̄ = [ADEC].
    println!("\n=== q2: cost of reaching 1.2.3.4 ===");
    let out = run(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#, &db)?;
    for row in out.relation("Cost").expect("derived").iter() {
        println!("  {}", row.display(&out.database.cvars));
    }

    // q3: implicit pattern matching — the constant 1.2.3.5 matches the
    // c-variable destination ȳ, adding ȳ = 1.2.3.5 to the condition.
    println!("\n=== q3: cost of reaching 1.2.3.5 (pattern-matches ȳ) ===");
    let out3 = run(r#"Q3(c) :- P("1.2.3.5", p), C(p, c)."#, &db)?;
    for row in out3.relation("Q3").expect("derived").iter() {
        println!("  {}", row.display(&out3.database.cvars));
    }

    // Loss-less modeling, demonstrated: enumerate every possible world
    // of PATH', compute the q2 answer per world by hand, and check it
    // agrees with instantiating the c-table answer in that world.
    println!("\n=== loss-lessness check: q2 across all possible worlds ===");
    let answers = out.relation("Cost").expect("derived");
    let mut worlds_checked = 0;
    for world in WorldIter::new(&db, None)? {
        // Ground-truth answer in this world.
        let p = world.relation("P").expect("P exists");
        let c = world.relation("C").expect("C exists");
        let mut expect: Vec<Const> = Vec::new();
        for pt in &p.tuples {
            if pt[0] == Const::sym("1.2.3.4") {
                for ct in &c.tuples {
                    if ct[0] == pt[1] && !expect.contains(&ct[1]) {
                        expect.push(ct[1].clone());
                    }
                }
            }
        }
        expect.sort();
        // The c-table answer instantiated in this world.
        let lookup = world.assignment.lookup();
        let mut got: Vec<Const> = Vec::new();
        for row in answers.iter() {
            if row.cond.eval(&lookup) == Some(true) {
                let v = row.terms[0]
                    .instantiate(&lookup)
                    .expect("world assignment binds every c-variable");
                if !got.contains(&v) {
                    got.push(v);
                }
            }
        }
        got.sort();
        assert_eq!(expect, got, "world {:?}", world.assignment);
        worlds_checked += 1;
    }
    println!("  agreed with pure datalog in all {worlds_checked} worlds ✓");

    Ok(())
}
