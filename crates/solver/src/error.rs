//! Solver errors.

use std::fmt;

/// Errors raised by the decision procedure.
///
/// The solver never silently approximates: inputs outside the supported
/// fragment produce an error rather than a possibly-wrong verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// A c-variable with an open (infinite) domain occurs in an order
    /// comparison or a linear-arithmetic atom. The finite-domain theory
    /// cannot decide this; give the variable a finite domain.
    OpenDomainArith {
        /// Name of the offending c-variable.
        cvar: String,
    },
    /// A linear expression references a c-variable whose domain
    /// contains non-integer constants.
    NonNumericLinear {
        /// Name of the offending c-variable.
        cvar: String,
    },
    /// The search exceeded the configured node budget (pathological
    /// boolean structure). Raising the budget is always sound.
    BudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::OpenDomainArith { cvar } => write!(
                f,
                "c-variable {cvar}' has an open domain but occurs in an order/linear atom"
            ),
            SolverError::NonNumericLinear { cvar } => write!(
                f,
                "c-variable {cvar}' has a non-numeric domain but occurs in a linear expression"
            ),
            SolverError::BudgetExceeded { budget } => {
                write!(f, "solver search budget of {budget} nodes exceeded")
            }
        }
    }
}

impl std::error::Error for SolverError {}
