//! Continuous-telemetry registry: named atomic counters, gauges and
//! histogram families that live for the whole process.
//!
//! The span machinery in the crate root is *post-mortem*: events are
//! buffered and rendered after the run ends. A long-lived evaluation —
//! the `--updates` churn loop, or the future `faure serve` daemon —
//! needs counters that can be scraped *while it runs*. [`Registry`] is
//! that surface: engine boundaries (stratum, prune, update apply)
//! publish their counters into it, and the [`crate::prom`] module
//! renders a [`Snapshot`] as Prometheus text exposition or a JSONL
//! line without stopping the pipeline.
//!
//! Publication is observationally transparent by construction: handles
//! are plain atomics (histograms a mutex around a `Copy` struct), so
//! publishing can never change evaluation results — only the counters.
//!
//! Counters are cumulative since process start, Prometheus-style; a
//! scraper that wants rates takes two [`Snapshot`]s and calls
//! [`Snapshot::since`]. The registry is process-global by design
//! (see [`global`]); tests that assert on counter movement must
//! snapshot first and assert on the delta, exactly like the condition
//! pool's counters.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A metric's identity: its name plus any label pairs, both ordered,
/// so `BTreeMap` iteration (and therefore every rendered exposition)
/// is deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name, e.g. `faure_probes_total`.
    pub name: &'static str,
    /// Label pairs, e.g. `[("mode", "counting")]`. Empty for plain
    /// (unlabeled) metrics.
    pub labels: Vec<(&'static str, String)>,
}

impl Key {
    fn plain(name: &'static str) -> Self {
        Key {
            name,
            labels: Vec::new(),
        }
    }

    fn labeled(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        Key {
            name,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect(),
        }
    }
}

/// A monotonically-increasing counter handle. Cloning shares the
/// underlying atomic; handles stay valid for the registry's lifetime.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (saturating at `u64::MAX` is not needed for a 64-bit
    /// counter at any realistic rate; plain wrapping add matches
    /// Prometheus client conventions).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raises the counter to `v` if it is currently lower. This mirrors
    /// an *external* monotonic counter (the condition pool's global
    /// hit/miss atomics) into the registry without double counting.
    pub fn sync_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (mutex around the crate's power-of-two
/// [`Histogram`]; observation cost is one uncontended lock).
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one nanosecond sample.
    pub fn observe_ns(&self, ns: u64) {
        self.0
            .lock()
            .expect("telemetry histogram poisoned")
            .record(ns);
    }

    /// Folds a whole pre-aggregated histogram in (e.g. a run's solver
    /// latency histogram at the apply boundary).
    pub fn merge(&self, h: &Histogram) {
        self.0
            .lock()
            .expect("telemetry histogram poisoned")
            .merge(h);
    }

    /// Copy of the current contents.
    pub fn get(&self) -> Histogram {
        *self.0.lock().expect("telemetry histogram poisoned")
    }
}

/// Thread-safe registry of named counters, gauges and histograms.
///
/// Lookup interns the handle on first use; every later lookup of the
/// same `(name, labels)` key returns a clone of the same handle, so
/// hot paths may either cache the handle or re-look it up at boundary
/// frequency (one mutex + `BTreeMap` probe).
#[derive(Debug)]
pub struct Registry {
    start: Instant,
    counters: Mutex<BTreeMap<Key, Counter>>,
    gauges: Mutex<BTreeMap<Key, Gauge>>,
    hists: Mutex<BTreeMap<Key, HistogramHandle>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry whose uptime starts now.
    pub fn new() -> Self {
        Registry {
            start: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
        }
    }

    /// The unlabeled counter `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_key(Key::plain(name))
    }

    /// One member of the labeled counter family `name`.
    pub fn counter_with(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        self.counter_key(Key::labeled(name, labels))
    }

    fn counter_key(&self, key: Key) -> Counter {
        self.counters
            .lock()
            .expect("telemetry registry poisoned")
            .entry(key)
            .or_default()
            .clone()
    }

    /// The unlabeled gauge `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_key(Key::plain(name))
    }

    /// One member of the labeled gauge family `name`.
    pub fn gauge_with(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        self.gauge_key(Key::labeled(name, labels))
    }

    fn gauge_key(&self, key: Key) -> Gauge {
        self.gauges
            .lock()
            .expect("telemetry registry poisoned")
            .entry(key)
            .or_default()
            .clone()
    }

    /// The unlabeled histogram `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> HistogramHandle {
        self.hist_key(Key::plain(name))
    }

    /// One member of the labeled histogram family `name`.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> HistogramHandle {
        self.hist_key(Key::labeled(name, labels))
    }

    fn hist_key(&self, key: Key) -> HistogramHandle {
        self.hists
            .lock()
            .expect("telemetry registry poisoned")
            .entry(key)
            .or_default()
            .clone()
    }

    /// Time since the registry was created.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// A point-in-time copy of every metric, plus the process gauges
    /// (`faure_process_uptime_seconds`, and on Linux the
    /// `/proc/self/status` RSS / peak-RSS / thread-count readings —
    /// the same reader the bench harness's `peak_rss_kb` column uses).
    pub fn snapshot(&self) -> Snapshot {
        let counters: Vec<(Key, u64)> = self
            .counters
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(Key, f64)> = self
            .gauges
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(k, g)| (k.clone(), g.get() as f64))
            .collect();
        let hists: Vec<(Key, Histogram)> = self
            .hists
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.get()))
            .collect();

        gauges.push((
            Key::plain("faure_process_uptime_seconds"),
            self.uptime().as_secs_f64(),
        ));
        if let Some(kb) = proc_status_field("VmRSS:") {
            gauges.push((Key::plain("faure_process_rss_kb"), kb as f64));
        }
        if let Some(kb) = proc_status_field("VmHWM:") {
            gauges.push((Key::plain("faure_process_peak_rss_kb"), kb as f64));
        }
        if let Some(n) = proc_status_field("Threads:") {
            gauges.push((Key::plain("faure_process_threads"), n as f64));
        }
        gauges.sort_by(|a, b| a.0.cmp(&b.0));

        Snapshot {
            uptime: self.uptime(),
            counters,
            gauges,
            hists,
        }
    }
}

/// A point-in-time copy of a [`Registry`]'s metrics, ordered by key.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Registry uptime at snapshot time.
    pub uptime: Duration,
    /// Cumulative counters.
    pub counters: Vec<(Key, u64)>,
    /// Instantaneous gauges (process gauges included).
    pub gauges: Vec<(Key, f64)>,
    /// Histograms.
    pub hists: Vec<(Key, Histogram)>,
}

impl Snapshot {
    /// Counter/histogram movement since `earlier` (an older snapshot of
    /// the same registry): counters and histogram buckets subtract,
    /// gauges keep their current (instantaneous) values. Metrics that
    /// did not exist at `earlier` keep their full value.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let base_c: BTreeMap<&Key, u64> = earlier.counters.iter().map(|(k, v)| (k, *v)).collect();
        let base_h: BTreeMap<&Key, &Histogram> =
            earlier.hists.iter().map(|(k, h)| (k, h)).collect();
        Snapshot {
            uptime: self.uptime,
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(base_c.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| {
                    let d = match base_h.get(k) {
                        Some(b) => h.since(b),
                        None => *h,
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Total of counter `name` across all label sets (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Value of the unlabeled gauge `name`, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && k.labels.is_empty())
            .map(|(_, v)| *v)
    }
}

/// Reads one `kB`/count field out of `/proc/self/status` (e.g.
/// `VmRSS:`, `VmHWM:`, `Threads:`). Returns `None` off Linux or when
/// the field is absent — process gauges simply disappear from the
/// exposition rather than reporting zeros.
pub fn proc_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`),
/// `None` when unavailable. The bench harness's `peak_rss_kb` column
/// reads through this.
pub fn peak_rss_kb() -> Option<u64> {
    proc_status_field("VmHWM:")
}

/// The process-global registry every pipeline boundary publishes into.
/// Global on purpose: the scrape endpoint and the JSONL writer must
/// see counters from *every* evaluation in the process, exactly like
/// the condition pool's hit/miss counters. Created on first use;
/// uptime is measured from that first use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let reg = Registry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x_total").get(), 4);
        assert_eq!(reg.snapshot().counter("x_total"), 4);
    }

    #[test]
    fn labeled_families_are_distinct_members() {
        let reg = Registry::new();
        reg.counter_with("y_total", &[("mode", "append")]).add(2);
        reg.counter_with("y_total", &[("mode", "counting")]).add(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("y_total"), 7);
        let member = snap
            .counters
            .iter()
            .find(|(k, _)| k.labels == vec![("mode", "counting".to_owned())])
            .unwrap();
        assert_eq!(member.1, 5);
    }

    #[test]
    fn sync_to_mirrors_external_monotonic_counters() {
        let reg = Registry::new();
        let c = reg.counter("pool_total");
        c.sync_to(10);
        c.sync_to(7); // stale mirror write must not regress
        assert_eq!(c.get(), 10);
        c.sync_to(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn snapshot_since_subtracts_counters_and_hists() {
        let reg = Registry::new();
        reg.counter("c_total").add(5);
        reg.histogram("h_ns").observe_ns(100);
        let s1 = reg.snapshot();
        reg.counter("c_total").add(2);
        reg.histogram("h_ns").observe_ns(100);
        reg.gauge("g").set(9);
        let s2 = reg.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.counter("c_total"), 2);
        assert_eq!(d.gauge("g"), Some(9.0));
        let h = &d.hists.iter().find(|(k, _)| k.name == "h_ns").unwrap().1;
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_carries_process_gauges() {
        let reg = Registry::new();
        let snap = reg.snapshot();
        assert!(snap.gauge("faure_process_uptime_seconds").is_some());
        // On Linux the /proc reader must agree with itself.
        if let Some(kb) = snap.gauge("faure_process_peak_rss_kb") {
            assert!(kb > 0.0);
            assert!(peak_rss_kb().is_some());
        }
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(4);
        g.add(-6);
        assert_eq!(g.get(), -2);
    }
}
