//! Fixpoint drivers: stratified naive and semi-naive iteration.
//!
//! Each rule pass yields its derived rows as ordered partitions (one
//! per worker under parallel evaluation, a single partition serially);
//! the drivers replay the partitions through
//! [`Table::absorb_partitions`] in order, so the merged table — and
//! therefore every later iteration — is independent of the thread
//! count.

use super::rule::eval_rule;
use super::{Ctx, EvalError, EvalOptions, PrunePolicy};
use crate::ast::Rule;
use crate::plan::PlanCache;
use faure_solver::Session;
use faure_storage::{PhaseStats, PreparedRow, Table};
use std::collections::{BTreeSet, HashMap};

#[allow(clippy::too_many_arguments)]
pub(super) fn eval_stratum_semi_naive(
    ctx: &Ctx<'_>,
    rules: &[(usize, &Rule)],
    stratum_preds: &BTreeSet<&str>,
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    // Iteration 0: every rule against the full tables (recursive rules
    // see the — possibly empty — current contents of stratum IDBs).
    let t_iter = ctx.tracer.now_ns();
    let mut delta: HashMap<String, Table> = HashMap::new();
    for &(ri, rule) in rules {
        let plan = plans.get_or_compile(ri, rule, None);
        let derived = eval_rule(
            ctx,
            ri,
            rule,
            plan,
            tables,
            None,
            session,
            opts,
            &mut stats.ops,
        )?;
        merge_derived(rule.head.pred.as_str(), derived, tables, &mut delta)?;
    }
    let delta_rows = record_delta_size(&delta, stats);
    super::publish::publish_iteration(delta_rows);
    ctx.tracer
        .emit_span("fixpoint", "iteration", t_iter, 0, || {
            vec![
                ("iteration", 0usize.into()),
                ("delta_rows", delta_rows.into()),
            ]
        });

    let mut iterations = 0usize;
    while !delta.is_empty() {
        iterations += 1;
        if iterations > opts.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let t_iter = ctx.tracer.now_ns();
        if opts.prune == PrunePolicy::EveryIteration {
            // One span for the whole delta sweep: per-table spans would
            // follow `HashMap` iteration order, which is not
            // deterministic across runs.
            let t_prune = ctx.tracer.now_ns();
            let wall = std::time::Instant::now();
            let mut removed = 0usize;
            let mut rows = 0usize;
            for t in delta.values_mut() {
                rows += t.len();
                removed += if opts.threads > 1 {
                    t.prune_parallel(&ctx.reg_snapshot, session, &ctx.shared_memo, opts.threads)?
                } else {
                    t.prune(&ctx.reg_snapshot, session)?
                };
            }
            stats.prune_wall += wall.elapsed();
            super::publish::publish_prune(rows, removed);
            ctx.tracer.emit_span("eval", "prune", t_prune, 0, || {
                vec![
                    ("pred", "(delta)".into()),
                    ("rows", rows.into()),
                    ("removed", removed.into()),
                    ("threads", opts.threads.into()),
                ]
            });
            delta.retain(|_, t| !t.is_empty());
            if delta.is_empty() {
                break;
            }
        }
        let mut next_delta: HashMap<String, Table> = HashMap::new();
        for &(ri, rule) in rules {
            // One pass per positive body literal whose predicate is in
            // this stratum and has a pending delta. The plan for each
            // (rule, delta slot) is compiled once — later iterations
            // are cache hits that only execute.
            for (pos, lit) in rule.body.iter().enumerate() {
                if lit.is_negative() {
                    continue;
                }
                let p = lit.atom().pred.as_str();
                if !stratum_preds.contains(p) {
                    continue;
                }
                let Some(d) = delta.get(p) else { continue };
                if d.is_empty() {
                    continue;
                }
                let plan = plans.get_or_compile(ri, rule, Some(pos));
                let derived = eval_rule(
                    ctx,
                    ri,
                    rule,
                    plan,
                    tables,
                    Some(d),
                    session,
                    opts,
                    &mut stats.ops,
                )?;
                merge_derived(rule.head.pred.as_str(), derived, tables, &mut next_delta)?;
            }
        }
        delta = next_delta;
        let delta_rows = record_delta_size(&delta, stats);
        super::publish::publish_iteration(delta_rows);
        let iteration = iterations;
        ctx.tracer
            .emit_span("fixpoint", "iteration", t_iter, 0, || {
                vec![
                    ("iteration", iteration.into()),
                    ("delta_rows", delta_rows.into()),
                ]
            });
    }
    Ok(())
}

/// Records the total delta size of a just-finished fixpoint iteration
/// (the empty delta that terminates the loop is not recorded); returns
/// the size.
fn record_delta_size(delta: &HashMap<String, Table>, stats: &mut PhaseStats) -> usize {
    let total: usize = delta.values().map(Table::len).sum();
    if total > 0 {
        stats.delta_sizes.push(total);
    }
    total
}

#[allow(clippy::too_many_arguments)]
pub(super) fn eval_stratum_naive(
    ctx: &Ctx<'_>,
    rules: &[(usize, &Rule)],
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > opts.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let t_iter = ctx.tracer.now_ns();
        let mut changed = false;
        for &(ri, rule) in rules {
            let plan = plans.get_or_compile(ri, rule, None);
            let derived = eval_rule(
                ctx,
                ri,
                rule,
                plan,
                tables,
                None,
                session,
                opts,
                &mut stats.ops,
            )?;
            let table = tables
                .get_mut(rule.head.pred.as_str())
                .expect("table created in setup");
            table.absorb_partitions(derived, |_| changed = true)?;
        }
        let iteration = iterations - 1;
        super::publish::publish_iteration(0);
        ctx.tracer
            .emit_span("fixpoint", "iteration", t_iter, 0, || {
                vec![
                    ("iteration", iteration.into()),
                    ("changed", u64::from(changed).into()),
                ]
            });
        if !changed {
            return Ok(());
        }
    }
}

/// Merges derived partitions into the full table in partition order;
/// changed rows (new terms or new disjunct) are recorded in `delta`
/// carrying only the new disjunct — `insert_prepared` reuses the
/// already-normalised condition, so the delta write costs a hash
/// lookup, not a second DNF pass.
fn merge_derived(
    pred: &str,
    derived: Vec<Vec<PreparedRow>>,
    tables: &mut HashMap<String, Table>,
    delta: &mut HashMap<String, Table>,
) -> Result<(), EvalError> {
    if derived.iter().all(Vec::is_empty) {
        return Ok(());
    }
    let table = tables.get_mut(pred).expect("table created in setup");
    let schema = table.schema.clone();
    table.absorb_partitions(derived, |prow| {
        delta
            .entry(pred.to_owned())
            .or_insert_with(|| Table::new(schema.clone()))
            .insert_prepared(prow)
            .expect("delta schema matches the full table");
    })?;
    Ok(())
}
