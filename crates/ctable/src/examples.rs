//! Ready-made example databases from the paper, used across the test
//! suites, documentation, and the quickstart example.

use crate::condition::Condition;
use crate::cvar::{CVarId, Domain};
use crate::database::Database;
use crate::relation::{CTuple, Schema};
use crate::term::Term;
use crate::value::Const;

/// Handles to the c-variables of the Table 2 database.
#[derive(Clone, Copy, Debug)]
pub struct Table2Vars {
    /// `x̄` — the unknown path of destination `1.2.3.4`.
    pub x: CVarId,
    /// `ȳ` — the unknown destination using path `[ABE]`.
    pub y: CVarId,
}

/// Builds the paper's Table 2 database **PATH′ = {Pⁱ, C}**.
///
/// * `Pⁱ(dest, path)` is a c-table:
///   * `(1.2.3.4, x̄)` with `x̄ = [ABC] ∨ x̄ = [ADEC]`,
///   * `(ȳ, [ABE])` with `ȳ ≠ 1.2.3.4`,
///   * `(1.2.3.6, [ADEC])` with the empty condition.
/// * `C(path, cost)` is a regular table mapping `[ABC]↦3`,
///   `[ADEC]↦4`, `[ABE]↦3`.
///
/// Domains: `x̄ ∈ {[ABC], [ADEC]}`, `ȳ ∈ {1.2.3.4, 1.2.3.5, 1.2.3.6}` —
/// finite so possible worlds can be enumerated in tests.
pub fn table2_path_db() -> (Database, Table2Vars) {
    let abc = Const::path(&["A", "B", "C"]);
    let adec = Const::path(&["A", "D", "E", "C"]);
    let abe = Const::path(&["A", "B", "E"]);

    let mut db = Database::new();
    let x = db.fresh_cvar("x", Domain::Consts(vec![abc.clone(), adec.clone()]));
    let y = db.fresh_cvar(
        "y",
        Domain::Consts(vec![
            Const::sym("1.2.3.4"),
            Const::sym("1.2.3.5"),
            Const::sym("1.2.3.6"),
        ]),
    );

    db.create_relation(Schema::new("P", &["dest", "path"]))
        .expect("fresh database");
    db.insert(
        "P",
        CTuple::with_cond(
            [Term::sym("1.2.3.4"), Term::Var(x)],
            Condition::eq(Term::Var(x), Term::Const(abc.clone()))
                .or(Condition::eq(Term::Var(x), Term::Const(adec.clone()))),
        ),
    )
    .expect("arity 2");
    db.insert(
        "P",
        CTuple::with_cond(
            [Term::Var(y), Term::Const(abe.clone())],
            Condition::ne(Term::Var(y), Term::sym("1.2.3.4")),
        ),
    )
    .expect("arity 2");
    db.insert(
        "P",
        CTuple::new([Term::sym("1.2.3.6"), Term::Const(adec.clone())]),
    )
    .expect("arity 2");

    db.create_relation(Schema::new("C", &["path", "cost"]))
        .expect("fresh database");
    for (path, cost) in [(abc, 3), (adec, 4), (abe, 3)] {
        db.insert("C", CTuple::new([Term::Const(path), Term::int(cost)]))
            .expect("arity 2");
    }

    (db, Table2Vars { x, y })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::all_worlds;

    #[test]
    fn table2_shape() {
        let (db, _) = table2_path_db();
        assert_eq!(db.relation("P").unwrap().len(), 3);
        assert_eq!(db.relation("C").unwrap().len(), 3);
        assert!(db.relation("P").unwrap().is_conditional());
        assert!(!db.relation("C").unwrap().is_conditional());
    }

    #[test]
    fn table2_worlds() {
        let (db, _) = table2_path_db();
        // |dom(x̄)| * |dom(ȳ)| = 2 * 3 = 6 worlds.
        let worlds = all_worlds(&db).unwrap();
        assert_eq!(worlds.len(), 6);
        for w in &worlds {
            let p = w.relation("P").unwrap();
            // Row 2 drops out exactly when ȳ = 1.2.3.4.
            let has_abe_row = p
                .tuples
                .iter()
                .any(|t| t[1] == Const::path(&["A", "B", "E"]));
            let y_is_1234 = w
                .assignment
                .iter()
                .any(|(_, c)| *c == Const::sym("1.2.3.4"));
            assert_eq!(has_abe_row, !y_is_1234);
        }
    }
}
