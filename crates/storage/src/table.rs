//! Indexed c-table storage — columnar layout over interned data.
//!
//! A [`Table`] stores its rows struct-of-arrays: one typed [`Cell`]
//! column per attribute (u32-interned symbols, dense c-var indices,
//! unboxed ints, interned list ids) plus a [`CondId`] condition column
//! backed by the global hash-consed pool (`faure_ctable::pool`). The
//! data phase — index probes, pattern scans, dedup — then works on
//! `Copy` cells in contiguous vectors instead of cloning and re-hashing
//! `Vec<Term>` tuples, and row-condition equality is a `u32` compare.
//!
//! Cell encoding is injective ([`Cell`] distinguishes `Int(1)` from
//! `Sym("1")` from `List([1])`), so keying the dedup index directly on
//! the encoded row (`Box<[Cell]>`) replaces the old hash-bucket scheme
//! that had to verify candidates against the actual rows on every
//! lookup to stay collision-safe.

use faure_ctable::pool::{self, CondId};
use faure_ctable::{
    CTuple, CVarId, CVarRegistry, Condition, Const, Relation, Schema, Symbol, Term,
};
use faure_solver::{Session, SolverError};
use std::collections::HashMap;
use std::fmt;

/// A tuple's arity disagrees with the table schema.
///
/// Inserting used to `assert_eq!` on arity; a serving process must not
/// abort on malformed input, so the mismatch is now a typed error the
/// evaluation engine propagates (as `EvalError::ArityMismatch`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArityError {
    /// Name of the table whose schema was violated.
    pub table: String,
    /// Arity of the table schema.
    pub expected: usize,
    /// Arity of the offending tuple.
    pub got: usize,
}

impl fmt::Display for ArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuple of arity {} inserted into table {} of arity {}",
            self.got, self.table, self.expected
        )
    }
}

impl std::error::Error for ArityError {}

/// One columnar storage cell: the fully-interned, `Copy` encoding of a
/// [`Term`]. The encoding is injective — decoding always recovers a
/// structurally equal term — so cell equality *is* term equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cell {
    /// An integer constant, unboxed.
    Int(i64),
    /// An interned symbolic constant.
    Sym(Symbol),
    /// An interned list constant (see [`pool::intern_list`]).
    List(pool::ListId),
    /// A c-variable (dense registry index).
    Var(CVarId),
}

impl Cell {
    /// Encodes a term (interning list payloads).
    pub fn encode(term: &Term) -> Cell {
        match term {
            Term::Const(c) => Cell::encode_const(c),
            Term::Var(v) => Cell::Var(*v),
        }
    }

    /// Encodes a constant.
    pub fn encode_const(c: &Const) -> Cell {
        match c {
            Const::Int(v) => Cell::Int(*v),
            Const::Sym(s) => Cell::Sym(*s),
            Const::List(items) => Cell::List(pool::intern_list(items)),
        }
    }

    /// Decodes back to a term (O(1); list payloads are Arc clones).
    pub fn decode(self) -> Term {
        match self {
            Cell::Int(v) => Term::Const(Const::Int(v)),
            Cell::Sym(s) => Term::Const(Const::Sym(s)),
            Cell::List(id) => Term::Const(Const::List(pool::resolve_list(id))),
            Cell::Var(v) => Term::Var(v),
        }
    }

    /// Decodes a constant cell; `None` for c-variable cells.
    pub fn decode_const(self) -> Option<Const> {
        match self {
            Cell::Int(v) => Some(Const::Int(v)),
            Cell::Sym(s) => Some(Const::Sym(s)),
            Cell::List(id) => Some(Const::List(pool::resolve_list(id))),
            Cell::Var(_) => None,
        }
    }

    /// The c-variable, if this is a variable cell.
    pub fn as_var(self) -> Option<CVarId> {
        match self {
            Cell::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// A per-column pattern used for indexed matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Matches any cell, unconditionally.
    Any,
    /// Matches a specific c-domain term.
    ///
    /// * constant vs equal constant — matches with no condition;
    /// * constant vs different constant — no match;
    /// * constant `c` vs c-variable cell `v̄` — matches with condition
    ///   `v̄ = c` (skipped outright if `c` is outside `v̄`'s domain);
    /// * c-variable `ū` vs constant cell `d` — matches with `ū = d`;
    /// * c-variable `ū` vs c-variable cell `v̄` — matches with `ū = v̄`
    ///   (no condition when they are the same variable).
    Exact(Term),
}

/// Result of inserting a tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// No row with these terms existed; a new row was added.
    New,
    /// A row with these terms existed and its condition gained a new
    /// disjunct.
    Merged,
    /// A row with these terms and this exact condition disjunct already
    /// existed; nothing changed.
    Unchanged,
}

impl InsertOutcome {
    /// Whether the insert changed the table contents.
    pub fn changed(self) -> bool {
        !matches!(self, InsertOutcome::Unchanged)
    }
}

/// One typed attribute column plus its probe indexes.
#[derive(Clone, Debug, Default)]
struct Column {
    /// The cell of every row, in row order (struct-of-arrays).
    cells: Vec<Cell>,
    /// Rows whose cell in this column is the given constant.
    by_const: HashMap<Cell, Vec<u32>>,
    /// Rows whose cell in this column is a c-variable (they
    /// conditionally match any constant).
    var_rows: Vec<u32>,
}

/// A derived row whose condition has been pre-normalised and whose
/// terms and condition have been pre-interned for insertion.
///
/// Building one runs the DNF normalisation that [`Table::insert`] would
/// otherwise perform at merge time — the most expensive part of adding
/// a row — plus the cell encoding and condition-pool interning the
/// columnar table needs. Parallel evaluation constructs `PreparedRow`s
/// inside worker threads so the serialised merge
/// ([`Table::absorb_partitions`]) is reduced to hash lookups on
/// interned data, `Copy` cell appends, and antichain merges — no term
/// clones, no tree re-hashing.
#[derive(Clone, Debug)]
pub struct PreparedRow {
    tuple: CTuple,
    /// Encoded cells of `tuple.terms`.
    cells: Box<[Cell]>,
    /// `tuple.cond` interned into the global pool.
    cond_id: CondId,
    /// Minimal-DNF disjuncts of the condition, or `None` when it is too
    /// large to normalise within budget (the table then stores it in
    /// the opaque representation).
    sets: Option<Vec<crate::dnf::AtomSet>>,
}

impl PreparedRow {
    /// Normalises `tuple`'s condition (the caller should have
    /// structurally simplified it, as with [`Table::insert`]) and
    /// interns its terms and condition.
    pub fn new(tuple: CTuple) -> Self {
        let sets = if tuple.cond == Condition::False {
            Some(Vec::new())
        } else {
            crate::dnf::to_min_dnf(&tuple.cond, crate::dnf::DEFAULT_SET_BUDGET)
        };
        let cells = tuple.terms.iter().map(Cell::encode).collect();
        let cond_id = pool::intern(&tuple.cond);
        PreparedRow {
            tuple,
            cells,
            cond_id,
            sets,
        }
    }

    /// The row's terms.
    pub fn terms(&self) -> &[Term] {
        &self.tuple.terms
    }

    /// The row's encoded cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The row's (un-normalised) condition.
    pub fn cond(&self) -> &Condition {
        &self.tuple.cond
    }

    /// The pooled id of the row's condition.
    pub fn cond_id(&self) -> CondId {
        self.cond_id
    }

    /// The underlying tuple.
    pub fn tuple(&self) -> &CTuple {
        &self.tuple
    }

    /// Whether the condition normalised to false (the row can never be
    /// inserted).
    pub fn is_false(&self) -> bool {
        self.sets.as_ref().is_some_and(Vec::is_empty)
    }
}

/// Per-row condition bookkeeping.
#[derive(Clone, Debug)]
enum CondRepr {
    /// Minimal antichain of atom-sets (see [`crate::dnf`]): disjuncts
    /// subsumed by smaller disjuncts are dropped on insert, which keeps
    /// fixpoints over cyclic graphs polynomial instead of enumerating
    /// every walk.
    Sets(Vec<crate::dnf::AtomSet>),
    /// Fallback for conditions too large to normalise: pooled disjunct
    /// ids with O(1) equality-based deduplication.
    Opaque(Vec<CondId>),
}

/// An indexed, columnar c-table.
///
/// Rows are deduplicated **by their terms**: deriving the same tuple
/// again under a different condition extends the existing row's
/// condition with a disjunct (`φ₁ ∨ φ₂ ∨ …`). Disjuncts are kept
/// *minimal* (an antichain under implication-by-inclusion) whenever the
/// condition normalises to small DNF, which both keeps conditions
/// readable and guarantees fast fixpoint convergence; otherwise pooled
/// structural deduplication applies. Either way the disjunct space over
/// a finite atom vocabulary is finite, so fixpoints terminate.
///
/// Row conditions are stored as [`CondId`]s; [`Table::row`] and
/// [`Table::iter`] materialise owned [`CTuple`]s on demand (condition
/// trees are O(1) Arc clones out of the pool, and materialised rows are
/// bit-identical to what the old row-major table stored).
#[derive(Clone, Debug)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    /// One typed column per attribute.
    cols: Vec<Column>,
    /// Pooled condition per row.
    conds: Vec<CondId>,
    /// Condition bookkeeping per row.
    reprs: Vec<CondRepr>,
    /// Dedup index keyed **directly** on the encoded row cells. Cell
    /// encoding is injective and fully interned, so equal keys are
    /// equal term vectors by construction — no collision buckets, no
    /// re-verification against the stored rows.
    by_terms: HashMap<Box<[Cell]>, u32>,
    /// Support count per row: how many insertion events (new row,
    /// merged disjunct, or duplicate derivation) have landed on it.
    /// Semi-naive passes can enumerate the same derivation more than
    /// once, so this is an upper bound on the number of distinct
    /// derivations — incremental maintenance uses it as a fast
    /// "does anything even support this row" gate, never as an exact
    /// count to delete by.
    support: Vec<u64>,
}

/// What a [`Table::delete_where`] pass did to the table, in terms of
/// the *old* row versions: rows dropped outright (the deletion
/// condition μ was `True`) and rows whose condition was weakened to
/// `ψ ∧ ¬μ` (their pre-weakening version is reported, since that is
/// what downstream derivations were computed from).
#[derive(Clone, Debug, Default)]
pub struct DeletionEffect {
    /// Rows removed from the table (old version).
    pub removed: Vec<CTuple>,
    /// Rows kept with a weakened condition (old version). A weakened
    /// row whose new condition collapses to `False` appears in
    /// `removed` instead.
    pub weakened: Vec<CTuple>,
}

impl DeletionEffect {
    /// Whether the pass changed anything.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.weakened.is_empty()
    }
}

impl Table {
    /// An empty table.
    pub fn new(schema: Schema) -> Self {
        let cols = (0..schema.arity()).map(|_| Column::default()).collect();
        Table {
            schema,
            cols,
            conds: Vec::new(),
            reprs: Vec::new(),
            by_terms: HashMap::new(),
            support: Vec::new(),
        }
    }

    /// Builds a table from a plain relation (deduplicating rows).
    pub fn from_relation(rel: &Relation) -> Self {
        let mut t = Table::new(rel.schema.clone());
        for row in rel.iter() {
            t.insert(row.clone())
                .expect("relation rows match their own schema arity");
        }
        t
    }

    /// Converts to a plain relation, materialising each row once.
    pub fn to_relation(&self) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self.iter().collect(),
        }
    }

    /// Consuming export: like [`to_relation`](Table::to_relation) but
    /// reuses the schema allocation and drops the indexes in place.
    pub fn into_relation(self) -> Relation {
        let tuples = (0..self.len()).map(|i| self.row(i)).collect();
        Relation {
            schema: self.schema,
            tuples,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.conds.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.conds.is_empty()
    }

    /// Materialises one row as an owned [`CTuple`]. The condition is an
    /// O(1) Arc clone out of the pool; terms decode cell-by-cell.
    pub fn row(&self, idx: usize) -> CTuple {
        CTuple {
            terms: self.cols.iter().map(|c| c.cells[idx].decode()).collect(),
            cond: pool::resolve(self.conds[idx]),
        }
    }

    /// One row's condition (O(1) pool resolve; avoids materialising
    /// the terms on condition-only paths like the join inner loop).
    pub fn cond(&self, idx: usize) -> Condition {
        pool::resolve(self.conds[idx])
    }

    /// One row's pooled condition id.
    pub fn cond_id(&self, idx: usize) -> CondId {
        self.conds[idx]
    }

    /// One cell, decoded (column-major access: `col` then `idx`).
    pub fn term(&self, idx: usize, col: usize) -> Term {
        self.cols[col].cells[idx].decode()
    }

    /// One cell, raw.
    pub fn cell(&self, idx: usize, col: usize) -> Cell {
        self.cols[col].cells[idx]
    }

    /// Iterates over all rows, materialising each once.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = CTuple> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// Inserts a tuple, deduplicating by terms and merging conditions.
    ///
    /// The tuple's condition should be structurally simplified by the
    /// caller (the evaluation engine does); `Condition::False` rows are
    /// rejected outright, as are rows whose condition normalises to the
    /// empty DNF. A tuple whose arity disagrees with the schema is a
    /// typed [`ArityError`], not a panic.
    pub fn insert(&mut self, tuple: CTuple) -> Result<InsertOutcome, ArityError> {
        self.insert_prepared(&PreparedRow::new(tuple))
    }

    /// Inserts a pre-normalised row (see [`PreparedRow`]) — the
    /// normalisation-free half of [`insert`](Table::insert), used when
    /// the DNF and interning work already happened elsewhere (e.g. in a
    /// parallel worker, or when the same derived row also feeds a delta
    /// table).
    pub fn insert_prepared(&mut self, row: &PreparedRow) -> Result<InsertOutcome, ArityError> {
        if row.cells.len() != self.schema.arity() {
            return Err(ArityError {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.cells.len(),
            });
        }
        if row.cond_id == CondId::FALSE || row.is_false() {
            return Ok(InsertOutcome::Unchanged);
        }
        match self.by_terms.get(&row.cells).copied() {
            Some(idx) => {
                let idx = idx as usize;
                self.support[idx] = self.support[idx].saturating_add(1);
                Ok(Self::merge_into_row(
                    &mut self.conds[idx],
                    &mut self.reprs[idx],
                    row.cond_id,
                    row.sets.clone(),
                ))
            }
            None => {
                let idx = u32::try_from(self.conds.len()).expect("row count overflow");
                self.by_terms.insert(row.cells.clone(), idx);
                for (col, &cell) in self.cols.iter_mut().zip(row.cells.iter()) {
                    col.cells.push(cell);
                    match cell {
                        Cell::Var(_) => col.var_rows.push(idx),
                        c => col.by_const.entry(c).or_default().push(idx),
                    }
                }
                let (repr, cond) = match row.sets.clone() {
                    Some(sets) => {
                        let cond = pool::intern(&crate::dnf::condition_of(&sets));
                        (CondRepr::Sets(sets), cond)
                    }
                    None => (CondRepr::Opaque(vec![row.cond_id]), row.cond_id),
                };
                self.reprs.push(repr);
                self.conds.push(cond);
                self.support.push(1);
                Ok(InsertOutcome::New)
            }
        }
    }

    /// Partitioned build: merges per-worker result partitions in
    /// **stable partition order** (partition 0 first, then 1, …, and
    /// within each partition in vector order).
    ///
    /// Because parallel evaluation partitions the serial enumeration
    /// into contiguous chunks, replaying the chunks in order makes the
    /// insert sequence — and therefore every merged condition —
    /// bit-identical to a serial run. `on_changed` fires for each row
    /// that changed the table (new terms or a new condition disjunct),
    /// in that same deterministic order; the engine uses it to record
    /// semi-naive deltas.
    pub fn absorb_partitions(
        &mut self,
        partitions: Vec<Vec<PreparedRow>>,
        mut on_changed: impl FnMut(&PreparedRow),
    ) -> Result<(), ArityError> {
        for part in partitions {
            for prow in &part {
                if self.insert_prepared(prow)?.changed() {
                    on_changed(prow);
                }
            }
        }
        Ok(())
    }

    /// Merges an incoming condition into an existing row's disjunction.
    ///
    /// Computes the same condition *trees* as the old row-major table
    /// (pooled `disj` mirrors [`Condition::or`] exactly), then stores
    /// their ids — so materialised rows stay bit-identical.
    fn merge_into_row(
        cond: &mut CondId,
        repr: &mut CondRepr,
        incoming_id: CondId,
        incoming_sets: Option<Vec<crate::dnf::AtomSet>>,
    ) -> InsertOutcome {
        if *cond == CondId::TRUE {
            return InsertOutcome::Unchanged;
        }
        match (&mut *repr, incoming_sets) {
            (CondRepr::Sets(existing), Some(new_sets)) => {
                let mut changed = false;
                for set in new_sets {
                    if crate::dnf::antichain_insert(existing, set) {
                        changed = true;
                    }
                }
                if changed {
                    *cond = pool::intern(&crate::dnf::condition_of(existing));
                    InsertOutcome::Merged
                } else {
                    InsertOutcome::Unchanged
                }
            }
            (CondRepr::Sets(existing), None) => {
                // Degrade to the opaque representation.
                let disjuncts: Vec<CondId> = existing
                    .iter()
                    .map(|s| pool::intern(&crate::dnf::condition_of(std::slice::from_ref(s))))
                    .collect();
                if disjuncts.contains(&incoming_id) {
                    *repr = CondRepr::Opaque(disjuncts);
                    return InsertOutcome::Unchanged;
                }
                // `Condition::any` over the disjunct trees, id-wise.
                let folded = disjuncts
                    .iter()
                    .fold(CondId::FALSE, |acc, &d| pool::disj(acc, d));
                *cond = pool::disj(folded, incoming_id);
                let mut disjuncts = disjuncts;
                disjuncts.push(incoming_id);
                *repr = CondRepr::Opaque(disjuncts);
                InsertOutcome::Merged
            }
            (CondRepr::Opaque(disjuncts), maybe_sets) => {
                let incoming = match maybe_sets {
                    Some(sets) => pool::intern(&crate::dnf::condition_of(&sets)),
                    None => incoming_id,
                };
                if incoming == CondId::TRUE {
                    *cond = CondId::TRUE;
                    *disjuncts = vec![CondId::TRUE];
                    return InsertOutcome::Merged;
                }
                if disjuncts.contains(&incoming) {
                    return InsertOutcome::Unchanged;
                }
                disjuncts.push(incoming);
                *cond = pool::disj(*cond, incoming);
                InsertOutcome::Merged
            }
        }
    }

    /// Candidate row indices for a pattern on one column (index probe).
    fn candidates_for(&self, col: usize, pat: &Pattern) -> Option<Vec<u32>> {
        match pat {
            Pattern::Any | Pattern::Exact(Term::Var(_)) => None,
            Pattern::Exact(Term::Const(c)) => {
                let ci = &self.cols[col];
                let mut v: Vec<u32> = ci
                    .by_const
                    .get(&Cell::encode_const(c))
                    .cloned()
                    .unwrap_or_default();
                v.extend_from_slice(&ci.var_rows);
                Some(v)
            }
        }
    }

    /// Matches a row against per-column patterns, producing the match
    /// condition `μ`, or `None` if the row cannot match.
    ///
    /// The row's own condition is **not** included; callers conjoin it.
    pub fn match_row(reg: &CVarRegistry, row: &CTuple, pats: &[Pattern]) -> Option<Condition> {
        debug_assert_eq!(row.arity(), pats.len());
        let mut cond = Condition::True;
        for (term, pat) in row.terms.iter().zip(pats) {
            match pat {
                Pattern::Any => {}
                Pattern::Exact(p) => match (p, term) {
                    (Term::Const(a), Term::Const(b)) => {
                        if a != b {
                            return None;
                        }
                    }
                    (Term::Const(c), Term::Var(v)) => {
                        if !reg.domain(*v).contains(c) {
                            return None;
                        }
                        cond = cond.and(Condition::eq(Term::Var(*v), Term::Const(c.clone())));
                    }
                    (Term::Var(u), Term::Const(d)) => {
                        if !reg.domain(*u).contains(d) {
                            return None;
                        }
                        cond = cond.and(Condition::eq(Term::Var(*u), Term::Const(d.clone())));
                    }
                    (Term::Var(u), Term::Var(v)) => {
                        if u != v {
                            cond = cond.and(Condition::eq(Term::Var(*u), Term::Var(*v)));
                        }
                    }
                },
            }
        }
        Some(cond)
    }

    /// Columnar [`match_row`](Table::match_row): same four cases and
    /// the same μ construction order, but reading `Copy` cells straight
    /// out of the column vectors instead of materialising a tuple.
    fn match_cells(&self, reg: &CVarRegistry, idx: u32, pats: &[Pattern]) -> Option<Condition> {
        let mut cond = Condition::True;
        for (col, pat) in self.cols.iter().zip(pats) {
            let cell = col.cells[idx as usize];
            match pat {
                Pattern::Any => {}
                Pattern::Exact(p) => match (p, cell) {
                    (Term::Const(c), Cell::Var(v)) => {
                        if !reg.domain(v).contains(c) {
                            return None;
                        }
                        cond = cond.and(Condition::eq(Term::Var(v), Term::Const(c.clone())));
                    }
                    (Term::Const(a), cell) => {
                        if Cell::encode_const(a) != cell {
                            return None;
                        }
                    }
                    (Term::Var(u), Cell::Var(v)) => {
                        if *u != v {
                            cond = cond.and(Condition::eq(Term::Var(*u), Term::Var(v)));
                        }
                    }
                    (Term::Var(u), cell) => {
                        let d = cell.decode_const().expect("non-var cell decodes to const");
                        if !reg.domain(*u).contains(&d) {
                            return None;
                        }
                        cond = cond.and(Condition::eq(Term::Var(*u), Term::Const(d)));
                    }
                },
            }
        }
        Some(cond)
    }

    /// Finds all rows matching the per-column patterns. Returns
    /// `(row index, match condition μ)` pairs. Uses the most selective
    /// constant column as the index probe.
    pub fn find_matches(&self, reg: &CVarRegistry, pats: &[Pattern]) -> Vec<(usize, Condition)> {
        assert_eq!(pats.len(), self.schema.arity(), "pattern arity mismatch");
        // Pick the constant column with the fewest candidates.
        let mut best: Option<Vec<u32>> = None;
        for (col, pat) in pats.iter().enumerate() {
            if let Some(cands) = self.candidates_for(col, pat) {
                if best.as_ref().is_none_or(|b| cands.len() < b.len()) {
                    best = Some(cands);
                }
            }
        }
        let mut out = Vec::new();
        match best {
            Some(cands) => {
                for idx in cands {
                    if let Some(mu) = self.match_cells(reg, idx, pats) {
                        out.push((idx as usize, mu));
                    }
                }
            }
            None => {
                for idx in 0..self.len() as u32 {
                    if let Some(mu) = self.match_cells(reg, idx, pats) {
                        out.push((idx as usize, mu));
                    }
                }
            }
        }
        out
    }

    /// The c-table negation condition for a candidate tuple `terms`:
    ///
    /// ```text
    /// ⋀ over matching rows r:  ¬(ψ_r ∧ μ(terms, r))
    /// ```
    ///
    /// i.e. the condition under which `terms` is **not** derivable from
    /// this table. This is the "not derivable from the c-table"
    /// semantics the paper adopts for negation.
    pub fn negation_condition(&self, reg: &CVarRegistry, terms: &[Term]) -> Condition {
        let pats: Vec<Pattern> = terms.iter().map(|t| Pattern::Exact(t.clone())).collect();
        let mut cond = Condition::True;
        for (idx, mu) in self.find_matches(reg, &pats) {
            let psi = self.cond(idx);
            cond = cond.and(psi.and(mu).negate());
            if cond == Condition::False {
                break;
            }
        }
        cond
    }

    /// Solver phase: removes rows with unsatisfiable conditions and
    /// simplifies the remaining ones. Returns the number of rows
    /// removed. Indexes are rebuilt if any row is dropped.
    ///
    /// Rows in the antichain representation are pruned **per disjunct**
    /// (each disjunct is a plain conjunction — a single theory query);
    /// opaque rows go through the budget-guarded whole-condition
    /// simplification.
    pub fn prune(
        &mut self,
        reg: &CVarRegistry,
        session: &mut Session,
    ) -> Result<usize, SolverError> {
        let work = self.take_rows();
        let mut kept_rows = Vec::with_capacity(work.len());
        let mut removed = 0usize;
        for (row, repr) in work {
            match Self::prune_row(reg, session, row, repr)? {
                Some(kept) => kept_rows.push(kept),
                None => removed += 1,
            }
        }
        self.rebuild_from(kept_rows);
        Ok(removed)
    }

    /// Drains the table into `(materialised row, repr)` work items,
    /// leaving it empty (columns and indexes cleared).
    fn take_rows(&mut self) -> Vec<(CTuple, CondRepr)> {
        let rows: Vec<CTuple> = self.iter().collect();
        let reprs = std::mem::take(&mut self.reprs);
        self.conds.clear();
        self.by_terms.clear();
        self.support.clear();
        for c in &mut self.cols {
            c.cells.clear();
            c.by_const.clear();
            c.var_rows.clear();
        }
        rows.into_iter().zip(reprs).collect()
    }

    /// Prunes one row: `None` if its condition is unsatisfiable,
    /// otherwise the row with its condition simplified. This is the
    /// unit of work shared by [`prune`](Table::prune) and
    /// [`prune_parallel`](Table::prune_parallel) — a deterministic
    /// function of the row (solver results are ground truth), which is
    /// what makes the parallel split bit-identical to the serial walk.
    fn prune_row(
        reg: &CVarRegistry,
        session: &mut Session,
        row: CTuple,
        repr: CondRepr,
    ) -> Result<Option<CTuple>, SolverError> {
        let simplified = match repr {
            CondRepr::Sets(sets) => {
                let mut live = Vec::with_capacity(sets.len());
                for set in sets {
                    let conj = crate::dnf::condition_of(std::slice::from_ref(&set));
                    if session.satisfiable(reg, &conj)? {
                        live.push(set);
                    }
                }
                let cond = crate::dnf::condition_of(&live);
                if cond == Condition::False {
                    Condition::False
                } else if cond.size() <= 128 {
                    // Small survivor: also detect validity (e.g.
                    // {x̄=0} ∨ {x̄=1} over {0,1} → empty condition).
                    session.simplify_pruned(reg, &cond)?
                } else {
                    cond
                }
            }
            CondRepr::Opaque(_) => session.simplify_pruned(reg, &row.cond)?,
        };
        Ok(if simplified == Condition::False {
            None
        } else {
            Some(CTuple {
                terms: row.terms,
                cond: simplified,
            })
        })
    }

    /// Parallel variant of [`prune`](Table::prune): splits the rows
    /// into contiguous chunks across `threads` scoped workers, each
    /// running its own [`Session`] over the shared lock-sharded `memo`,
    /// then merges the kept-row lists **in partition order** — the same
    /// determinism recipe as [`absorb_partitions`](Table::absorb_partitions),
    /// so the resulting table is bit-identical to the serial walk.
    ///
    /// Per-worker [`faure_solver::SolverStats`] (including latency
    /// histograms) are folded into `session` in chunk order; the
    /// deterministic counters (`sat_calls`, `sat_true`,
    /// `simplify_calls`, hit+miss total) match serial, only the
    /// hit/miss *split* depends on scheduling.
    ///
    /// Falls back to the serial walk when `threads <= 1` or the table
    /// has fewer than two rows.
    pub fn prune_parallel(
        &mut self,
        reg: &CVarRegistry,
        session: &mut Session,
        memo: &std::sync::Arc<faure_solver::SharedMemo>,
        threads: usize,
    ) -> Result<usize, SolverError> {
        if threads <= 1 || self.len() < 2 {
            return self.prune(reg, session);
        }
        let work = self.take_rows();
        let workers = threads.min(work.len());
        // Balanced contiguous split: the first `extra` chunks get one
        // extra row.
        let base = work.len() / workers;
        let extra = work.len() % workers;
        let mut chunks: Vec<Vec<(CTuple, CondRepr)>> = Vec::with_capacity(workers);
        let mut it = work.into_iter();
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            chunks.push(it.by_ref().take(take).collect());
        }
        type ChunkOut = Result<(Vec<CTuple>, usize), SolverError>;
        let results: Vec<(ChunkOut, faure_solver::SolverStats)> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut worker = Session::with_shared(std::sync::Arc::clone(memo));
                        let mut kept = Vec::with_capacity(chunk.len());
                        let mut removed = 0usize;
                        let mut out: ChunkOut = Ok((Vec::new(), 0));
                        for (row, repr) in chunk {
                            match Self::prune_row(reg, &mut worker, row, repr) {
                                Ok(Some(row)) => kept.push(row),
                                Ok(None) => removed += 1,
                                Err(e) => {
                                    out = Err(e);
                                    break;
                                }
                            }
                        }
                        if out.is_ok() {
                            out = Ok((kept, removed));
                        }
                        (out, worker.stats())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prune worker panicked"))
                .collect()
        });
        let mut kept_rows = Vec::new();
        let mut removed = 0usize;
        let mut first_err = None;
        for (out, stats) in results {
            session.absorb_stats(&stats);
            match out {
                Ok((kept, n)) => {
                    kept_rows.extend(kept);
                    removed += n;
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        self.rebuild_from(kept_rows);
        Ok(removed)
    }

    fn rebuild_from(&mut self, rows: Vec<CTuple>) {
        for row in rows {
            self.insert(row)
                .expect("rebuilt rows came from this table and match its arity");
        }
    }

    /// The row index holding exactly these terms, if present (O(1)
    /// dedup-index lookup on the injective cell encoding).
    pub fn find_row(&self, terms: &[Term]) -> Option<usize> {
        let cells: Box<[Cell]> = terms.iter().map(Cell::encode).collect();
        self.by_terms.get(&cells).map(|&i| i as usize)
    }

    /// The support count of one row (see the field doc: an upper bound
    /// on distinct derivations, for gating — not for exact deletion).
    pub fn support(&self, idx: usize) -> u64 {
        self.support[idx]
    }

    /// Whether row `idx` stores its condition as a minimal-DNF
    /// antichain (the `Sets` representation). Incremental maintenance
    /// only certifies a merged row as "pure antichain append" — safe to
    /// propagate upward as just its new disjuncts — when this holds;
    /// opaque conditions fall back to delete-and-reinsert propagation.
    pub fn has_sets_repr(&self, idx: usize) -> bool {
        matches!(self.reprs[idx], CondRepr::Sets(_))
    }

    /// Whether any row stores a c-variable in a *cell* (conditions may
    /// still mention c-variables freely). Join results over var-free
    /// cells are independent of the plan's literal order — bindings
    /// never chain through a c-variable, so every match condition is a
    /// ground comparison that folds on the spot. Incremental
    /// maintenance uses this as the gate for in-place delta
    /// propagation; tables with var cells fall back to stratum
    /// recomputation to stay bit-identical with batch evaluation.
    pub fn has_var_cells(&self) -> bool {
        self.cols.iter().any(|c| !c.var_rows.is_empty())
    }

    /// Removes the rows at `indices` (duplicates and any order are
    /// fine), returning the removed rows materialised in index order.
    ///
    /// Columnar removal: the surviving cells, conditions, reprs and
    /// support counts are compacted in place — **no re-normalisation**,
    /// so surviving rows keep their exact condition representation —
    /// and the probe/dedup indexes are rebuilt.
    pub fn remove_rows(&mut self, indices: &[usize]) -> Vec<CTuple> {
        if indices.is_empty() {
            return Vec::new();
        }
        let mut kill = vec![false; self.len()];
        for &i in indices {
            kill[i] = true;
        }
        let removed: Vec<CTuple> = (0..self.len())
            .filter(|&i| kill[i])
            .map(|i| self.row(i))
            .collect();
        if removed.is_empty() {
            return removed;
        }
        fn keep<T>(v: &mut Vec<T>, kill: &[bool]) {
            let mut w = 0usize;
            for (r, &dead) in kill.iter().enumerate() {
                if !dead {
                    v.swap(w, r);
                    w += 1;
                }
            }
            v.truncate(w);
        }
        for col in &mut self.cols {
            keep(&mut col.cells, &kill);
        }
        keep(&mut self.conds, &kill);
        keep(&mut self.reprs, &kill);
        keep(&mut self.support, &kill);
        self.reindex();
        removed
    }

    /// Rebuilds the probe and dedup indexes from the column vectors.
    fn reindex(&mut self) {
        self.by_terms.clear();
        for col in &mut self.cols {
            col.by_const.clear();
            col.var_rows.clear();
        }
        for idx in 0..self.conds.len() {
            let idx32 = idx as u32;
            let cells: Box<[Cell]> = self.cols.iter().map(|c| c.cells[idx]).collect();
            for (col, &cell) in self.cols.iter_mut().zip(cells.iter()) {
                match cell {
                    Cell::Var(_) => col.var_rows.push(idx32),
                    c => col.by_const.entry(c).or_default().push(idx32),
                }
            }
            self.by_terms.insert(cells, idx32);
        }
    }

    /// Replaces one row's condition in place, recomputing its pooled
    /// id and (antichain or opaque) representation exactly as a fresh
    /// insert of that condition would. Returns `false` when the new
    /// condition is `False` or normalises to the empty DNF — the row
    /// is then dead and the caller must [`remove_rows`](Table::remove_rows) it.
    pub fn adjust_condition(&mut self, idx: usize, cond: &Condition) -> bool {
        let sets = if *cond == Condition::False {
            Some(Vec::new())
        } else {
            crate::dnf::to_min_dnf(cond, crate::dnf::DEFAULT_SET_BUDGET)
        };
        match sets {
            Some(s) if s.is_empty() => false,
            Some(s) => {
                self.conds[idx] = pool::intern(&crate::dnf::condition_of(&s));
                self.reprs[idx] = CondRepr::Sets(s);
                true
            }
            None => {
                let id = pool::intern(cond);
                self.conds[idx] = id;
                self.reprs[idx] = CondRepr::Opaque(vec![id]);
                true
            }
        }
    }

    /// Row-targeted [`prune`](Table::prune): solver-prunes only the
    /// rows at `indices`, adjusting surviving conditions in place and
    /// removing rows whose condition is unsatisfiable. Returns the
    /// number of rows removed. Each row goes through the same
    /// [`prune_row`](Table::prune) unit of work as a full prune, so a
    /// row's outcome depends only on its own condition — pruning a
    /// subset leaves the rest bit-identical to never having pruned.
    pub fn prune_rows(
        &mut self,
        reg: &CVarRegistry,
        session: &mut Session,
        indices: &[usize],
    ) -> Result<usize, SolverError> {
        let mut dead = Vec::new();
        for &idx in indices {
            let row = self.row(idx);
            let repr = self.reprs[idx].clone();
            match Self::prune_row(reg, session, row, repr)? {
                Some(kept) => {
                    if !self.adjust_condition(idx, &kept.cond) {
                        dead.push(idx);
                    }
                }
                None => dead.push(idx),
            }
        }
        let n = dead.len();
        self.remove_rows(&dead);
        Ok(n)
    }

    /// Applies one §5-style deletion pattern: `cols[i] = Some(c)`
    /// constrains attribute `i` to the constant `c`, `None` leaves it
    /// free. Mirrors the Levy–Sagiv semantics of
    /// `faure_core::update::apply_to_database` exactly, per row:
    ///
    /// * a constant cell that disagrees with its constraint keeps the
    ///   row untouched;
    /// * otherwise μ conjoins `v̄ = c` for every c-variable cell under a
    ///   constrained column (in column order);
    /// * μ = `True` removes the row; anything else weakens the row's
    ///   condition to `ψ ∧ ¬μ` (and removes it if that collapses).
    pub fn delete_where(&mut self, cols: &[Option<Const>]) -> DeletionEffect {
        assert_eq!(cols.len(), self.schema.arity(), "pattern arity mismatch");
        let mut drop_idx = Vec::new();
        let mut weakened = Vec::new();
        for idx in 0..self.len() {
            let mut mu = Condition::True;
            let mut keep = false;
            for (col, want) in self.cols.iter().zip(cols) {
                if let Some(c) = want {
                    match col.cells[idx] {
                        Cell::Var(v) => {
                            mu = mu.and(Condition::eq(Term::Var(v), Term::Const(c.clone())));
                        }
                        cell => {
                            if cell != Cell::encode_const(c) {
                                keep = true;
                                break;
                            }
                        }
                    }
                }
            }
            if keep {
                continue;
            }
            if mu == Condition::True {
                drop_idx.push(idx);
            } else {
                let old = self.row(idx);
                let new_cond = old.cond.clone().and(mu.negate());
                if !self.adjust_condition(idx, &new_cond) {
                    drop_idx.push(idx);
                    // Reported as removed (it is gone), not weakened.
                    continue;
                }
                weakened.push(old);
            }
        }
        // `drop_idx` rows still hold their old condition (a failed
        // `adjust_condition` does not write), so `remove_rows`
        // materialises the old versions.
        let removed = self.remove_rows(&drop_idx);
        DeletionEffect { removed, weakened }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{Database, Domain};

    fn db_with_xy() -> (CVarRegistry, faure_ctable::CVarId, faure_ctable::CVarId) {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar(
            "y",
            Domain::Consts(vec![Const::sym("1.2.3.4"), Const::sym("1.2.3.5")]),
        );
        (db.cvars, x, y)
    }

    #[test]
    fn insert_dedups_terms_and_merges_conditions() {
        let (reg, x, _) = db_with_xy();
        let _ = reg;
        let mut t = Table::new(Schema::new("T", &["a"]));
        let c0 = Condition::eq(Term::Var(x), Term::int(0));
        let c1 = Condition::eq(Term::Var(x), Term::int(1));
        assert_eq!(
            t.insert(CTuple::with_cond([Term::int(7)], c0.clone()))
                .unwrap(),
            InsertOutcome::New
        );
        assert_eq!(
            t.insert(CTuple::with_cond([Term::int(7)], c0.clone()))
                .unwrap(),
            InsertOutcome::Unchanged
        );
        assert_eq!(
            t.insert(CTuple::with_cond([Term::int(7)], c1.clone()))
                .unwrap(),
            InsertOutcome::Merged
        );
        assert_eq!(t.len(), 1);
        assert!(faure_solver::equivalent(&reg, &t.row(0).cond, &c0.or(c1)).unwrap());
    }

    #[test]
    fn unconditional_row_absorbs() {
        let (_, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a"]));
        t.insert(CTuple::new([Term::int(7)])).unwrap();
        assert_eq!(
            t.insert(CTuple::with_cond(
                [Term::int(7)],
                Condition::eq(Term::Var(x), Term::int(0))
            ))
            .unwrap(),
            InsertOutcome::Unchanged
        );
        assert_eq!(t.row(0).cond, Condition::True);
    }

    #[test]
    fn false_condition_rejected() {
        let mut t = Table::new(Schema::new("T", &["a"]));
        assert_eq!(
            t.insert(CTuple::with_cond([Term::int(7)], Condition::False))
                .unwrap(),
            InsertOutcome::Unchanged
        );
        assert!(t.is_empty());
    }

    #[test]
    fn cell_encoding_is_injective_round_trip() {
        // Int(1), Sym("1") and List([1]) must stay three distinct
        // cells and decode back to their exact source terms.
        let terms = [
            Term::int(1),
            Term::sym("1"),
            Term::Const(Const::list([Const::Int(1)])),
        ];
        let cells: Vec<Cell> = terms.iter().map(Cell::encode).collect();
        assert_ne!(cells[0], cells[1]);
        assert_ne!(cells[0], cells[2]);
        assert_ne!(cells[1], cells[2]);
        for (t, c) in terms.iter().zip(&cells) {
            assert_eq!(&c.decode(), t);
        }
    }

    #[test]
    fn dedup_keys_on_exact_cells_not_hashes() {
        // Regression for the old hash-bucket dedup index: rows whose
        // term vectors differ only in representation kind (Int vs Sym
        // vs List spelling the "same" value) must never merge, and
        // re-inserting each exact row must hit its own entry. The old
        // `HashMap<u64, Vec<u32>>` design relied on a verify-the-bucket
        // scan to guarantee this under hash collisions; direct cell
        // keys make it structural.
        let mut t = Table::new(Schema::new("T", &["a", "b"]));
        let rows = [
            [Term::int(1), Term::int(2)],
            [Term::sym("1"), Term::int(2)],
            [Term::int(1), Term::sym("2")],
            [Term::Const(Const::list([Const::Int(1)])), Term::int(2)],
            [Term::int(2), Term::int(1)], // swapped order is distinct
        ];
        for row in &rows {
            assert_eq!(
                t.insert(CTuple::new(row.clone())).unwrap(),
                InsertOutcome::New
            );
        }
        assert_eq!(t.len(), rows.len());
        // Exact re-inserts dedup onto the existing row, never a new one.
        for row in &rows {
            assert_eq!(
                t.insert(CTuple::new(row.clone())).unwrap(),
                InsertOutcome::Unchanged
            );
        }
        assert_eq!(t.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(t.row(i).terms, row.to_vec());
        }
    }

    #[test]
    fn constant_pattern_matches_var_cell_conditionally() {
        let (reg, _, y) = db_with_xy();
        let mut t = Table::new(Schema::new("P", &["dest", "path"]));
        t.insert(CTuple::with_cond(
            [Term::Var(y), Term::sym("[ABE]")],
            Condition::ne(Term::Var(y), Term::sym("1.2.3.4")),
        ))
        .unwrap();
        // Pattern P(1.2.3.5, Any) — the paper's q3 example.
        let pats = [Pattern::Exact(Term::sym("1.2.3.5")), Pattern::Any];
        let matches = t.find_matches(&reg, &pats);
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches[0].1,
            Condition::eq(Term::Var(y), Term::sym("1.2.3.5"))
        );
    }

    #[test]
    fn constant_outside_domain_does_not_match() {
        let (reg, _, y) = db_with_xy();
        let mut t = Table::new(Schema::new("P", &["dest"]));
        t.insert(CTuple::new([Term::Var(y)])).unwrap();
        // 9.9.9.9 is outside dom(ȳ) = {1.2.3.4, 1.2.3.5}.
        let matches = t.find_matches(&reg, &[Pattern::Exact(Term::sym("9.9.9.9"))]);
        assert!(matches.is_empty());
    }

    #[test]
    fn index_probe_equals_full_scan() {
        let (reg, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("F", &["a", "b"]));
        for i in 0..100 {
            t.insert(CTuple::new([Term::int(i % 10), Term::int(i)]))
                .unwrap();
        }
        t.insert(CTuple::with_cond(
            [Term::Var(x), Term::int(1000)],
            Condition::True,
        ))
        .unwrap();
        let pats = [Pattern::Exact(Term::int(3)), Pattern::Any];
        let mut via_index: Vec<usize> = t
            .find_matches(&reg, &pats)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        via_index.sort_unstable();
        let mut via_scan: Vec<usize> = t
            .iter()
            .enumerate()
            .filter_map(|(i, row)| Table::match_row(&reg, &row, &pats).map(|_| i))
            .collect();
        via_scan.sort_unstable();
        assert_eq!(via_index, via_scan);
        // 10 constant matches plus the var row (3 ∈ {0,1}? no — x̄ is
        // Bool01, and 3 ∉ {0,1}, so the var row does NOT match).
        assert_eq!(via_index.len(), 10);
    }

    #[test]
    fn negation_condition_empty_table_is_true() {
        let reg = CVarRegistry::new();
        let t = Table::new(Schema::new("Fw", &["a", "b"]));
        assert_eq!(
            t.negation_condition(&reg, &[Term::sym("Mkt"), Term::sym("CS")]),
            Condition::True
        );
    }

    #[test]
    fn negation_condition_unconditional_match_is_false() {
        let reg = CVarRegistry::new();
        let mut t = Table::new(Schema::new("Fw", &["a", "b"]));
        t.insert(CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        assert_eq!(
            t.negation_condition(&reg, &[Term::sym("Mkt"), Term::sym("CS")]),
            Condition::False
        );
    }

    #[test]
    fn negation_condition_conditional_match_negates() {
        let (reg, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("Lb", &["a"]));
        t.insert(CTuple::with_cond(
            [Term::sym("R&D")],
            Condition::eq(Term::Var(x), Term::int(1)),
        ))
        .unwrap();
        let c = t.negation_condition(&reg, &[Term::sym("R&D")]);
        // ¬(x̄ = 1) folded to x̄ ≠ 1 by `negate`.
        assert!(
            faure_solver::equivalent(&reg, &c, &Condition::ne(Term::Var(x), Term::int(1))).unwrap()
        );
    }

    #[test]
    fn locally_visible_contradictions_rejected_at_insert() {
        let (_, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a"]));
        // x̄ = 0 ∧ x̄ = 1 is caught by the DNF local filter: no row.
        assert_eq!(
            t.insert(CTuple::with_cond(
                [Term::int(1)],
                Condition::eq(Term::Var(x), Term::int(0))
                    .and(Condition::eq(Term::Var(x), Term::int(1))),
            ))
            .unwrap(),
            InsertOutcome::Unchanged
        );
        assert!(t.is_empty());
    }

    #[test]
    fn prune_removes_contradictions() {
        use faure_ctable::{CmpOp, LinExpr};
        let (reg, x, _) = db_with_xy();
        let mut db2 = Database::new();
        let y = db2.fresh_cvar("y", Domain::Bool01);
        let _ = reg;
        let reg = db2.cvars.clone();
        let mut t = Table::new(Schema::new("T", &["a"]));
        let _ = x;
        // ȳ + ȳ = 3 over {0,1}: unsatisfiable, but not a var=const
        // contradiction, so only the solver phase can remove it.
        t.insert(CTuple::with_cond(
            [Term::int(1)],
            Condition::cmp(
                LinExpr::var(y).plus_var(1, y),
                CmpOp::Eq,
                LinExpr::constant(3),
            ),
        ))
        .unwrap();
        t.insert(CTuple::with_cond(
            [Term::int(2)],
            Condition::eq(Term::Var(y), Term::int(0)),
        ))
        .unwrap();
        assert_eq!(t.len(), 2);
        let mut session = Session::new();
        let removed = t.prune(&reg, &mut session).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0).terms, vec![Term::int(2)]);
        assert!(session.stats().sat_calls + session.stats().simplify_calls >= 2);
    }

    #[test]
    fn prune_parallel_matches_serial() {
        use faure_ctable::{CmpOp, LinExpr};
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar("y", Domain::Bool01);
        let reg = db.cvars.clone();
        let build = || {
            let mut t = Table::new(Schema::new("T", &["a"]));
            for i in 0..12i64 {
                let cond = match i % 4 {
                    // x̄ + ȳ = 3 over {0,1}²: solver-only unsat.
                    0 => Condition::cmp(
                        LinExpr::var(x).plus_var(1, y),
                        CmpOp::Eq,
                        LinExpr::constant(3),
                    ),
                    1 => Condition::eq(Term::Var(x), Term::int(0)),
                    // Valid: simplifies to True.
                    2 => Condition::eq(Term::Var(y), Term::int(0))
                        .or(Condition::eq(Term::Var(y), Term::int(1))),
                    _ => Condition::eq(Term::Var(x), Term::int(1))
                        .and(Condition::ne(Term::Var(y), Term::int(0))),
                };
                t.insert(CTuple::with_cond([Term::int(i)], cond)).unwrap();
            }
            t
        };

        let mut serial = build();
        let mut serial_session = Session::new();
        let serial_removed = serial.prune(&reg, &mut serial_session).unwrap();

        for threads in [1usize, 2, 4] {
            let mut par = build();
            let memo = std::sync::Arc::new(faure_solver::SharedMemo::for_registry(&reg));
            let mut session = Session::new();
            let removed = par
                .prune_parallel(&reg, &mut session, &memo, threads)
                .unwrap();
            assert_eq!(removed, serial_removed, "threads={threads}");
            assert_eq!(par.len(), serial.len());
            for i in 0..serial.len() {
                assert_eq!(par.row(i).terms, serial.row(i).terms);
                assert_eq!(par.row(i).cond, serial.row(i).cond);
                assert_eq!(par.cond_id(i), serial.cond_id(i), "pooled ids match too");
            }
            // Deterministic counters match serial; only the memo
            // hit/miss split depends on scheduling.
            let s = session.stats();
            let base = serial_session.stats();
            assert_eq!(s.sat_calls, base.sat_calls);
            assert_eq!(s.sat_true, base.sat_true);
            assert_eq!(s.simplify_calls, base.simplify_calls);
            assert_eq!(
                s.memo_hits + s.memo_misses,
                base.memo_hits + base.memo_misses
            );
        }
    }

    #[test]
    fn prune_turns_valid_conditions_into_true() {
        let (reg, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a"]));
        t.insert(CTuple::with_cond(
            [Term::int(1)],
            Condition::eq(Term::Var(x), Term::int(0)).or(Condition::eq(Term::Var(x), Term::int(1))),
        ))
        .unwrap();
        let mut session = Session::new();
        t.prune(&reg, &mut session).unwrap();
        assert_eq!(t.row(0).cond, Condition::True);
        assert_eq!(t.cond_id(0), CondId::TRUE);
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let mut t = Table::new(Schema::new("T", &["a", "b"]));
        let err = t.insert(CTuple::new([Term::int(1)])).unwrap_err();
        assert_eq!(
            err,
            ArityError {
                table: "T".into(),
                expected: 2,
                got: 1,
            }
        );
        assert!(err.to_string().contains("arity 1"));
        assert!(err.to_string().contains("table T"));
        assert!(t.is_empty());
    }

    #[test]
    fn absorb_partitions_matches_serial_inserts() {
        let (_, x, _) = db_with_xy();
        let c0 = Condition::eq(Term::Var(x), Term::int(0));
        let c1 = Condition::eq(Term::Var(x), Term::int(1));
        let rows = vec![
            CTuple::with_cond([Term::int(7)], c0.clone()),
            CTuple::with_cond([Term::int(8)], Condition::True),
            CTuple::with_cond([Term::int(7)], c1.clone()),
            CTuple::with_cond([Term::int(7)], c0.clone()), // dup disjunct
            CTuple::with_cond([Term::int(9)], Condition::False),
        ];
        let mut serial = Table::new(Schema::new("T", &["a"]));
        let mut serial_changed = Vec::new();
        for row in &rows {
            if serial.insert(row.clone()).unwrap().changed() {
                serial_changed.push(row.terms.clone());
            }
        }
        // Same rows split across two partitions preserving order.
        let parts: Vec<Vec<PreparedRow>> = vec![
            rows[..2].iter().cloned().map(PreparedRow::new).collect(),
            rows[2..].iter().cloned().map(PreparedRow::new).collect(),
        ];
        let mut part = Table::new(Schema::new("T", &["a"]));
        let mut part_changed = Vec::new();
        part.absorb_partitions(parts, |prow| part_changed.push(prow.terms().to_vec()))
            .unwrap();
        assert_eq!(part.len(), serial.len());
        for (a, b) in part.iter().zip(serial.iter()) {
            assert_eq!(a, b); // bit-identical rows, conditions included
        }
        assert_eq!(part_changed, serial_changed);
    }

    #[test]
    fn absorb_partitions_propagates_arity_errors() {
        let mut t = Table::new(Schema::new("T", &["a"]));
        let bad = vec![vec![PreparedRow::new(CTuple::new([
            Term::int(1),
            Term::int(2),
        ]))]];
        assert!(t.absorb_partitions(bad, |_| {}).is_err());
    }

    /// The condition a fresh insert would store for `cond` (inserts
    /// normalise through min-DNF, which may reorient atoms).
    fn normalized(cond: &Condition) -> Condition {
        let mut t = Table::new(Schema::new("N", &["a"]));
        t.insert(CTuple::with_cond([Term::int(0)], cond.clone()))
            .unwrap();
        t.row(0).cond
    }

    #[test]
    fn remove_rows_compacts_and_reindexes() {
        let (reg, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a", "b"]));
        for i in 0..6i64 {
            t.insert(CTuple::new([Term::int(i % 2), Term::int(i)]))
                .unwrap();
        }
        t.insert(CTuple::with_cond(
            [Term::Var(x), Term::int(99)],
            Condition::ne(Term::Var(x), Term::int(0)),
        ))
        .unwrap();
        let removed = t.remove_rows(&[1, 4, 1]); // dups are fine
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].terms, vec![Term::int(1), Term::int(1)]);
        assert_eq!(removed[1].terms, vec![Term::int(0), Term::int(4)]);
        assert_eq!(t.len(), 5);
        // Surviving rows keep their exact conditions and the indexes
        // answer probes correctly after compaction.
        assert!(t.find_row(&[Term::int(1), Term::int(1)]).is_none());
        let idx = t.find_row(&[Term::Var(x), Term::int(99)]).unwrap();
        assert_eq!(
            t.row(idx).cond,
            normalized(&Condition::ne(Term::Var(x), Term::int(0)))
        );
        let pats = [Pattern::Exact(Term::int(0)), Pattern::Any];
        let hits = t.find_matches(&reg, &pats);
        assert_eq!(hits.len(), 3); // rows 0,2 (consts) + the x̄ row
        assert!(t.remove_rows(&[]).is_empty());
    }

    #[test]
    fn adjust_condition_matches_fresh_insert() {
        let (_, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a"]));
        t.insert(CTuple::new([Term::int(1)])).unwrap();
        let c = Condition::eq(Term::Var(x), Term::int(0));
        assert!(t.adjust_condition(0, &c));
        let mut fresh = Table::new(Schema::new("T", &["a"]));
        fresh
            .insert(CTuple::with_cond([Term::int(1)], c.clone()))
            .unwrap();
        assert_eq!(t.row(0), fresh.row(0));
        assert_eq!(t.cond_id(0), fresh.cond_id(0));
        // A condition that is locally contradictory reports dead.
        let dead = Condition::eq(Term::Var(x), Term::int(0))
            .and(Condition::eq(Term::Var(x), Term::int(1)));
        assert!(!t.adjust_condition(0, &dead));
        assert!(!t.adjust_condition(0, &Condition::False));
        // A failed adjust leaves the row untouched.
        assert_eq!(t.row(0).cond, normalized(&c));
    }

    #[test]
    fn prune_rows_matches_full_prune_on_subset() {
        use faure_ctable::{CmpOp, LinExpr};
        let mut db = Database::new();
        let y = db.fresh_cvar("y", Domain::Bool01);
        let reg = db.cvars.clone();
        let unsat = Condition::cmp(
            LinExpr::var(y).plus_var(1, y),
            CmpOp::Eq,
            LinExpr::constant(3),
        );
        let valid =
            Condition::eq(Term::Var(y), Term::int(0)).or(Condition::eq(Term::Var(y), Term::int(1)));
        let mut t = Table::new(Schema::new("T", &["a"]));
        t.insert(CTuple::with_cond([Term::int(1)], unsat)).unwrap();
        t.insert(CTuple::with_cond([Term::int(2)], valid)).unwrap();
        t.insert(CTuple::with_cond(
            [Term::int(3)],
            Condition::eq(Term::Var(y), Term::int(1)),
        ))
        .unwrap();
        let mut session = Session::new();
        let removed = t.prune_rows(&reg, &mut session, &[0, 1]).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0).terms, vec![Term::int(2)]);
        assert_eq!(t.row(0).cond, Condition::True); // valid → simplified
                                                    // Untouched row 3 keeps its condition verbatim.
        assert_eq!(
            t.row(1).cond,
            normalized(&Condition::eq(Term::Var(y), Term::int(1)))
        );
    }

    #[test]
    fn delete_where_mirrors_levy_sagiv_semantics() {
        let (_, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a", "b"]));
        t.insert(CTuple::new([Term::int(1), Term::int(2)])).unwrap();
        t.insert(CTuple::new([Term::int(1), Term::int(3)])).unwrap();
        t.insert(CTuple::new([Term::Var(x), Term::int(2)])).unwrap();
        // Delete T(1, 2): the ground match drops, the x̄ row weakens.
        let eff = t.delete_where(&[Some(Const::int(1)), Some(Const::int(2))]);
        assert_eq!(eff.removed.len(), 1);
        assert_eq!(eff.removed[0].terms, vec![Term::int(1), Term::int(2)]);
        assert_eq!(eff.weakened.len(), 1);
        assert_eq!(eff.weakened[0].cond, Condition::True); // old version
        assert_eq!(t.len(), 2);
        let idx = t.find_row(&[Term::Var(x), Term::int(2)]).unwrap();
        assert_eq!(
            t.row(idx).cond,
            normalized(&Condition::ne(Term::Var(x), Term::int(1))) // ¬(x̄ = 1) folded
        );
        // A second exact delete of an absent tuple is a no-op.
        let eff = t.delete_where(&[Some(Const::int(9)), Some(Const::int(9))]);
        assert!(eff.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn support_counts_gate_not_count() {
        let (_, x, _) = db_with_xy();
        let mut t = Table::new(Schema::new("T", &["a"]));
        t.insert(CTuple::new([Term::int(1)])).unwrap();
        assert_eq!(t.support(0), 1);
        t.insert(CTuple::with_cond(
            [Term::int(1)],
            Condition::eq(Term::Var(x), Term::int(0)),
        ))
        .unwrap(); // absorbed (row is True) but still a support event
        assert_eq!(t.support(0), 2);
        t.insert(CTuple::new([Term::int(2)])).unwrap();
        let _ = t.remove_rows(&[0]);
        assert_eq!(t.support(0), 1); // counts travel with their rows
    }

    #[test]
    fn round_trip_relation() {
        let mut rel = Relation::empty(Schema::new("T", &["a", "b"]));
        rel.push(CTuple::new([Term::int(1), Term::int(2)])).unwrap();
        rel.push(CTuple::new([Term::int(1), Term::int(2)])).unwrap(); // dup
        rel.push(CTuple::new([Term::int(3), Term::int(4)])).unwrap();
        let t = Table::from_relation(&rel);
        assert_eq!(t.len(), 2); // dedup
        let back = t.to_relation();
        assert_eq!(back.len(), 2);
        let consumed = Table::from_relation(&rel).into_relation();
        assert_eq!(consumed.tuples, back.tuples);
    }
}
