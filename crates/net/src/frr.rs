//! The fast-reroute example of Figure 1 / Table 3.
//!
//! Five abstract forwarding entities (nodes 1–5). Three protected
//! primary links, each with a backup detour; the link states are the
//! `{0,1}` c-variables `x̄, ȳ, z̄` (0 = failed, 1 = up). The whole space
//! of forwarding behaviours under arbitrary failures is one c-table:
//!
//! ```text
//! F(flow, from, to)
//!   (1, 1, 2) [x̄ = 1]     primary 1→2        (1, 1, 3) [x̄ = 0]  backup
//!   (1, 2, 3) [ȳ = 1]     primary 2→3        (1, 2, 4) [ȳ = 0]  backup
//!   (1, 3, 5) [z̄ = 1]     primary 3→5        (1, 3, 4) [z̄ = 0]  backup
//!   (1, 4, 5)             unprotected backup link, always up
//! ```
//!
//! (The paper's Table 3 shows `F(node, node)`; Listing 2's queries use
//! a three-column `F(f, n1, n2)` with a flow/destination attribute, so
//! we generate the three-column form with a single flow `1` for the
//! figure — the RIB generator produces many flows.)
//!
//! Reachability `1 → 5` then holds under every failure combination —
//! exactly the R-table fragment of Table 3: via `2,3` when
//! `x̄=ȳ=z̄=1`, via `3` when `x̄=0 ∧ z̄=1`, via `3,4` when `x̄=0 ∧ z̄=0`,
//! via `2,4` when `x̄=1 ∧ ȳ=0`, etc.

use faure_ctable::{CTuple, CVarId, Condition, Database, Domain, Schema, Term};

/// Handles to the three link-state c-variables.
#[derive(Clone, Copy, Debug)]
pub struct FrrVars {
    /// State of protected link 1→2.
    pub x: CVarId,
    /// State of protected link 2→3.
    pub y: CVarId,
    /// State of protected link 3→5.
    pub z: CVarId,
}

/// A protected link: primary hop plus backup hop, guarded by one
/// link-state c-variable.
#[derive(Clone, Debug)]
pub struct ProtectedLink {
    /// Primary (from, to).
    pub primary: (i64, i64),
    /// Backup (from, to) used when the primary is down.
    pub backup: (i64, i64),
    /// Name for the link-state c-variable.
    pub var_name: String,
}

/// A fast-reroute configuration: protected links plus always-up links.
#[derive(Clone, Debug, Default)]
pub struct FrrConfig {
    /// Protected links.
    pub protected: Vec<ProtectedLink>,
    /// Unprotected (always-up) links.
    pub unprotected: Vec<(i64, i64)>,
}

impl FrrConfig {
    /// Builds the `F(f, n1, n2)` c-table for a single flow id into a
    /// fresh database; returns the database and the link-state
    /// c-variables in declaration order.
    pub fn build_database(&self, flow: i64) -> (Database, Vec<CVarId>) {
        let mut db = Database::new();
        db.create_relation(Schema::new("F", &["f", "n1", "n2"]))
            .expect("fresh database");
        let mut vars = Vec::new();
        for link in &self.protected {
            let v = db.fresh_cvar(link.var_name.clone(), Domain::Bool01);
            vars.push(v);
            db.insert(
                "F",
                CTuple::with_cond(
                    [
                        Term::int(flow),
                        Term::int(link.primary.0),
                        Term::int(link.primary.1),
                    ],
                    Condition::eq(Term::Var(v), Term::int(1)),
                ),
            )
            .expect("arity 3");
            db.insert(
                "F",
                CTuple::with_cond(
                    [
                        Term::int(flow),
                        Term::int(link.backup.0),
                        Term::int(link.backup.1),
                    ],
                    Condition::eq(Term::Var(v), Term::int(0)),
                ),
            )
            .expect("arity 3");
        }
        for &(a, b) in &self.unprotected {
            db.insert(
                "F",
                CTuple::new([Term::int(flow), Term::int(a), Term::int(b)]),
            )
            .expect("arity 3");
        }
        (db, vars)
    }
}

/// Generates a random fast-reroute configuration over `n` nodes: a
/// primary chain `1 → 2 → … → n` where each of the first `protected`
/// hops is protected by a backup detour through a shared repair node,
/// plus the repair node's unconditional links. This generalises
/// Figure 1 (which is `random_config(5, 3)` up to node naming) and
/// feeds the scaling tests: the number of possible worlds is
/// `2^protected` while the c-table stays linear in `n`.
pub fn random_config(n: usize, protected: usize, rng: &mut rand::rngs::StdRng) -> FrrConfig {
    use rand::Rng;
    assert!(n >= 3, "need at least 3 nodes");
    let protected = protected.min(n - 2);
    let repair = n as i64 + 1; // dedicated repair node
    let mut cfg = FrrConfig::default();
    for i in 0..(n as i64 - 1) {
        let (from, to) = (i + 1, i + 2);
        if (i as usize) < protected {
            cfg.protected.push(ProtectedLink {
                primary: (from, to),
                backup: (from, repair),
                var_name: format!("l{from}"),
            });
        } else {
            cfg.unprotected.push((from, to));
        }
        // The repair node can reach every chain node ahead (a random
        // subset keeps configs diverse).
        if rng.gen_bool(0.7) {
            cfg.unprotected.push((repair, to));
        }
    }
    // Guarantee the repair node reaches the chain end so protection is
    // meaningful.
    cfg.unprotected.push((repair, n as i64));
    cfg
}

/// The Figure 1 configuration.
pub fn figure1_config() -> FrrConfig {
    FrrConfig {
        protected: vec![
            ProtectedLink {
                primary: (1, 2),
                backup: (1, 3),
                var_name: "x".into(),
            },
            ProtectedLink {
                primary: (2, 3),
                backup: (2, 4),
                var_name: "y".into(),
            },
            ProtectedLink {
                primary: (3, 5),
                backup: (3, 4),
                var_name: "z".into(),
            },
        ],
        unprotected: vec![(4, 5)],
    }
}

/// Builds the Figure 1 / Table 3 database (flow id 1) and returns the
/// three link-state c-variables.
pub fn figure1_database() -> (Database, FrrVars) {
    let (db, vars) = figure1_config().build_database(1);
    let (x, y, z) = (vars[0], vars[1], vars[2]);
    (db, FrrVars { x, y, z })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use faure_core::evaluate;
    use faure_ctable::worlds::WorldIter;

    #[test]
    fn figure1_f_table_shape() {
        let (db, _) = figure1_database();
        let f = db.relation("F").unwrap();
        // 3 protected × 2 (primary + backup) + 1 unprotected.
        assert_eq!(f.len(), 7);
        assert!(f.is_conditional());
    }

    /// Table 3's claim, checked exhaustively: node 5 is reachable from
    /// node 1 under EVERY combination of link failures (that is the
    /// point of fast reroute), and the reachability conditions match
    /// the concrete worlds.
    #[test]
    fn one_reaches_five_under_all_failures() {
        let (db, _) = figure1_database();
        let out = evaluate(&queries::reachability_program(), &db).unwrap();
        let r = out
            .relation("R")
            .unwrap()
            .iter()
            .find(|t| t.terms == vec![Term::int(1), Term::int(1), Term::int(5)])
            .expect("R(1,1,5) derivable")
            .clone();
        // The condition must be valid (true in all 8 worlds) — the
        // solver phase reduces it to the empty condition.
        assert_eq!(r.cond, Condition::True);
    }

    #[test]
    fn random_configs_protect_end_to_end() {
        use rand::SeedableRng;
        // In every random config, node 1 must reach the chain end under
        // EVERY failure combination (that is what protection means):
        // failed hops detour via the repair node which reaches the end.
        for seed in 0..5u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cfg = random_config(6, 3, &mut rng);
            let (db, vars) = cfg.build_database(1);
            assert_eq!(vars.len(), 3);
            let out = evaluate(&queries::reachability_program(), &db).unwrap();
            let r = out.relation("R").unwrap();
            let end = Term::int(6);
            let guarded = r
                .iter()
                .find(|t| t.terms[1] == Term::int(1) && t.terms[2] == end)
                .unwrap_or_else(|| panic!("R(1,1,6) missing for seed {seed}"));
            assert_eq!(
                guarded.cond,
                Condition::True,
                "seed {seed}: 1→6 must survive all failures"
            );
        }
    }

    /// Cross-check the whole R table against brute-force world
    /// enumeration (loss-less modeling on Figure 1).
    #[test]
    fn reachability_matches_every_world() {
        let (db, _) = figure1_database();
        let out = evaluate(&queries::reachability_program(), &db).unwrap();
        let r_table = out.relation("R").unwrap();
        for world in WorldIter::new(&db, None).unwrap() {
            // Ground reachability in this world by simple closure.
            let f = world.relation("F").unwrap();
            let mut reach: std::collections::BTreeSet<(i64, i64)> = f
                .tuples
                .iter()
                .map(|t| (t[1].as_int().unwrap(), t[2].as_int().unwrap()))
                .collect();
            loop {
                let mut added = false;
                let snapshot: Vec<(i64, i64)> = reach.iter().copied().collect();
                for &(a, b) in &snapshot {
                    for &(c, d) in &snapshot {
                        if b == c && reach.insert((a, d)) {
                            added = true;
                        }
                    }
                }
                if !added {
                    break;
                }
            }
            // Compare against the c-table R instantiated in this world.
            let lookup = world.assignment.lookup();
            let mut from_ctable: std::collections::BTreeSet<(i64, i64)> = Default::default();
            for t in r_table.iter() {
                if t.cond.eval(&lookup) == Some(true) {
                    from_ctable.insert((
                        t.terms[1].as_const().unwrap().as_int().unwrap(),
                        t.terms[2].as_const().unwrap().as_int().unwrap(),
                    ));
                }
            }
            assert_eq!(reach, from_ctable, "world {:?}", world.assignment);
        }
    }
}
