//! The abstract domain lattice for fauré-log column inference.
//!
//! Each predicate column is abstracted to an [`AbsDom`] — an
//! over-approximation of the set of constants the column can hold in
//! any derivation over any world:
//!
//! ```text
//!                ⊤  (any constant)
//!              /   \
//!     [lo..hi]      symbols      ← integer interval / symbol universe
//!              \   /
//!          {c₁, …, cₖ}           ← finite constant set (k ≤ 16)
//!                |
//!                ⊥  (no value possible)
//! ```
//!
//! The lattice is deliberately small: joins widen a constant set that
//! outgrows [`MAX_SET`] members to its integer hull (or to ⊤ when the
//! set mixes integers and symbols), so fixpoint iteration over the
//! predicate dependency graph terminates after finitely many joins —
//! every bound that appears is drawn from the finite set of constants
//! occurring in the program, the database, and the c-variable
//! registry.
//!
//! C-variables are *not* ⊤: a c-variable cell contributes the abstract
//! image of its registry [`Domain`] (via [`AbsDom::from_domain`]), so
//! `@cvar s in {0, 1}` flows `{0, 1}` into every column the variable
//! occupies.

use faure_ctable::{CmpOp, Const, Domain};
use std::collections::BTreeSet;
use std::fmt;

/// Maximum cardinality of an explicit constant set before a join
/// widens it to an interval (all-integer) or ⊤/symbols (otherwise).
pub const MAX_SET: usize = 16;

/// An element of the column-domain lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsDom {
    /// No value possible (the column provably never holds a tuple).
    Bottom,
    /// One of finitely many known constants (nonempty, ≤ [`MAX_SET`]).
    Consts(BTreeSet<Const>),
    /// Any integer within the bounds (`None` = unbounded on that side).
    Interval(Option<i64>, Option<i64>),
    /// Any non-integer constant (symbols, strings, lists).
    Symbols,
    /// Any constant at all.
    Top,
}

/// The coarse value kind of a domain, used by the cross-rule column
/// type-mismatch check (F0009).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Only integers.
    Int,
    /// Only non-integers.
    Sym,
    /// Both, or unknown.
    Mixed,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Int => f.write_str("integer"),
            Kind::Sym => f.write_str("symbolic"),
            Kind::Mixed => f.write_str("mixed"),
        }
    }
}

fn is_int(c: &Const) -> bool {
    matches!(c, Const::Int(_))
}

/// Widens a constant set that grew beyond [`MAX_SET`].
fn widen(set: BTreeSet<Const>) -> AbsDom {
    if set.len() <= MAX_SET {
        return AbsDom::norm_consts(set);
    }
    if set.iter().all(is_int) {
        let lo = set.iter().filter_map(Const::as_int).min();
        let hi = set.iter().filter_map(Const::as_int).max();
        AbsDom::Interval(lo, hi)
    } else if set.iter().all(|c| !is_int(c)) {
        AbsDom::Symbols
    } else {
        AbsDom::Top
    }
}

impl AbsDom {
    /// The abstraction of one known constant.
    pub fn from_const(c: &Const) -> AbsDom {
        AbsDom::Consts(std::iter::once(c.clone()).collect())
    }

    /// The abstraction of a c-variable registry domain.
    pub fn from_domain(d: &Domain) -> AbsDom {
        match d.members() {
            Some(ms) => widen(ms.into_iter().collect()),
            None => AbsDom::Top,
        }
    }

    /// Normalises a constant set: empty → ⊥.
    fn norm_consts(set: BTreeSet<Const>) -> AbsDom {
        if set.is_empty() {
            AbsDom::Bottom
        } else {
            AbsDom::Consts(set)
        }
    }

    /// Whether the domain is empty.
    pub fn is_bottom(&self) -> bool {
        matches!(self, AbsDom::Bottom)
            || matches!(self, AbsDom::Interval(Some(lo), Some(hi)) if lo > hi)
    }

    /// Whether `c` may inhabit the domain.
    pub fn contains(&self, c: &Const) -> bool {
        match self {
            AbsDom::Bottom => false,
            AbsDom::Consts(set) => set.contains(c),
            AbsDom::Interval(lo, hi) => c
                .as_int()
                .is_some_and(|v| lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)),
            AbsDom::Symbols => !is_int(c),
            AbsDom::Top => true,
        }
    }

    /// Number of distinct values, when finite.
    pub fn card(&self) -> Option<u64> {
        match self {
            AbsDom::Bottom => Some(0),
            AbsDom::Consts(set) => Some(set.len() as u64),
            AbsDom::Interval(Some(lo), Some(hi)) if lo <= hi => {
                Some(hi.abs_diff(*lo).saturating_add(1))
            }
            _ => None,
        }
    }

    /// The coarse value kind.
    pub fn kind(&self) -> Kind {
        match self {
            AbsDom::Consts(set) => {
                if set.iter().all(is_int) {
                    Kind::Int
                } else if set.iter().all(|c| !is_int(c)) {
                    Kind::Sym
                } else {
                    Kind::Mixed
                }
            }
            AbsDom::Interval(..) => Kind::Int,
            AbsDom::Symbols => Kind::Sym,
            AbsDom::Bottom | AbsDom::Top => Kind::Mixed,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsDom) -> AbsDom {
        use AbsDom::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x.clone(),
            (Top, _) | (_, Top) => Top,
            (Consts(a), Consts(b)) => widen(a.union(b).cloned().collect()),
            (Consts(set), Interval(lo, hi)) | (Interval(lo, hi), Consts(set)) => {
                if set.iter().all(is_int) {
                    let slo = set.iter().filter_map(Const::as_int).min();
                    let shi = set.iter().filter_map(Const::as_int).max();
                    Interval(
                        lo.zip(slo).map(|(a, b)| a.min(b)),
                        hi.zip(shi).map(|(a, b)| a.max(b)),
                    )
                } else {
                    Top
                }
            }
            (Consts(set), Symbols) | (Symbols, Consts(set)) => {
                if set.iter().all(|c| !is_int(c)) {
                    Symbols
                } else {
                    Top
                }
            }
            (Interval(alo, ahi), Interval(blo, bhi)) => Interval(
                alo.zip(*blo).map(|(a, b)| a.min(b)),
                ahi.zip(*bhi).map(|(a, b)| a.max(b)),
            ),
            (Interval(..), Symbols) | (Symbols, Interval(..)) => Top,
            (Symbols, Symbols) => Symbols,
        }
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &AbsDom) -> AbsDom {
        use AbsDom::*;
        match (self, other) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Top, x) | (x, Top) => x.clone(),
            (Consts(a), Consts(b)) => AbsDom::norm_consts(a.intersection(b).cloned().collect()),
            (Consts(set), other @ (Interval(..) | Symbols))
            | (other @ (Interval(..) | Symbols), Consts(set)) => {
                AbsDom::norm_consts(set.iter().filter(|c| other.contains(c)).cloned().collect())
            }
            (Interval(alo, ahi), Interval(blo, bhi)) => {
                let lo = match (alo, blo) {
                    (Some(a), Some(b)) => Some(*a.max(b)),
                    (x, None) | (None, x) => *x,
                };
                let hi = match (ahi, bhi) {
                    (Some(a), Some(b)) => Some(*a.min(b)),
                    (x, None) | (None, x) => *x,
                };
                if let (Some(l), Some(h)) = (lo, hi) {
                    if l > h {
                        return Bottom;
                    }
                }
                Interval(lo, hi)
            }
            (Interval(..), Symbols) | (Symbols, Interval(..)) => Bottom,
            (Symbols, Symbols) => Symbols,
        }
    }

    /// Refines the domain under a `value op constant` comparison,
    /// returning the (possibly empty) surviving portion. Refinements
    /// the lattice cannot represent precisely leave the domain as-is —
    /// the result is always an over-approximation.
    pub fn refine(&self, op: CmpOp, c: &Const) -> AbsDom {
        match (op, c.as_int()) {
            (CmpOp::Eq, _) => self.meet(&AbsDom::from_const(c)),
            (CmpOp::Ne, _) => match self {
                AbsDom::Consts(set) => {
                    AbsDom::norm_consts(set.iter().filter(|m| *m != c).cloned().collect())
                }
                other => other.clone(),
            },
            (CmpOp::Lt, Some(i64::MIN)) | (CmpOp::Gt, Some(i64::MAX)) => AbsDom::Bottom,
            (CmpOp::Lt, Some(k)) => self.meet(&AbsDom::Interval(None, Some(k - 1))),
            (CmpOp::Le, Some(k)) => self.meet(&AbsDom::Interval(None, Some(k))),
            (CmpOp::Gt, Some(k)) => self.meet(&AbsDom::Interval(Some(k + 1), None)),
            (CmpOp::Ge, Some(k)) => self.meet(&AbsDom::Interval(Some(k), None)),
            // Ordering against a non-integer never holds under the
            // engine's comparison semantics (undefined cuts the branch).
            (_, None) => AbsDom::Bottom,
        }
    }
}

impl fmt::Display for AbsDom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsDom::Bottom => f.write_str("⊥"),
            AbsDom::Consts(set) => {
                f.write_str("{")?;
                for (i, c) in set.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str("}")
            }
            AbsDom::Interval(lo, hi) => {
                f.write_str("[")?;
                if let Some(l) = lo {
                    write!(f, "{l}")?;
                }
                f.write_str("..")?;
                if let Some(h) = hi {
                    write!(f, "{h}")?;
                }
                f.write_str("]")
            }
            AbsDom::Symbols => f.write_str("symbols"),
            AbsDom::Top => f.write_str("⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vs: &[i64]) -> AbsDom {
        AbsDom::Consts(vs.iter().map(|&v| Const::Int(v)).collect())
    }

    #[test]
    fn join_unions_small_sets() {
        let j = ints(&[1, 2]).join(&ints(&[2, 3]));
        assert_eq!(j, ints(&[1, 2, 3]));
    }

    #[test]
    fn join_widens_large_int_sets_to_interval() {
        let big: Vec<i64> = (0..(MAX_SET as i64)).collect();
        let j = ints(&big).join(&ints(&[99]));
        assert_eq!(j, AbsDom::Interval(Some(0), Some(99)));
    }

    #[test]
    fn join_of_mixed_kinds_is_top() {
        let syms = AbsDom::Symbols;
        assert_eq!(ints(&[1]).join(&syms), AbsDom::Top);
        assert_eq!(
            AbsDom::from_const(&Const::sym("Mkt")).join(&syms),
            AbsDom::Symbols
        );
    }

    #[test]
    fn meet_intersects_and_bottoms_out() {
        assert_eq!(ints(&[1, 2]).meet(&ints(&[2, 3])), ints(&[2]));
        assert!(ints(&[1]).meet(&ints(&[2])).is_bottom());
        assert_eq!(
            ints(&[1, 5]).meet(&AbsDom::Interval(Some(0), Some(3))),
            ints(&[1])
        );
        assert!(AbsDom::Interval(Some(0), Some(3))
            .meet(&AbsDom::Interval(Some(5), None))
            .is_bottom());
        assert!(AbsDom::Symbols
            .meet(&AbsDom::Interval(None, None))
            .is_bottom());
    }

    #[test]
    fn lattice_laws_on_samples() {
        let samples = [
            AbsDom::Bottom,
            ints(&[1, 2]),
            AbsDom::Interval(Some(0), Some(9)),
            AbsDom::Symbols,
            AbsDom::Top,
        ];
        for a in &samples {
            assert_eq!(&a.join(&AbsDom::Bottom), a);
            assert_eq!(&a.meet(&AbsDom::Top), a);
            for b in &samples {
                // Commutativity.
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.meet(b), b.meet(a));
            }
        }
    }

    #[test]
    fn contains_respects_each_shape() {
        assert!(ints(&[1, 2]).contains(&Const::Int(2)));
        assert!(!ints(&[1, 2]).contains(&Const::Int(3)));
        assert!(AbsDom::Interval(Some(0), None).contains(&Const::Int(7)));
        assert!(!AbsDom::Interval(Some(0), None).contains(&Const::sym("x")));
        assert!(AbsDom::Symbols.contains(&Const::sym("x")));
        assert!(!AbsDom::Symbols.contains(&Const::Int(0)));
        assert!(AbsDom::Top.contains(&Const::Int(0)));
        assert!(!AbsDom::Bottom.contains(&Const::Int(0)));
    }

    #[test]
    fn from_domain_maps_registry_domains() {
        assert_eq!(AbsDom::from_domain(&Domain::Bool01), ints(&[0, 1]));
        assert_eq!(AbsDom::from_domain(&Domain::Open), AbsDom::Top);
        assert_eq!(
            AbsDom::from_domain(&Domain::Consts(vec![Const::sym("a")])),
            AbsDom::Consts(std::iter::once(Const::sym("a")).collect())
        );
    }

    #[test]
    fn refine_tightens_by_comparisons() {
        let d = ints(&[0, 1, 2]);
        assert_eq!(d.refine(CmpOp::Lt, &Const::Int(2)), ints(&[0, 1]));
        assert!(d.refine(CmpOp::Gt, &Const::Int(5)).is_bottom());
        assert_eq!(d.refine(CmpOp::Ne, &Const::Int(0)), ints(&[1, 2]));
        assert_eq!(d.refine(CmpOp::Eq, &Const::Int(1)), ints(&[1]));
        // Ordering against a symbol can never hold.
        assert!(d.refine(CmpOp::Lt, &Const::sym("x")).is_bottom());
        // Refinements that cannot be represented keep the domain.
        assert_eq!(AbsDom::Top.refine(CmpOp::Ne, &Const::Int(0)), AbsDom::Top);
    }

    #[test]
    fn cards_and_kinds() {
        assert_eq!(ints(&[1, 2]).card(), Some(2));
        assert_eq!(AbsDom::Interval(Some(0), Some(4)).card(), Some(5));
        assert_eq!(AbsDom::Top.card(), None);
        assert_eq!(ints(&[1]).kind(), Kind::Int);
        assert_eq!(AbsDom::Symbols.kind(), Kind::Sym);
        assert_eq!(AbsDom::Top.kind(), Kind::Mixed);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ints(&[0, 1]).to_string(), "{0, 1}");
        assert_eq!(AbsDom::Interval(Some(0), None).to_string(), "[0..]");
        assert_eq!(AbsDom::Bottom.to_string(), "⊥");
        assert_eq!(AbsDom::Top.to_string(), "⊤");
    }
}
