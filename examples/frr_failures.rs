//! Loss-less modeling of link failures (paper §4, Figure 1 / Table 3).
//!
//! Builds the fast-reroute configuration of Figure 1 — three protected
//! links whose states are the `{0,1}` c-variables `x̄, ȳ, z̄` — and runs
//! Listing 2:
//!
//! * q4–q5: all-pairs reachability as a recursive query;
//! * q6: reachability under a 2-link failure (`x̄+ȳ+z̄ = 1`);
//! * q7: reachability between nodes 2 and 5 when additionally the `ȳ`
//!   link is down;
//! * q8: reachability from node 1 with at least one of `ȳ, z̄` down.
//!
//! Run with: `cargo run -p faure-examples --bin frr_failures`

use faure_core::evaluate;
use faure_ctable::Term;
use faure_net::{frr, queries};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (db, _vars) = frr::figure1_database();

    println!("=== F: all possible forwarding behaviours (Table 3) ===");
    print!("{db}");

    let program = queries::listing2_program(2, 5, 1);
    let out = evaluate(&program, &db)?;
    let reg = &out.database.cvars;

    println!("\n=== R: all-pairs reachability under arbitrary failures (q4-q5) ===");
    let r = out.relation("R").expect("derived");
    for row in r.iter() {
        println!("  R{}", row.display(reg));
    }
    println!("  ({} rows)", r.len());

    // The fast-reroute guarantee, read off the c-table: 1 reaches 5
    // with the *empty condition* — under every failure combination.
    let guarantee = r
        .iter()
        .find(|t| t.terms == vec![Term::int(1), Term::int(1), Term::int(5)])
        .expect("R(1,1,5)");
    println!(
        "\nfast-reroute guarantee: R(1,1,5) holds under condition [{}]",
        guarantee.cond.display(reg)
    );

    println!("\n=== T1: reachability under 2-link failures (q6) ===");
    let t1 = out.relation("T1").expect("derived");
    for row in t1.iter().take(8) {
        println!("  T1{}", row.display(reg));
    }
    println!("  ({} rows total)", t1.len());

    println!("\n=== T2: 2->5 under 2-link failure, (2,3) among them (q7) ===");
    for row in out.relation("T2").expect("derived").iter() {
        println!("  T2{}", row.display(reg));
    }

    println!("\n=== T3: reachability from 1 with >=1 of y,z failed (q8) ===");
    for row in out.relation("T3").expect("derived").iter() {
        println!("  T3{}", row.display(reg));
    }

    // Which exact failure combinations break a given reachability
    // goal? Enumerate the violating worlds of "1 must reach 4".
    println!("\n=== failure scenarios breaking 1 -> 4 ===");
    let goal = r
        .iter()
        .find(|t| t.terms == vec![Term::int(1), Term::int(1), Term::int(4)])
        .map(|t| t.cond.clone())
        .unwrap_or(faure_ctable::Condition::False);
    for scenario in faure_solver::all_models(reg, &goal.negate(), 16)? {
        let desc: Vec<String> = scenario
            .iter()
            .map(|(v, val)| format!("{}'={}", reg.name(*v), val))
            .collect();
        println!("  {}", desc.join(", "));
    }

    let s = &out.stats;
    println!(
        "\nstats: {} tuples derived, relational {:?}, solver {:?} ({} sat calls)",
        s.tuples, s.relational, s.solver, s.solver_stats.sat_calls
    );
    Ok(())
}
