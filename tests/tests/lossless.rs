//! Loss-less modeling — the paper's central semantic claim (§4),
//! tested exhaustively and property-based.
//!
//! "Fauré-log query on a single partial network is guaranteed to be
//! equivalent to iteratively querying all possible networks." Every
//! test here enumerates *all* possible worlds of a c-table database,
//! runs an independent pure-datalog evaluator in each world, and
//! compares with the instantiated fauré-log answer.

use faure_core::parse_program;
use faure_ctable::{CTuple, Condition, Const, Database, Domain, Schema, Term};
use faure_net::frr;
use faure_tests::assert_lossless;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// systematic cases
// ---------------------------------------------------------------------------

#[test]
fn lossless_on_table2_join() {
    let (db, _) = faure_ctable::examples::table2_path_db();
    let program = parse_program(
        r#"Cost(c) :- P("1.2.3.4", p), C(p, c).
           Q3(c) :- P("1.2.3.5", p), C(p, c)."#,
    )
    .unwrap();
    assert_eq!(assert_lossless(&program, &db), 6);
}

#[test]
fn lossless_on_figure1_recursive_reachability() {
    let (db, _) = frr::figure1_database();
    let program = parse_program(
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
    )
    .unwrap();
    // 3 link variables → 8 worlds.
    assert_eq!(assert_lossless(&program, &db), 8);
}

#[test]
fn lossless_on_figure1_failure_patterns() {
    let (db, _) = frr::figure1_database();
    let program = parse_program(
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n\
         T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.\n\
         T2(f, 2, 5) :- T1(f, 2, 5), $y = 0.\n\
         T3(f, 1, n2) :- R(f, 1, n2), $y + $z < 2.\n",
    )
    .unwrap();
    assert_eq!(assert_lossless(&program, &db), 8);
}

#[test]
fn lossless_with_negation() {
    let (db, _) = frr::figure1_database();
    // Unreachable pairs: nodes that forward somewhere but cannot reach n2.
    let program = parse_program(
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n\
         Node(n) :- F(f, n, m).\n\
         Node(m) :- F(f, n, m).\n\
         Cut(n1, n2) :- Node(n1), Node(n2), !R(1, n1, n2).\n",
    )
    .unwrap();
    assert_eq!(assert_lossless(&program, &db), 8);
}

#[test]
fn lossless_enterprise_constraints() {
    use faure_net::enterprise;
    let (db, _) = enterprise::compliant_net();
    // C_lb as a plain program (panic + aux Vt).
    assert!(assert_lossless(&enterprise::c_lb(), &db) > 0);
    assert!(assert_lossless(&enterprise::c_s(), &db) > 0);
    let (bad, _) = enterprise::t2_violating_net();
    assert!(assert_lossless(&enterprise::t2(), &bad) > 0);
}

#[test]
fn lossless_small_rib_workload() {
    // A tiny RIB workload still has ~2^k worlds; keep k small: 2
    // prefixes × (1 shared monitored var choice + 4 backups) ≈ 2^11 max.
    let w = faure_net::rib::generate(&faure_net::rib::RibParams {
        prefixes: 2,
        as_count: 32,
        ..Default::default()
    });
    // Only the reachability queries: the q6 pattern references all of
    // $x,$y,$z, but with 2 prefixes at most two monitored links occur
    // in the database, and loss-lessness is checked world-by-world over
    // the *used* variables.
    let program = parse_program(
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
    )
    .unwrap();
    assert!(assert_lossless(&program, &w.db) >= 2);
}

// ---------------------------------------------------------------------------
// property-based cases: random c-tables, random conjunctive programs
// ---------------------------------------------------------------------------

/// A small random database over E(a,b) with two Bool01 c-variables and
/// a 3-constant attribute domain.
fn arb_db() -> impl Strategy<Value = Database> {
    // Rows: (a, b, cond-code) where cells ∈ {0,1,2, var0, var1} and
    // cond ∈ {true, v0=1, v0=0, v1=1, v0=1&v1=0}.
    let cell = 0usize..5;
    let cond = 0usize..5;
    prop::collection::vec((cell.clone(), cell, cond), 1..6).prop_map(|rows| {
        let mut db = Database::new();
        let v0 = db.fresh_cvar("v0", Domain::Ints(vec![0, 1, 2]));
        let v1 = db.fresh_cvar("v1", Domain::Ints(vec![0, 1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        let mk_cell = |code: usize| match code {
            0..=2 => Term::Const(Const::Int(code as i64)),
            3 => Term::Var(v0),
            _ => Term::Var(v1),
        };
        let mk_cond = |code: usize| match code {
            0 => Condition::True,
            1 => Condition::eq(Term::Var(v0), Term::int(1)),
            2 => Condition::ne(Term::Var(v0), Term::int(0)),
            3 => Condition::eq(Term::Var(v1), Term::int(1)),
            _ => Condition::eq(Term::Var(v0), Term::int(1))
                .and(Condition::ne(Term::Var(v1), Term::int(0))),
        };
        for (a, b, c) in rows {
            db.insert("E", CTuple::with_cond([mk_cell(a), mk_cell(b)], mk_cond(c)))
                .unwrap();
        }
        // Always use both c-variables somewhere so world enumeration
        // covers them (programs may reference $v0/$v1 in comparisons).
        db.insert("E", CTuple::new([Term::Var(v0), Term::Var(v1)]))
            .unwrap();
        db
    })
}

/// A small random program over E: joins, projections, constants,
/// comparisons, optional recursion and negation (stratified by
/// construction).
fn arb_program() -> impl Strategy<Value = faure_core::Program> {
    let variant = 0usize..6;
    let k = 0i64..3;
    (variant, k).prop_map(|(v, k)| {
        let src = match v {
            0 => format!("Q(a) :- E(a, b), b = {k}.\n"),
            1 => "Q(a, c) :- E(a, b), E(b, c).\n".to_string(),
            2 => format!("Q(a) :- E(a, a), a != {k}.\n"),
            3 => "R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n".to_string(),
            4 => format!("Q(a) :- E(a, b), !E(b, a), b = {k}.\n"),
            _ => format!("Q(a) :- E(a, b), $v0 + $v1 < {}.\n", k + 2),
        };
        parse_program(&src).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lossless_on_random_databases(db in arb_db(), program in arb_program()) {
        assert_lossless(&program, &db);
    }
}
