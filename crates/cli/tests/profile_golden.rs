//! Golden-output test for the `faure profile` text report.
//!
//! The report is driven through [`cmd_profile_with_clock`] with a
//! [`ManualClock`] pinned at 0 and one worker thread, over an all-ground
//! fixture (no c-variables, so no solver-latency sampling): every span
//! duration renders as `0ns` and every counter is deterministic. The
//! few remaining wall-clock figures (`PhaseStats` durations are
//! measured with real `Instant`s regardless of the trace clock) are
//! scrubbed to `<T>` before comparison, so the golden file pins the
//! report's *structure* — sections, column layout, counters, rule
//! listing — not machine speed.
//!
//! To regenerate after an intentional rendering change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p faure-cli --test profile_golden
//! ```

use faure_cli::{cmd_profile_with_clock, EngineKnobs};
use faure_trace::ManualClock;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/profile")
}

/// Replaces every `<number><unit>` time token (`ns`, `µs`, `ms`, `s`)
/// with `<T>`, leaving counters and layout intact. A token is a
/// maximal run of digits and dots immediately followed by a unit that
/// is itself followed by a non-alphanumeric boundary, so `500ns`,
/// `1.5µs`, `2.50ms` and `3.00s` scrub while `5 checks` or `q45` do
/// not.
fn scrub_times(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                i += 1;
            }
            let rest = &s[i..];
            let unit = ["ns", "µs", "ms", "s"]
                .into_iter()
                .find(|u| rest.starts_with(u))
                .filter(|u| {
                    rest[u.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| !c.is_alphanumeric())
                });
            match unit {
                Some(u) => {
                    out.push_str("<T>");
                    i += u.len();
                }
                None => out.push_str(&s[start..i]),
            }
        } else {
            let ch = s[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

#[test]
fn profile_report_matches_golden_file() {
    let dir = fixture_dir();
    let program = fs::read_to_string(dir.join("reach.fl")).expect("fixture program");
    let db = fs::read_to_string(dir.join("ground.fdb")).expect("fixture database");
    let report = cmd_profile_with_clock(
        "reach.fl",
        &program,
        "ground.fdb",
        &db,
        &EngineKnobs::threads(Some(1)),
        Arc::new(ManualClock::new()),
    )
    .expect("profile succeeds");
    let got = scrub_times(&report);

    let expected_path = dir.join("profile.expected");
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::write(&expected_path, &got).expect("write expected file");
        return;
    }
    let expected = fs::read_to_string(&expected_path)
        .expect("profile.expected missing — run with GOLDEN_UPDATE=1");
    assert_eq!(
        got, expected,
        "profile report drifted from the golden file (GOLDEN_UPDATE=1 regenerates)"
    );
}

#[test]
fn scrub_times_handles_all_units() {
    assert_eq!(
        scrub_times("total 1.23ms (solver 500ns)"),
        "total <T> (solver <T>)"
    );
    assert_eq!(
        scrub_times("p50 \u{2264} 1.5\u{b5}s p99 \u{2264} 3.00s"),
        "p50 \u{2264} <T> p99 \u{2264} <T>"
    );
    // Counters and identifiers survive.
    assert_eq!(
        scrub_times("5 checks, q45, 10 tuples"),
        "5 checks, q45, 10 tuples"
    );
    assert_eq!(scrub_times("0ns"), "<T>");
}
