//! Theory solver: decides conjunctions of atoms.
//!
//! Given a conjunction of comparison atoms, this module decides whether
//! an assignment of the mentioned c-variables satisfies all of them,
//! and produces one if so. It is a small, exact CSP solver:
//!
//! * variables with finite domains are enumerated with backtracking and
//!   eager atom evaluation (an atom is checked as soon as all its
//!   variables are assigned);
//! * variables with *open* domains participate only in equality /
//!   disequality atoms (anything else is [`SolverError::OpenDomainArith`]);
//!   for them the classic infinite-domain argument applies — it
//!   suffices to consider the constants mentioned in the conjunction
//!   plus one fresh value per variable, which makes the enumeration
//!   complete;
//! * variables inside linear expressions must have numeric domains
//!   ([`SolverError::NonNumericLinear`] otherwise).
//!
//! The conjunctions fauré generates are small (a handful of variables
//! with domains like `{0,1}`), so exhaustive search with eager checking
//! is both exact and fast; see `faure-bench`'s solver benchmarks.

use crate::error::SolverError;
use faure_ctable::{
    intern, Assignment, Atom, CVarId, CVarRegistry, CmpOp, Const, Domain, Expr, Term,
};
use std::collections::{BTreeMap, BTreeSet};

/// Decides a conjunction of atoms. Returns a satisfying assignment of
/// every mentioned c-variable, or `None` if the conjunction is
/// unsatisfiable.
pub fn check_conjunction(
    reg: &CVarRegistry,
    atoms: &[Atom],
) -> Result<Option<Assignment>, SolverError> {
    // Fast path: evaluate ground atoms immediately and drop them.
    let mut pending: Vec<&Atom> = Vec::with_capacity(atoms.len());
    for a in atoms {
        let mut vars = BTreeSet::new();
        a.cvars(&mut vars);
        if vars.is_empty() {
            match a.eval(&|_| unreachable!("ground atom")) {
                Some(true) => {}
                // `None` can only arise from a non-integer constant in a
                // linear expression, which cannot be satisfied.
                Some(false) | None => return Ok(None),
            }
        } else {
            pending.push(a);
        }
    }
    if pending.is_empty() {
        return Ok(Some(Assignment::new()));
    }

    let csp = Csp::build(reg, &pending)?;
    Ok(csp.solve())
}

/// One variable of the CSP with its concrete candidate values.
struct CspVar {
    id: CVarId,
    candidates: Vec<Const>,
}

struct Csp<'a> {
    vars: Vec<CspVar>,
    /// For each atom, the indices (into `vars`) of the variables it
    /// mentions; the atom is evaluated when the last of them is assigned.
    atoms: Vec<(&'a Atom, Vec<usize>)>,
    /// atoms_by_last[i] = atoms whose highest-indexed variable is i.
    atoms_by_last: Vec<Vec<usize>>,
}

impl<'a> Csp<'a> {
    fn build(reg: &CVarRegistry, pending: &[&'a Atom]) -> Result<Self, SolverError> {
        // Classify how each variable is used.
        let mut arith_vars = BTreeSet::new(); // order atoms or linear exprs
        let mut lin_vars = BTreeSet::new(); // inside linear expressions
        let mut all_vars = BTreeSet::new();
        let mut mentioned_consts: BTreeSet<Const> = BTreeSet::new();

        for a in pending {
            let mut vars = BTreeSet::new();
            a.cvars(&mut vars);
            all_vars.extend(vars.iter().copied());
            let is_order = !matches!(a.op, CmpOp::Eq | CmpOp::Ne);
            for side in [&a.lhs, &a.rhs] {
                match side {
                    Expr::Term(Term::Var(v)) => {
                        if is_order {
                            arith_vars.insert(*v);
                        }
                    }
                    Expr::Term(Term::Const(c)) => {
                        mentioned_consts.insert(c.clone());
                    }
                    Expr::Lin(l) => {
                        for &(_, v) in &l.terms {
                            arith_vars.insert(v);
                            lin_vars.insert(v);
                        }
                    }
                }
            }
        }

        // Open-domain candidates must cover every constant an open
        // variable could be forced to equal: constants mentioned in the
        // atoms AND the domain members of participating finite-domain
        // variables (e.g. `h̄ = ȳ` with `ȳ ∈ {CS, GS}` needs `GS` as a
        // candidate for the open `h̄`).
        for &v in &all_vars {
            if let Some(members) = reg.domain(v).members() {
                mentioned_consts.extend(members);
            }
        }

        // Shared fresh pool for open-domain variables: with k open
        // variables, k fresh values (distinct from every mentioned
        // constant and from each other) suffice to realise every
        // equality/disequality pattern among them — each variable's
        // candidate set is the mentioned constants plus the whole pool.
        // (A *per-variable* fresh value would wrongly make `ō₁ = ō₂`
        // unsatisfiable.)
        let open_count = all_vars
            .iter()
            .filter(|v| reg.domain(**v).members().is_none())
            .count();
        let fresh_pool: Vec<Const> = (0..open_count)
            .map(|i| Const::Sym(intern(&format!("\u{27e8}fresh:{i}\u{27e9}"))))
            .collect();

        // Validate the fragment and compute candidate values per variable.
        let mut vars = Vec::new();
        for &v in &all_vars {
            let domain = reg.domain(v);
            if lin_vars.contains(&v) && !domain.is_numeric() && *domain != Domain::Open {
                return Err(SolverError::NonNumericLinear {
                    cvar: reg.name(v).to_owned(),
                });
            }
            let candidates = match domain.members() {
                Some(members) => members,
                None => {
                    if arith_vars.contains(&v) {
                        return Err(SolverError::OpenDomainArith {
                            cvar: reg.name(v).to_owned(),
                        });
                    }
                    // Open domain in Eq/Ne atoms only.
                    let mut cands: Vec<Const> = mentioned_consts.iter().cloned().collect();
                    cands.extend(fresh_pool.iter().cloned());
                    cands
                }
            };
            vars.push(CspVar { id: v, candidates });
        }

        // Order variables by candidate count (fail-first heuristic).
        vars.sort_by_key(|v| v.candidates.len());
        let position: BTreeMap<CVarId, usize> =
            vars.iter().enumerate().map(|(i, v)| (v.id, i)).collect();

        let mut atoms = Vec::with_capacity(pending.len());
        let mut atoms_by_last = vec![Vec::new(); vars.len()];
        for (ai, a) in pending.iter().enumerate() {
            let mut vs = BTreeSet::new();
            a.cvars(&mut vs);
            let idxs: Vec<usize> = vs.iter().map(|v| position[v]).collect();
            let last = *idxs.iter().max().expect("non-ground atom");
            atoms.push((*a, idxs));
            atoms_by_last[last].push(ai);
        }

        Ok(Csp {
            vars,
            atoms,
            atoms_by_last,
        })
    }

    fn solve(&self) -> Option<Assignment> {
        let mut values: Vec<Option<Const>> = vec![None; self.vars.len()];
        if self.assign(0, &mut values) {
            Some(Assignment::from_pairs(
                self.vars
                    .iter()
                    .zip(values)
                    .map(|(v, c)| (v.id, c.expect("complete assignment"))),
            ))
        } else {
            None
        }
    }

    fn assign(&self, depth: usize, values: &mut Vec<Option<Const>>) -> bool {
        if depth == self.vars.len() {
            return true;
        }
        // Clone out the candidate list to appease the borrow checker;
        // candidate lists are tiny.
        for cand in &self.vars[depth].candidates {
            values[depth] = Some(cand.clone());
            if self.consistent_at(depth, values) && self.assign(depth + 1, values) {
                return true;
            }
        }
        values[depth] = None;
        false
    }

    /// Checks every atom whose variables are now all assigned (i.e.
    /// whose highest variable index is `depth`).
    fn consistent_at(&self, depth: usize, values: &[Option<Const>]) -> bool {
        let id_of = |pos: usize| self.vars[pos].id;
        for &ai in &self.atoms_by_last[depth] {
            let (atom, idxs) = &self.atoms[ai];
            debug_assert!(idxs.iter().all(|&i| values[i].is_some()));
            let lookup = |v: CVarId| -> Option<Const> {
                let pos = self
                    .vars
                    .iter()
                    .position(|cv| cv.id == v)
                    .expect("atom variable registered");
                debug_assert_eq!(id_of(pos), v);
                values[pos].clone()
            };
            match atom.eval(&lookup) {
                Some(true) => {}
                // `None` = unassigned variable (excluded by the
                // `atoms_by_last` grouping) or a non-integer value in a
                // linear expression: this candidate cannot satisfy the
                // atom.
                Some(false) | None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::LinExpr;

    fn atom(lhs: impl Into<Expr>, op: CmpOp, rhs: impl Into<Expr>) -> Atom {
        Atom::new(lhs, op, rhs)
    }

    #[test]
    fn empty_conjunction_is_sat() {
        let reg = CVarRegistry::new();
        assert!(check_conjunction(&reg, &[]).unwrap().is_some());
    }

    #[test]
    fn ground_contradiction() {
        let reg = CVarRegistry::new();
        let a = atom(Term::int(1), CmpOp::Eq, Term::int(2));
        assert!(check_conjunction(&reg, &[a]).unwrap().is_none());
    }

    #[test]
    fn finite_domain_eq_chain() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        // x = y ∧ x ≠ 0  ⇒  x = y = 1
        let atoms = [
            atom(Term::Var(x), CmpOp::Eq, Term::Var(y)),
            atom(Term::Var(x), CmpOp::Ne, Term::int(0)),
        ];
        let m = check_conjunction(&reg, &atoms).unwrap().unwrap();
        assert_eq!(m.get(x), Some(&Const::Int(1)));
        assert_eq!(m.get(y), Some(&Const::Int(1)));
    }

    #[test]
    fn finite_domain_unsat() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let atoms = [
            atom(Term::Var(x), CmpOp::Ne, Term::int(0)),
            atom(Term::Var(x), CmpOp::Ne, Term::int(1)),
        ];
        assert!(check_conjunction(&reg, &atoms).unwrap().is_none());
    }

    #[test]
    fn linear_sum_constraint() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let z = reg.fresh("z", Domain::Bool01);
        // x+y+z = 1 ∧ y = 0 ∧ z = 0 ⇒ x = 1
        let atoms = [
            atom(LinExpr::sum([x, y, z]), CmpOp::Eq, LinExpr::constant(1)),
            atom(Term::Var(y), CmpOp::Eq, Term::int(0)),
            atom(Term::Var(z), CmpOp::Eq, Term::int(0)),
        ];
        let m = check_conjunction(&reg, &atoms).unwrap().unwrap();
        assert_eq!(m.get(x), Some(&Const::Int(1)));
        // x+y+z = 4 over {0,1} is unsat.
        let unsat = [atom(
            LinExpr::sum([x, y, z]),
            CmpOp::Eq,
            LinExpr::constant(4),
        )];
        assert!(check_conjunction(&reg, &unsat).unwrap().is_none());
    }

    #[test]
    fn linear_inequalities() {
        let mut reg = CVarRegistry::new();
        let y = reg.fresh("y", Domain::Bool01);
        let z = reg.fresh("z", Domain::Bool01);
        // y+z < 2 ∧ y+z > 0 ⇒ exactly one of y,z is 1
        let atoms = [
            atom(LinExpr::sum([y, z]), CmpOp::Lt, LinExpr::constant(2)),
            atom(LinExpr::sum([y, z]), CmpOp::Gt, LinExpr::constant(0)),
        ];
        let m = check_conjunction(&reg, &atoms).unwrap().unwrap();
        let sum = m.get(y).unwrap().as_int().unwrap() + m.get(z).unwrap().as_int().unwrap();
        assert_eq!(sum, 1);
    }

    #[test]
    fn open_domain_equalities_complete() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Open);
        let y = reg.fresh("y", Domain::Open);
        // x ≠ Mkt ∧ x ≠ R&D is satisfiable (fresh value exists).
        let atoms = [
            atom(Term::Var(x), CmpOp::Ne, Term::sym("Mkt")),
            atom(Term::Var(x), CmpOp::Ne, Term::sym("R&D")),
        ];
        assert!(check_conjunction(&reg, &atoms).unwrap().is_some());
        // x = y ∧ x = Mkt ∧ y ≠ Mkt is unsat.
        let atoms = [
            atom(Term::Var(x), CmpOp::Eq, Term::Var(y)),
            atom(Term::Var(x), CmpOp::Eq, Term::sym("Mkt")),
            atom(Term::Var(y), CmpOp::Ne, Term::sym("Mkt")),
        ];
        assert!(check_conjunction(&reg, &atoms).unwrap().is_none());
    }

    #[test]
    fn open_domain_order_rejected() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Open);
        let atoms = [atom(Term::Var(x), CmpOp::Lt, Term::int(5))];
        assert_eq!(
            check_conjunction(&reg, &atoms),
            Err(SolverError::OpenDomainArith { cvar: "x".into() })
        );
    }

    #[test]
    fn non_numeric_linear_rejected() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Consts(vec![Const::sym("a")]));
        let atoms = [atom(LinExpr::var(x), CmpOp::Eq, LinExpr::constant(1))];
        assert_eq!(
            check_conjunction(&reg, &atoms),
            Err(SolverError::NonNumericLinear { cvar: "x".into() })
        );
    }

    #[test]
    fn order_over_finite_symbolic_domain_allowed() {
        // Ordering two finite-domain symbolic values falls back to the
        // structural order on Const; exactness is preserved because the
        // domain is enumerated.
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Consts(vec![Const::sym("a"), Const::sym("b")]));
        let atoms = [atom(Term::Var(x), CmpOp::Gt, Term::sym("a"))];
        let m = check_conjunction(&reg, &atoms).unwrap().unwrap();
        assert_eq!(m.get(x), Some(&Const::sym("b")));
    }

    #[test]
    fn mixed_ports_example() {
        // The paper's C_s: p̄ ≠ 80 ∧ p̄ ≠ 344 ∧ p̄ ≠ 7000 over the port
        // domain {80, 344, 7000, 8080}.
        let mut reg = CVarRegistry::new();
        let p = reg.fresh("p", Domain::Ints(vec![80, 344, 7000, 8080]));
        let atoms = [
            atom(Term::Var(p), CmpOp::Ne, Term::int(80)),
            atom(Term::Var(p), CmpOp::Ne, Term::int(344)),
            atom(Term::Var(p), CmpOp::Ne, Term::int(7000)),
        ];
        let m = check_conjunction(&reg, &atoms).unwrap().unwrap();
        assert_eq!(m.get(p), Some(&Const::Int(8080)));
        // Restrict the domain to the three ports: unsat.
        let mut reg2 = CVarRegistry::new();
        let p2 = reg2.fresh("p", Domain::Ints(vec![80, 344, 7000]));
        let atoms2 = [
            atom(Term::Var(p2), CmpOp::Ne, Term::int(80)),
            atom(Term::Var(p2), CmpOp::Ne, Term::int(344)),
            atom(Term::Var(p2), CmpOp::Ne, Term::int(7000)),
        ];
        assert!(check_conjunction(&reg2, &atoms2).unwrap().is_none());
    }
}
