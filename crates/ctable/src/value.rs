//! Constants of the attribute domain (`dom` in the paper).

use crate::symbol::{intern, Symbol};
use std::fmt;
use std::sync::Arc;

/// A constant value that may appear in a table cell.
///
/// The paper's examples use destinations (`1.2.3.4`), node identifiers
/// (`1`..`5`), symbolic names (`Mkt`, `CS`), ports (`80`, `7000`), and
/// paths (`[A,B,C]`). These map to:
///
/// * [`Const::Int`] — integers (ports, node ids, link states 0/1);
/// * [`Const::Sym`] — interned strings (names, prefixes);
/// * [`Const::List`] — sequences of constants (AS paths, router paths).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// An interned symbolic constant.
    Sym(Symbol),
    /// A list constant, e.g. an AS path `[ABC]`.
    List(Arc<[Const]>),
}

impl Const {
    /// Convenience constructor for symbolic constants.
    pub fn sym(name: &str) -> Self {
        Const::Sym(intern(name))
    }

    /// Convenience constructor for integer constants.
    pub fn int(v: i64) -> Self {
        Const::Int(v)
    }

    /// Convenience constructor for list (path) constants.
    pub fn list<I: IntoIterator<Item = Const>>(items: I) -> Self {
        Const::List(items.into_iter().collect::<Vec<_>>().into())
    }

    /// Builds a path constant out of node names, e.g. `path(&["A","B","C"])`.
    pub fn path(names: &[&str]) -> Self {
        Const::list(names.iter().map(|n| Const::sym(n)))
    }

    /// Returns the integer payload if this is an [`Const::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the symbol payload if this is a [`Const::Sym`].
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            Const::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Number of elements if this is a list constant.
    pub fn list_len(&self) -> Option<usize> {
        match self {
            Const::List(items) => Some(items.len()),
            _ => None,
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Sym(s) => write!(f, "{s}"),
            Const::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Self {
        Const::sym(s)
    }
}

impl From<Symbol> for Const {
    fn from(s: Symbol) -> Self {
        Const::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Const::int(7000).to_string(), "7000");
        assert_eq!(Const::sym("Mkt").to_string(), "Mkt");
        assert_eq!(Const::path(&["A", "B", "C"]).to_string(), "[A,B,C]");
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Const::path(&["A", "B"]), Const::path(&["A", "B"]));
        assert_ne!(Const::path(&["A", "B"]), Const::path(&["B", "A"]));
        assert_ne!(Const::int(1), Const::sym("1"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Const::int(3).as_int(), Some(3));
        assert_eq!(Const::sym("x").as_int(), None);
        assert_eq!(Const::path(&["A", "B", "C"]).list_len(), Some(3));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            Const::sym("b"),
            Const::int(2),
            Const::sym("a"),
            Const::int(1),
        ];
        v.sort();
        // Ints sort before syms (enum order), and within a variant by value.
        assert_eq!(
            v,
            vec![
                Const::int(1),
                Const::int(2),
                Const::sym("a"),
                Const::sym("b")
            ]
        );
    }
}
