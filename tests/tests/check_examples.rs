//! `faure check` over every shipped example program: the examples must
//! stay diagnostic-clean (no errors, no warnings), and the analyzer
//! must exercise at least five distinct diagnostic classes on a
//! deliberately broken program.

use faure_analyze::{check_source, Severity};
use std::path::PathBuf;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples/programs")
}

#[test]
fn every_example_program_checks_clean() {
    let dir = programs_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("fl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let report = check_source(&src);
        assert!(
            report.is_empty(),
            "{} has diagnostics:\n{}",
            path.display(),
            report.render(&src, path.to_str().unwrap())
        );
        checked += 1;
    }
    assert!(checked >= 5, "expected at least 5 example programs");
}

#[test]
fn broken_program_yields_many_distinct_diagnostic_classes() {
    // One program tripping six diagnostic classes in a single run.
    let src = "\
R(a, b) :- F(a).\n\
S(x) :- F(x, x), x < 2, x > 5.\n\
P(q) :- N(q), !Q(q).\n\
Q(q) :- N(q), !P(q).\n\
Dead(a) :- Dead(a).\n\
T(a) :- F(a, b, c).\n";
    let report = check_source(src);
    let mut codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    assert!(
        codes.len() >= 5,
        "expected >= 5 distinct classes, got {codes:?}\n{}",
        report.render(src, "broken.fl")
    );
    assert!(report.has_errors());
    // Errors and warnings coexist in one report (not fail-fast).
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Warning));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error));
}
