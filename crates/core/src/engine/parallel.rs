//! Data-parallel rule evaluation.
//!
//! The depth-0 match list computed by [`super::rule::eval_rule`] is cut
//! into **fixed-size contiguous chunks** — several per worker — and the
//! chunks are pulled by `std::thread::scope` workers from a shared
//! atomic cursor (work stealing). A fixed balanced split handed each
//! worker exactly one range, so one expensive range (recursive rules
//! concentrate work in the first matches) left the other workers idle;
//! with finer self-scheduled chunks a worker that finishes early simply
//! pulls the next chunk. Each chunk runs the identical per-match code
//! ([`super::rule::eval_match`]) over shared immutable state (tables,
//! plan, c-variable registry).
//!
//! Determinism falls out of the chunk *indexing*, not the schedule:
//! workers tag every output with its chunk index, and the driver
//! reassembles partitions — and buffered trace events — in chunk index
//! order. Concatenating the partitions reproduces the serial
//! enumeration order exactly, so the merged tables (conditions
//! included) and the trace stream are bit-identical regardless of which
//! worker ran which chunk.
//!
//! Each worker owns its substitution, condition accumulator, operator
//! counters, and solver [`Session`]. The sessions are backed by the
//! run's shared lock-sharded [`faure_solver::SharedMemo`], so a
//! condition decided by one worker is a memo hit for every other (and
//! for later fixpoint iterations). Sharing the memo is sound under
//! races because it caches ground truth: satisfiability of a condition
//! is a deterministic function of the condition given the (append-only)
//! c-variable registry.

use super::rule::eval_match;
use super::{Ctx, EvalError, EvalOptions};
use crate::ast::Rule;
use crate::plan::RulePlan;
use faure_ctable::{Condition, Term};
use faure_solver::{Session, SolverStats};
use faure_storage::{CondAcc, OpStats, PreparedRow, Table};
use faure_trace::Event;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Chunks-per-worker granularity. Smaller chunks balance skewed match
/// lists better but cost one cursor increment (and one partition) each;
/// 8 per worker keeps the steal overhead well under a percent while
/// bounding the idle tail to ~1/8 of one worker's share.
const CHUNKS_PER_WORKER: usize = 8;

/// The fixed chunk size for `len` matches on `workers` threads:
/// `len / (workers * CHUNKS_PER_WORKER)`, rounded up, never zero.
fn chunk_size(len: usize, workers: usize) -> usize {
    len.div_ceil(workers * CHUNKS_PER_WORKER).max(1)
}

/// Evaluates the depth-0 matches of one rule pass across worker
/// threads, returning the derived rows as one partition per chunk (in
/// chunk index order). Worker statistics are folded into the caller's
/// counters; the error from the lowest-indexed failing chunk is
/// propagated after all workers have joined.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_partitioned(
    ctx: &Ctx<'_>,
    rule: &Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    base_acc: &CondAcc,
    matches: &[(usize, Condition)],
    opts: &EvalOptions,
    session: &mut Session,
    ops: &mut OpStats,
) -> Result<Vec<Vec<PreparedRow>>, EvalError> {
    let memo = &ctx.shared_memo;
    let workers = opts.threads.min(matches.len());
    let size = chunk_size(matches.len(), workers);
    let n_chunks = matches.len().div_ceil(size);
    super::publish::publish_parallel(workers, n_chunks);
    let cursor = AtomicUsize::new(0);

    /// One chunk's output, tagged with its index for in-order reassembly.
    struct ChunkOut {
        chunk_idx: usize,
        rows: Vec<PreparedRow>,
        event: Option<Event>,
    }
    type WorkerResult = (
        Vec<ChunkOut>,
        OpStats,
        SolverStats,
        Option<(usize, EvalError)>,
    );
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let memo = Arc::clone(memo);
                let cursor = &cursor;
                scope.spawn(move || -> WorkerResult {
                    let mut worker_session = Session::with_shared(memo);
                    let mut worker_ops = OpStats::default();
                    let mut theta: HashMap<&str, Term> = HashMap::new();
                    let mut acc = base_acc.clone();
                    let mut outputs = Vec::new();
                    let mut failure: Option<(usize, EvalError)> = None;
                    // Pull chunks until the cursor runs dry (or this
                    // worker hits an error — its siblings drain the
                    // remaining chunks).
                    loop {
                        let chunk_idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk_idx >= n_chunks {
                            break;
                        }
                        let lo = chunk_idx * size;
                        let hi = (lo + size).min(matches.len());
                        let chunk = &matches[lo..hi];
                        let t_chunk = ctx.tracer.now_ns();
                        let mut out = Vec::new();
                        let mut err = None;
                        for (row_idx, mu) in chunk {
                            if let Err(e) = eval_match(
                                ctx,
                                rule,
                                plan,
                                tables,
                                delta_table,
                                *row_idx,
                                mu,
                                &mut theta,
                                &mut acc,
                                &mut worker_session,
                                opts,
                                &mut worker_ops,
                                &mut out,
                            ) {
                                err = Some(e);
                                break;
                            }
                        }
                        if let Some(e) = err {
                            failure = Some((chunk_idx, e));
                            break;
                        }
                        // Workers never write to the sink directly: the
                        // span is buffered here and submitted by the
                        // driver in chunk index order, keeping the event
                        // stream deterministic. The track is the chunk
                        // index, not an OS thread id, for the same
                        // reason.
                        let event = ctx.tracer.is_enabled().then(|| {
                            let t_end = ctx.tracer.now_ns();
                            Event {
                                cat: "worker",
                                name: "chunk",
                                start_ns: t_chunk,
                                dur_ns: t_end.saturating_sub(t_chunk),
                                track: chunk_idx as u32 + 1,
                                args: vec![
                                    ("chunk", chunk_idx.into()),
                                    ("matches", chunk.len().into()),
                                    ("rows_out", out.len().into()),
                                ],
                            }
                        });
                        outputs.push(ChunkOut {
                            chunk_idx,
                            rows: out,
                            event,
                        });
                    }
                    (outputs, worker_ops, worker_session.stats(), failure)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rule evaluation worker panicked"))
            .collect()
    });

    let mut chunk_outs: Vec<ChunkOut> = Vec::with_capacity(n_chunks);
    let mut first_err: Option<(usize, EvalError)> = None;
    for (outputs, worker_ops, worker_stats, failure) in results {
        ops.absorb(&worker_ops);
        session.absorb_stats(&worker_stats);
        chunk_outs.extend(outputs);
        if let Some((idx, e)) = failure {
            if first_err.as_ref().is_none_or(|(fi, _)| idx < *fi) {
                first_err = Some((idx, e));
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    // Reassemble in chunk index order: the concatenation equals the
    // serial enumeration order, whatever the steal schedule was.
    chunk_outs.sort_by_key(|c| c.chunk_idx);
    let mut partitions = Vec::with_capacity(chunk_outs.len());
    let mut trace_events = Vec::new();
    for c in chunk_outs {
        partitions.push(c.rows);
        trace_events.extend(c.event);
    }
    ctx.tracer.submit(trace_events);
    Ok(partitions)
}

#[cfg(test)]
mod tests {
    use super::{chunk_size, CHUNKS_PER_WORKER};

    #[test]
    fn chunk_size_is_fine_grained_and_covers_all_matches() {
        for (len, workers) in [
            (10usize, 4usize),
            (7, 7),
            (5, 2),
            (3, 3),
            (1000, 16),
            (1, 1),
        ] {
            let size = chunk_size(len, workers);
            assert!(size >= 1);
            let n_chunks = len.div_ceil(size);
            // Covers everything…
            assert!(n_chunks * size >= len);
            assert!((n_chunks - 1) * size < len);
            // …and is finer than one chunk per worker once there is
            // enough work to split (ceiling rounding can lose a few
            // chunks off `workers * CHUNKS_PER_WORKER`, never below
            // one steal per worker).
            if len >= workers * CHUNKS_PER_WORKER {
                assert!(
                    n_chunks > workers * (CHUNKS_PER_WORKER / 2),
                    "len={len} workers={workers} n_chunks={n_chunks}"
                );
            }
        }
    }
}
