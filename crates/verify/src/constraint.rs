//! Named constraints.

use faure_core::{parse_program, ParseError, Program, GOAL};
use std::fmt;

/// A named network constraint: a fauré-log program whose goal is the
/// 0-ary `panic` predicate. The constraint *holds* on a state iff the
/// program derives no (satisfiable) `panic` there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Human-readable name (`T1`, `C_s`, …).
    pub name: String,
    /// The panic program.
    pub program: Program,
}

/// Constraint construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// The program has no `panic` rule.
    NoGoal,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::Parse(e) => write!(f, "{e}"),
            ConstraintError::NoGoal => write!(f, "constraint has no `panic` rule"),
        }
    }
}

impl std::error::Error for ConstraintError {}

impl Constraint {
    /// Wraps an already-parsed program.
    pub fn new(name: impl Into<String>, program: Program) -> Result<Self, ConstraintError> {
        if !program.rules.iter().any(|r| r.head.pred == GOAL) {
            return Err(ConstraintError::NoGoal);
        }
        Ok(Constraint {
            name: name.into(),
            program,
        })
    }

    /// Parses a constraint from fauré-log source text.
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Self, ConstraintError> {
        let program = parse_program(src).map_err(ConstraintError::Parse)?;
        Constraint::new(name, program)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "% constraint {}", self.name)?;
        write!(f, "{}", self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_constraint() {
        let c = Constraint::parse("T1", "panic :- R(Mkt, CS, p), !Fw(Mkt, CS).\n").unwrap();
        assert_eq!(c.name, "T1");
        assert_eq!(c.program.rules.len(), 1);
    }

    #[test]
    fn reject_goalless_program() {
        assert_eq!(
            Constraint::parse("bad", "V(x) :- R(x).\n").unwrap_err(),
            ConstraintError::NoGoal
        );
    }

    #[test]
    fn reject_unparseable() {
        assert!(matches!(
            Constraint::parse("bad", "not a program"),
            Err(ConstraintError::Parse(_))
        ));
    }

    #[test]
    fn display_includes_name() {
        let c = Constraint::parse("T1", "panic :- R(Mkt, CS, p), !Fw(Mkt, CS).\n").unwrap();
        let s = c.to_string();
        assert!(s.contains("% constraint T1"));
        assert!(s.contains("panic :-"));
    }
}
