//! Textual BGP RIB import.
//!
//! The paper derives its forwarding configuration "from BGP RIB
//! (route-views2.oregon-ix.net)". Route-views publishes its table in
//! the classic `show ip bgp` layout; this module parses that layout
//! (the fields fauré needs: network and AS path) so real dumps can be
//! fed to the engine, and converts the parsed entries into the same
//! primary/backup c-table encoding as the synthetic generator
//! ([`crate::rib`]):
//!
//! ```text
//!    Network          Next Hop            Metric LocPrf Weight Path
//! *> 1.0.0.0/24       203.0.113.1              0             0 701 38040 9737 i
//! *  1.0.0.0/24       198.51.100.7                           0 3356 9737 i
//! *                   192.0.2.9                              0 2914 9737 i
//! ```
//!
//! Parsing rules (matching route-views quirks):
//!
//! * only lines whose status column contains `*` (valid routes) count;
//! * a blank network column continues the previous prefix;
//! * the AS path is the run of integers before the origin code
//!   (`i`/`e`/`?`); `{...}` AS-sets are skipped;
//! * the best path (`>`) becomes the primary; remaining paths become
//!   preference-ordered backups (file order), capped at
//!   [`MAX_PATHS_PER_PREFIX`].

use crate::rib::RibWorkload;
use faure_ctable::{CTuple, CVarId, Condition, Database, Domain, Schema, Term};
use std::collections::BTreeMap;
use std::fmt;

/// Paths kept per prefix (1 primary + 4 backups, as in the paper).
pub const MAX_PATHS_PER_PREFIX: usize = 5;

/// One parsed RIB route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RibRoute {
    /// Destination prefix, e.g. `1.0.0.0/24`.
    pub prefix: String,
    /// AS path (left = nearest).
    pub as_path: Vec<u32>,
    /// Whether the route carries the best-path marker `>`.
    pub best: bool,
}

/// Parse errors (line-numbered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub msg: String,
}

impl fmt::Display for RibParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RIB parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for RibParseError {}

/// Parses a `show ip bgp`-style table into routes. Header lines and
/// non-route lines are skipped; malformed *route* lines are errors.
///
/// Column disambiguation: the `Metric`/`LocPrf`/`Weight` columns are
/// numeric, just like AS numbers, so token scanning alone cannot tell
/// where the path starts. When the table header (the line naming the
/// `Path` column) is present — it always is in real dumps — its byte
/// offset anchors the path column; otherwise a heuristic strips the
/// leading `0`/`32768` weight-like tokens.
pub fn parse_rib(text: &str) -> Result<Vec<RibRoute>, RibParseError> {
    let mut routes = Vec::new();
    let mut current_prefix: Option<String> = None;
    let mut path_col: Option<usize> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.contains("Network") && trimmed.contains("Path") {
            path_col = trimmed.find("Path");
            continue;
        }
        // Route lines start with a status field containing '*'.
        let Some(rest) = status_field(trimmed) else {
            continue;
        };
        let best = trimmed[..trimmed.len() - rest.trim_start().len()].contains('>')
            || rest_starts_best(trimmed);
        let rest = rest.trim_start();

        // Network column: a prefix token, or blank (continuation).
        let (prefix, after_net) = if looks_like_prefix(rest) {
            let (tok, after) = split_token(rest);
            (tok.to_owned(), after)
        } else {
            match &current_prefix {
                Some(p) => (p.clone(), rest),
                None => {
                    return Err(RibParseError {
                        line: lineno,
                        msg: "continuation line before any prefix".into(),
                    })
                }
            }
        };
        current_prefix = Some(prefix.clone());

        // Prefer the header-anchored path column.
        let path_text = path_col
            .and_then(|col| trimmed.get(col..))
            .filter(|s| !s.trim().is_empty())
            .unwrap_or(after_net);
        let as_path =
            parse_as_path(path_text, path_col.is_some()).ok_or_else(|| RibParseError {
                line: lineno,
                msg: "no AS path / origin code found".into(),
            })?;
        routes.push(RibRoute {
            prefix,
            as_path,
            best,
        });
    }
    Ok(routes)
}

/// Returns the text after the status columns if this is a route line.
fn status_field(line: &str) -> Option<&str> {
    let bytes = line.as_bytes();
    if bytes.first() != Some(&b'*') {
        return None;
    }
    // Status characters: * > d h r s S = i (then whitespace).
    let mut end = 0;
    for (i, b) in bytes.iter().enumerate() {
        if b" \t".contains(b) {
            end = i;
            break;
        }
        if !b"*>dhrsS=i".contains(b) {
            end = i;
            break;
        }
        end = i + 1;
    }
    Some(&line[end..])
}

fn rest_starts_best(line: &str) -> bool {
    line.starts_with("*>")
}

fn looks_like_prefix(s: &str) -> bool {
    // A network prefix carries a mask (`1.0.0.0/24`); a bare address in
    // this position is the next-hop of a continuation line.
    let (tok, _) = split_token(s);
    !tok.is_empty()
        && tok.chars().next().is_some_and(|c| c.is_ascii_digit())
        && tok.contains('/')
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '/' || c == ':')
}

fn split_token(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

/// Extracts the AS path: the run of integer tokens immediately before
/// the origin code at end of line. `{...}` aggregates are skipped.
///
/// With `anchored` (text starts at the header's `Path` column) every
/// integer token belongs to the path. Without an anchor, the leading
/// weight-like tokens (`0`, `32768`) are stripped — AS 0 is reserved
/// and never appears in real paths.
fn parse_as_path(rest: &str, anchored: bool) -> Option<Vec<u32>> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    let (&origin, body) = tokens.split_last()?;
    if !matches!(origin, "i" | "e" | "?") {
        return None;
    }
    let mut path = Vec::new();
    for t in body.iter().rev() {
        if t.starts_with('{') {
            continue; // AS-set aggregate: ignore
        }
        match t.parse::<u32>() {
            Ok(asn) => path.push(asn),
            // Stop at the first non-integer (that's the next-hop /
            // metric boundary).
            Err(_) => break,
        }
    }
    path.reverse();
    // AS 0 is reserved (RFC 7607) and never appears in real paths:
    // leading zeros are the weight/metric columns leaking in (their
    // exact column drifts with field widths even in real dumps).
    while path.len() > 1 && path[0] == 0 {
        path.remove(0);
    }
    if !anchored {
        // Unanchored parsing can also swallow the default local weight.
        while path.len() > 1 && path[0] == 32768 {
            path.remove(0);
        }
    }
    if path.is_empty() {
        return None;
    }
    path.truncate(16);
    Some(path)
}

/// Groups routes per prefix: best path first, then file order, capped
/// at [`MAX_PATHS_PER_PREFIX`].
pub fn group_routes(routes: &[RibRoute]) -> BTreeMap<String, Vec<Vec<u32>>> {
    let mut grouped: BTreeMap<String, Vec<(bool, Vec<u32>)>> = BTreeMap::new();
    for r in routes {
        grouped
            .entry(r.prefix.clone())
            .or_default()
            .push((r.best, r.as_path.clone()));
    }
    grouped
        .into_iter()
        .map(|(prefix, mut paths)| {
            // Stable: best first, others keep order.
            paths.sort_by_key(|(best, _)| !*best);
            let picked: Vec<Vec<u32>> = paths
                .into_iter()
                .map(|(_, p)| p)
                .take(MAX_PATHS_PER_PREFIX)
                .collect();
            (prefix, picked)
        })
        .collect()
}

/// Converts parsed routes into the paper's forwarding c-table, using
/// the same condition scheme as the synthetic generator: the primary
/// path is guarded by one of the three monitored link variables
/// (chosen round-robin per prefix), each backup by per-prefix
/// availability variables.
pub fn workload_from_routes(routes: &[RibRoute]) -> RibWorkload {
    let grouped = group_routes(routes);
    let mut db = Database::new();
    db.create_relation(Schema::new("F", &["f", "n1", "n2"]))
        .expect("fresh database");
    let x = db.fresh_cvar("x", Domain::Bool01);
    let y = db.fresh_cvar("y", Domain::Bool01);
    let z = db.fresh_cvar("z", Domain::Bool01);
    let monitored = [x, y, z];
    let mut primary_choice = Vec::new();

    for (pidx, (_prefix, paths)) in grouped.iter().enumerate() {
        let choice = (pidx % 3) as u8;
        primary_choice.push(choice);
        let g = monitored[choice as usize];
        let backups: Vec<CVarId> = (1..paths.len())
            .map(|i| db.fresh_cvar(format!("b{pidx}_{i}"), Domain::Bool01))
            .collect();
        for (i, path) in paths.iter().enumerate() {
            let cond = if i == 0 {
                Condition::eq(Term::Var(g), Term::int(1))
            } else {
                let mut c = Condition::eq(Term::Var(g), Term::int(0));
                for b in backups.iter().take(i - 1) {
                    c = c.and(Condition::eq(Term::Var(*b), Term::int(0)));
                }
                c.and(Condition::eq(Term::Var(backups[i - 1]), Term::int(1)))
            };
            for hop in path.windows(2) {
                db.insert(
                    "F",
                    CTuple::with_cond(
                        [
                            Term::int(pidx as i64),
                            Term::int(hop[0] as i64),
                            Term::int(hop[1] as i64),
                        ],
                        cond.clone(),
                    ),
                )
                .expect("arity 3");
            }
        }
    }

    RibWorkload {
        db,
        monitored,
        primary_choice,
    }
}

/// Renders a workload-shaped route list back into `show ip bgp` text —
/// useful for generating importable fixtures and for round-trip tests.
pub fn render_rib(routes: &[RibRoute]) -> String {
    let header = "   Network          Next Hop            Metric LocPrf Weight Path";
    let path_col = header.find("Path").expect("static header");
    let mut out = String::from(header);
    out.push('\n');
    let mut last_prefix = String::new();
    for r in routes {
        let status = if r.best { "*>" } else { "* " };
        let net = if r.prefix == last_prefix {
            " ".repeat(17)
        } else {
            format!("{:<17}", r.prefix)
        };
        last_prefix.clone_from(&r.prefix);
        let mut line = format!("{status} {net}192.0.2.1");
        // Weight column content, then the path anchored at `path_col`.
        let weight = "0 ";
        while line.len() + weight.len() < path_col {
            line.push(' ');
        }
        line.push_str(weight);
        let path = r
            .as_path
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        line.push_str(&path);
        line.push_str(" i\n");
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
BGP table version is 1000, local router ID is 198.32.162.100
Status codes: s suppressed, d damped, h history, * valid, > best, i - internal
   Network          Next Hop            Metric LocPrf Weight Path
*> 1.0.0.0/24       203.0.113.1              0             0 701 38040 9737 i
*  1.0.0.0/24       198.51.100.7                           0 3356 9737 i
*                   192.0.2.9                              0 2914 4826 9737 i
*> 1.0.4.0/22       203.0.113.1                            0 701 6939 4826 i
";

    #[test]
    fn parses_routes_and_continuations() {
        let routes = parse_rib(SAMPLE).unwrap();
        assert_eq!(routes.len(), 4);
        assert_eq!(routes[0].prefix, "1.0.0.0/24");
        assert_eq!(routes[0].as_path, vec![701, 38040, 9737]);
        assert!(routes[0].best);
        assert!(!routes[1].best);
        // Continuation line inherits the prefix.
        assert_eq!(routes[2].prefix, "1.0.0.0/24");
        assert_eq!(routes[2].as_path, vec![2914, 4826, 9737]);
        assert_eq!(routes[3].prefix, "1.0.4.0/22");
    }

    #[test]
    fn grouping_puts_best_first() {
        let routes = parse_rib(SAMPLE).unwrap();
        let grouped = group_routes(&routes);
        assert_eq!(grouped.len(), 2);
        let p = &grouped["1.0.0.0/24"];
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], vec![701, 38040, 9737]); // the best path
    }

    #[test]
    fn skips_headers_and_noise() {
        let routes = parse_rib("garbage\n\nNetwork Next Hop\n").unwrap();
        assert!(routes.is_empty());
    }

    #[test]
    fn continuation_without_prefix_is_error() {
        let err = parse_rib("*                 192.0.2.9   0 701 i\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn as_sets_are_skipped() {
        let routes = parse_rib("*> 9.0.0.0/8       192.0.2.1    0 701 {7046,1239} i\n").unwrap();
        assert_eq!(routes[0].as_path, vec![701]);
    }

    #[test]
    fn workload_from_text_runs_queries() {
        let routes = parse_rib(SAMPLE).unwrap();
        let w = workload_from_routes(&routes);
        let f = w.db.relation("F").unwrap();
        assert!(f.len() >= 5);
        // Reachability works end to end on imported data.
        let out = faure_core::evaluate(&crate::queries::reachability_program(), &w.db).unwrap();
        assert!(out.relation("R").unwrap().len() >= f.len());
    }

    #[test]
    fn render_parse_round_trip() {
        let routes = parse_rib(SAMPLE).unwrap();
        let text = render_rib(&routes);
        let reparsed = parse_rib(&text).unwrap();
        assert_eq!(routes.len(), reparsed.len());
        for (a, b) in routes.iter().zip(&reparsed) {
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(a.as_path, b.as_path);
            assert_eq!(a.best, b.best);
        }
    }

    #[test]
    fn path_conditions_are_exclusive_on_imported_data() {
        let routes = parse_rib(SAMPLE).unwrap();
        let w = workload_from_routes(&routes);
        // For prefix 0 (1.0.0.0/24), collect the distinct conditions.
        let f = w.db.relation("F").unwrap();
        let mut conds = Vec::new();
        for t in f.iter() {
            if t.terms[0] == Term::int(0) && !conds.contains(&t.cond) {
                conds.push(t.cond.clone());
            }
        }
        assert_eq!(conds.len(), 3); // 3 paths for 1.0.0.0/24
        for (i, a) in conds.iter().enumerate() {
            for b in conds.iter().skip(i + 1) {
                assert!(
                    !faure_solver::satisfiable(&w.db.cvars, &a.clone().and(b.clone())).unwrap()
                );
            }
        }
    }
}
