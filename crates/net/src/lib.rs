//! # faure-net — network substrates for Fauré
//!
//! Everything the paper's examples and evaluation run *on*:
//!
//! * [`topology`] — a small graph substrate (preferential-attachment
//!   topologies, random simple paths) used by the workload generators;
//! * [`frr`] — the fast-reroute configuration of Figure 1 / Table 3:
//!   protected links encoded by `{0,1}` c-variables, all possible
//!   forwarding behaviours in a single c-table `F`;
//! * [`queries`] — Listing 2 as ready-made fauré-log programs
//!   (all-pairs reachability q4–q5 and the failure patterns q6–q8);
//! * [`rib`] — the §6 evaluation workload: a seeded synthetic
//!   stand-in for the route-views BGP RIB, generating per-prefix
//!   forwarding entries with one primary and four preference-ordered
//!   backup paths;
//! * [`enterprise`] — the §5 multi-team enterprise model: the
//!   `Net = {R, Lb, Fw}` database, the constraints `T1, T2, C_lb, C_s`,
//!   and the Listing 4 update.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enterprise;
pub mod frr;
pub mod interdomain;
pub mod queries;
pub mod rib;
pub mod ribtext;
pub mod topology;
