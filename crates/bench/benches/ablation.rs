//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **fixpoint strategy** — semi-naive vs naive iteration;
//! * **solver pruning policy** — never / end-of-stratum (the paper's
//!   batch Z3 step) / eager per-derivation checking;
//! * **indexed matching** — `Table::find_matches` probe vs full scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faure_bench::workload;
use faure_core::{evaluate_with, EvalOptions, PrunePolicy};
use faure_net::queries;
use faure_storage::{Pattern, Table};

fn bench_fixpoint_strategy(c: &mut Criterion) {
    let w = workload(80, 1);
    let mut group = c.benchmark_group("ablation_fixpoint");
    group.sample_size(10);
    for (label, semi) in [("semi_naive", true), ("naive", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &semi, |b, &semi| {
            let opts = EvalOptions {
                semi_naive: semi,
                prune: PrunePolicy::Never,
                ..Default::default()
            };
            b.iter(|| {
                evaluate_with(&queries::reachability_program(), &w.db, &opts)
                    .expect("evaluation succeeds")
            })
        });
    }
    group.finish();
}

fn bench_prune_policy(c: &mut Criterion) {
    let w = workload(80, 1);
    let mut group = c.benchmark_group("ablation_prune_policy");
    group.sample_size(10);
    for (label, policy) in [
        ("never", PrunePolicy::Never),
        ("end_of_stratum", PrunePolicy::EndOfStratum),
        ("every_iteration", PrunePolicy::EveryIteration),
        ("eager", PrunePolicy::Eager),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            let opts = EvalOptions {
                prune: policy,
                ..Default::default()
            };
            b.iter(|| {
                evaluate_with(&queries::reachability_program(), &w.db, &opts)
                    .expect("evaluation succeeds")
            })
        });
    }
    group.finish();
}

fn bench_index_vs_scan(c: &mut Criterion) {
    // Build a large F table and probe it with a constant pattern.
    let w = workload(2000, 1);
    let f = w.db.relation("F").expect("generated");
    let table = Table::from_relation(f);
    let reg = &w.db.cvars;
    let probe = [
        Pattern::Exact(faure_ctable::Term::int(500)),
        Pattern::Any,
        Pattern::Any,
    ];

    let mut group = c.benchmark_group("ablation_index");
    group.bench_function("indexed_probe", |b| {
        b.iter(|| table.find_matches(reg, &probe).len())
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            table
                .iter()
                .filter(|row| Table::match_row(reg, row, &probe).is_some())
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fixpoint_strategy,
    bench_prune_policy,
    bench_index_vs_scan
);
criterion_main!(benches);
