//! Differential testing of the parallel solver-phase prune.
//!
//! `Table::prune_parallel` splits a table's rows into contiguous
//! chunks across scoped workers (each with its own `Session` over the
//! shared lock-sharded memo) and merges the kept rows in partition
//! order, which must make it *bit-identical* to the serial
//! `Table::prune` walk: same kept rows, same simplified conditions, in
//! the same stored order — at every thread count. The deterministic
//! solver counters (`sat_calls`, `sat_true`, `simplify_calls`, and the
//! hit+miss total) must also match; only the memo hit/miss *split*
//! may depend on scheduling.
//!
//! The tables are built from the shared random corpus databases, with
//! extra rows whose conditions only the solver can refute (linear
//! arithmetic over the corpus c-variables), so the prune actually
//! removes and simplifies rows rather than passing everything through.

use faure_core::eval::canonicalize;
use faure_ctable::{CTuple, CmpOp, Condition, Database, LinExpr, Term};
use faure_solver::{Session, SharedMemo, SolverStats};
use faure_storage::Table;
use faure_tests::corpus::arb_db;
use proptest::prelude::*;

/// The corpus database's relations as prune-ready tables, with three
/// appended rows per table that force real solver work: a
/// solver-only-unsat linear condition (`v̄0 + v̄1 = 5` over `{0,1,2}²`),
/// a tight-but-satisfiable one (`v̄0 + v̄1 = 4`), and a valid
/// disjunction that simplifies to `True`.
fn tables_of(db: &Database) -> Vec<Table> {
    let v0 = db.cvars.by_name("v0").expect("corpus c-variable v0");
    let v1 = db.cvars.by_name("v1").expect("corpus c-variable v1");
    let lin = |k: i64| {
        Condition::cmp(
            LinExpr::var(v0).plus_var(1, v1),
            CmpOp::Eq,
            LinExpr::constant(k),
        )
    };
    let valid =
        Condition::eq(Term::Var(v0), Term::int(0)).or(Condition::ne(Term::Var(v0), Term::int(0)));
    db.relations()
        .map(|rel| {
            let mut t = Table::from_relation(rel);
            for (i, cond) in [lin(5), lin(4), valid.clone()].into_iter().enumerate() {
                let terms: Vec<Term> = (0..t.schema.arity())
                    .map(|_| Term::int(90 + i as i64))
                    .collect();
                t.insert(CTuple::with_cond(terms, cond)).unwrap();
            }
            t
        })
        .collect()
}

/// Stored rows after pruning: terms, raw condition, and the condition
/// canonicalized (so a mismatch distinguishes "different condition"
/// from "same condition, different spelling").
fn rows_of(t: &Table) -> Vec<(Vec<Term>, Condition, Condition)> {
    (0..t.len())
        .map(|i| {
            let row = t.row(i);
            (
                row.terms.clone(),
                row.cond.clone(),
                canonicalize(row.cond.clone()),
            )
        })
        .collect()
}

/// The schedule-independent projection of the solver counters.
fn deterministic_counters(s: &SolverStats) -> (u64, u64, u64, u64) {
    (
        s.sat_calls,
        s.sat_true,
        s.simplify_calls,
        s.memo_hits + s.memo_misses,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel prune is bit-identical to serial at every thread count,
    /// with matching removal counts and deterministic solver counters.
    #[test]
    fn parallel_prune_is_bit_identical_to_serial(db in arb_db()) {
        let reg = db.cvars.clone();
        let mut serial_tables = tables_of(&db);
        let mut serial_session = Session::new();
        let mut serial_removed = Vec::new();
        for t in &mut serial_tables {
            serial_removed.push(t.prune(&reg, &mut serial_session).unwrap());
        }
        let serial_rows: Vec<_> = serial_tables.iter().map(rows_of).collect();

        for threads in [1usize, 2, 4] {
            let mut tables = tables_of(&db);
            let memo = std::sync::Arc::new(SharedMemo::for_registry(&reg));
            let mut session = Session::new();
            let mut removed = Vec::new();
            for t in &mut tables {
                removed.push(t.prune_parallel(&reg, &mut session, &memo, threads).unwrap());
            }
            prop_assert_eq!(&removed, &serial_removed, "removed counts, threads={}", threads);
            let rows: Vec<_> = tables.iter().map(rows_of).collect();
            prop_assert_eq!(&rows, &serial_rows, "kept rows diverged, threads={}", threads);
            prop_assert_eq!(
                deterministic_counters(&session.stats()),
                deterministic_counters(&serial_session.stats()),
                "solver counters diverged, threads={}",
                threads
            );
        }
    }
}
