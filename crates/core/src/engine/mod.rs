//! The fauré-log evaluation engine: reusable prepared programs and
//! (optionally parallel) stratified fixpoint execution.
//!
//! This module family replaces the old monolithic `eval::evaluate`
//! function with an explicit two-step lifecycle:
//!
//! 1. [`Engine::prepare`] runs everything that depends only on the
//!    *program* — safety checking, stratification, and compilation of
//!    every [`RulePlan`](crate::plan::RulePlan) semi-naive evaluation
//!    will request (the full
//!    plan per rule plus one delta plan per stratum-recursive body
//!    literal). The result is a [`PreparedProgram`].
//! 2. [`PreparedProgram::run`] executes the prepared program against a
//!    [`Database`]. Repeated queries over changing databases — the
//!    paper's network-monitoring loop — skip analysis and planning
//!    entirely: every plan lookup during a run is a cache hit.
//!
//! The one-shot [`evaluate`] / [`evaluate_with`] entry points are kept
//! and now route through prepare-then-run, so their behaviour
//! (including error order and statistics) is unchanged.
//!
//! ## Layout
//!
//! * [`mod@self`] — options, errors, the prepare/run lifecycle;
//! * [`fixpoint`] (private) — the naive and semi-naive stratum drivers;
//! * [`rule`] (private) — compiled-plan execution: the c-valuation,
//!   comparison pushdown, negation, head instantiation;
//! * [`parallel`] (private) — the data-parallel inner loop (see below).
//!
//! ## Parallel fixpoint execution
//!
//! With [`EvalOptions::threads`] > 1, each rule pass cuts the matches
//! of its first join step into fine contiguous chunks which
//! `std::thread::scope` workers pull from a shared atomic cursor (work
//! stealing — see [`parallel`]). Each worker owns its substitution,
//! condition accumulator, operator counters, and solver [`Session`];
//! the sessions share one lock-sharded [`faure_solver::SharedMemo`] so
//! a condition decided by one worker is a memo hit for every other.
//! Worker outputs are replayed in chunk index order through
//! [`faure_storage::Table::absorb_partitions`] — the insert sequence
//! equals the serial enumeration order, so parallel results (conditions
//! included) are **bit-identical** to a serial run. The solver phase
//! scales the same way: end-of-stratum pruning runs through
//! [`faure_storage::Table::prune_parallel`], which splits the rows
//! across workers over the same shared memo and merges kept rows in
//! partition order.
//!
//! ## Cross-run memo reuse
//!
//! A [`PreparedProgram`] additionally pools its [`SharedMemo`] across
//! `run()` calls. The memo is keyed by the c-variable registry's
//! structural fingerprint (count + per-variable name/domain): batch
//! evaluation over databases that share a registry shape — the
//! network-monitoring loop re-checking snapshots — starts every run
//! with the previous runs' solver verdicts warm, surfaced as
//! `cross_run_hits` in [`faure_solver::SolverStats`]. A database whose
//! registry signature differs invalidates the pooled memo instead of
//! serving stale verdicts.

mod fixpoint;
mod maintain;
mod parallel;
mod publish;
mod rule;
mod shard;

pub use maintain::{Delta, DeltaReport, MaterializedState};
pub use rule::canonicalize;

use crate::analysis::{check_safety, stratify, AnalysisError, Stratification};
use crate::ast::Program;
use crate::plan::{maintenance_meta, MaintenanceMeta, PlanCache, ShardPlan};
use faure_ctable::{CVarId, CVarRegistry, Database, Domain, Relation};
use faure_solver::{SharedMemo, SolverError};
use faure_storage::{ArityError, PhaseStats};
use faure_trace::Tracer;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// When the solver phase (the paper's "Z3 step") runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrunePolicy {
    /// Never call the solver; rows may carry contradictory conditions.
    Never,
    /// Prune each derived relation once its stratum converges
    /// (default; matches the paper's batch use of Z3).
    EndOfStratum,
    /// Prune the delta after every fixpoint iteration (keeps
    /// intermediate states small, costs more solver calls).
    EveryIteration,
    /// Check satisfiability of every candidate row before insertion.
    Eager,
}

/// Evaluation options.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Solver phase policy.
    pub prune: PrunePolicy,
    /// Semi-naive (true, default) or naive (false) fixpoint — the
    /// latter exists for the ablation benchmark.
    pub semi_naive: bool,
    /// Safety valve on fixpoint iterations per stratum.
    pub max_iterations: usize,
    /// Worker threads for rule evaluation. `1` (the default) runs
    /// serially; larger values partition each rule pass across
    /// `std::thread::scope` workers. Results are bit-identical to the
    /// serial run at any thread count. Defaults to the `FAURE_THREADS`
    /// environment variable when set.
    pub threads: usize,
    /// Evaluation shards for the semi-naive fixpoint. `1` (the
    /// default) keeps the single-space driver; larger values partition
    /// each stratum's delta on the [`ShardPlan`] key and run the delta
    /// passes on per-shard worker threads, exchanging cross-shard rows
    /// through bounded channels at iteration barriers. Derived rows and
    /// canonicalized conditions are identical to the single-space run
    /// at any shard count. Defaults to the `FAURE_SHARDS` environment
    /// variable when set.
    pub shards: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            prune: PrunePolicy::EndOfStratum,
            semi_naive: true,
            max_iterations: 100_000,
            threads: parse_threads(std::env::var("FAURE_THREADS").ok().as_deref()),
            shards: parse_threads(std::env::var("FAURE_SHARDS").ok().as_deref()),
        }
    }
}

/// Parses a `FAURE_THREADS` / `FAURE_SHARDS`-style value; anything
/// absent, unparsable, or zero means "serial" / "unsharded".
fn parse_threads(var: Option<&str>) -> usize {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Evaluation errors.
#[derive(Debug)]
pub enum EvalError {
    /// Static analysis rejected the program.
    Analysis(AnalysisError),
    /// The solver rejected a condition (outside supported fragment or
    /// budget exceeded).
    Solver(SolverError),
    /// An atom's arity disagrees with its relation.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Arity in the database / earlier use.
        expected: usize,
        /// Arity at this use.
        got: usize,
    },
    /// The fixpoint did not converge within `max_iterations`.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A rule variable was unbound when needed (safety should prevent
    /// this; kept as a defensive error).
    UnboundVariable(String),
    /// A [`Delta`] was rejected by incremental maintenance: it targets
    /// a derived predicate, or carries an unconstrained deletion.
    InvalidDelta(String),
    /// A `--shard-key` override names an unknown predicate or a column
    /// outside its arity.
    InvalidShardKey(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Analysis(e) => write!(f, "{e}"),
            EvalError::Solver(e) => write!(f, "{e}"),
            EvalError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate {pred} used with arity {got}, expected {expected}"
            ),
            EvalError::IterationLimit { limit } => {
                write!(f, "fixpoint did not converge within {limit} iterations")
            }
            EvalError::UnboundVariable(v) => write!(f, "unbound rule variable `{v}`"),
            EvalError::InvalidDelta(msg) => write!(f, "invalid delta: {msg}"),
            EvalError::InvalidShardKey(msg) => write!(f, "invalid shard key: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<AnalysisError> for EvalError {
    fn from(e: AnalysisError) -> Self {
        EvalError::Analysis(e)
    }
}

impl From<SolverError> for EvalError {
    fn from(e: SolverError) -> Self {
        EvalError::Solver(e)
    }
}

impl From<ArityError> for EvalError {
    fn from(e: ArityError) -> Self {
        EvalError::ArityMismatch {
            pred: e.table,
            expected: e.expected,
            got: e.got,
        }
    }
}

/// Result of evaluating a program.
pub struct EvalOutput {
    /// The input database extended with all derived relations (and any
    /// c-variables auto-registered during resolution).
    pub database: Database,
    /// Per-phase statistics (the paper's `sql` / `Z3` / `#tuples`
    /// columns).
    pub stats: PhaseStats,
    /// Lint warnings from the pre-evaluation analysis pass (dead
    /// rules, shadowed inputs, singleton variables, …). Warnings never
    /// change evaluation results; callers may surface or ignore them.
    pub warnings: Vec<crate::analysis::Finding>,
}

impl EvalOutput {
    /// A derived (or input) relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.database.relation(name)
    }

    /// Whether the 0-ary predicate `name` (e.g. `panic`) was derived
    /// with a satisfiable condition. Requires the evaluation to have
    /// run with a pruning policy other than `Never`, or the caller can
    /// inspect conditions directly.
    pub fn derived(&self, name: &str) -> bool {
        self.relation(name).is_some_and(|r| !r.is_empty())
    }
}

/// The evaluation engine: a factory for [`PreparedProgram`]s.
///
/// The engine itself only holds the default [`EvalOptions`] its
/// prepared programs run with; preparation is per-program.
#[derive(Clone, Copy, Debug, Default)]
pub struct Engine {
    opts: EvalOptions,
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with explicit options.
    pub fn with_options(opts: EvalOptions) -> Self {
        Engine { opts }
    }

    /// The engine's options.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Runs the program-only analyses (safety, stratification) and
    /// compiles every rule plan semi-naive evaluation will request,
    /// yielding a [`PreparedProgram`] that can be
    /// [run](PreparedProgram::run) against many databases.
    pub fn prepare(&self, program: &Program) -> Result<PreparedProgram, EvalError> {
        self.prepare_traced(program, &Tracer::disabled())
    }

    /// [`prepare`](Engine::prepare) with semantic-analysis planner
    /// hints: plans compile under `hints` (see [`crate::plan::Hints`]),
    /// so provably-infeasible rules become statically-pruned empty
    /// plans and inferred column cardinalities refine join order.
    /// Sound hints never change results — only the work done.
    pub fn prepare_with_hints(
        &self,
        program: &Program,
        hints: crate::plan::Hints,
    ) -> Result<PreparedProgram, EvalError> {
        self.prepare_traced_with_hints(program, hints, &Tracer::disabled())
    }

    /// [`prepare`](Engine::prepare) with the analysis and planning
    /// phases recorded as `prepare` spans on `tracer`.
    pub fn prepare_traced(
        &self,
        program: &Program,
        tracer: &Tracer,
    ) -> Result<PreparedProgram, EvalError> {
        self.prepare_traced_with_hints(program, crate::plan::Hints::default(), tracer)
    }

    /// [`prepare_with_hints`](Engine::prepare_with_hints) with tracing.
    pub fn prepare_traced_with_hints(
        &self,
        program: &Program,
        hints: crate::plan::Hints,
        tracer: &Tracer,
    ) -> Result<PreparedProgram, EvalError> {
        let t_safety = tracer.now_ns();
        check_safety(program)?;
        tracer.emit_span("prepare", "safety", t_safety, 0, || {
            vec![("rules", program.rules.len().into())]
        });
        let t_strat = tracer.now_ns();
        let strat = stratify(program)?;
        tracer.emit_span("prepare", "stratify", t_strat, 0, || {
            vec![("strata", strat.strata.len().into())]
        });
        let t_plan = tracer.now_ns();
        let mut plans = PlanCache::with_hints(hints);
        for stratum_rules in &strat.strata {
            let stratum_preds: BTreeSet<&str> = stratum_rules
                .iter()
                .map(|&ri| program.rules[ri].head.pred.as_str())
                .collect();
            for &ri in stratum_rules {
                let rule = &program.rules[ri];
                plans.get_or_compile(ri, rule, None);
                // Exactly the delta plans the semi-naive driver looks
                // up: one per positive body literal whose predicate is
                // defined in this stratum.
                for (pos, lit) in rule.body.iter().enumerate() {
                    if lit.is_negative() || !stratum_preds.contains(lit.atom().pred.as_str()) {
                        continue;
                    }
                    plans.get_or_compile(ri, rule, Some(pos));
                }
            }
        }
        let compiled = plans.misses;
        tracer.emit_span("prepare", "plan-compile", t_plan, 0, || {
            vec![("plans", compiled.into())]
        });
        let maint = maintenance_meta(program, &strat.strata);
        let shard_plan = ShardPlan::build(program, &strat.strata);
        Ok(PreparedProgram {
            program: program.clone(),
            strat,
            plans,
            compiled,
            opts: self.opts,
            memo_pool: Arc::new(Mutex::new(None)),
            maint,
            shard_plan,
        })
    }
}

/// A program with its analysis and planning work done once, ready to
/// execute against any number of databases. Built by [`Engine::prepare`].
#[derive(Clone, Debug)]
pub struct PreparedProgram {
    program: Program,
    strat: Stratification,
    /// Fully precompiled plan cache; runs clone it with zeroed counters
    /// so per-run hit statistics stay meaningful.
    plans: PlanCache,
    /// Plans compiled at prepare time — reported as each run's
    /// `plan_cache_misses` so the "compiled exactly once" accounting
    /// survives the prepare/run split.
    compiled: u64,
    opts: EvalOptions,
    /// The solver memo carried across `run()` calls (batch mode). Each
    /// run checks the pooled memo's registry fingerprint: a match reuses
    /// it — repeated conditions become *cross-run* memo hits instead of
    /// fresh solver work — while a mismatch (different c-variables or
    /// domains) replaces it. Clones of a prepared program share the
    /// pool, like they share the compiled plans.
    memo_pool: Arc<Mutex<Option<Arc<SharedMemo>>>>,
    /// Incremental-maintenance metadata: per-rule delta positions,
    /// per-stratum recursion flags, and the per-predicate deletion
    /// strategy (counting vs. DRed re-derivation).
    maint: MaintenanceMeta,
    /// Partition keys for sharded evaluation, compiled at prepare time
    /// (first bound head column per predicate; overridable via
    /// [`set_shard_keys`](PreparedProgram::set_shard_keys)).
    shard_plan: ShardPlan,
}

impl PreparedProgram {
    /// The prepared program's AST.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Its stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.strat
    }

    /// Number of rule plans compiled at prepare time.
    pub fn plan_count(&self) -> usize {
        self.compiled as usize
    }

    /// The compiled shard plan (partition key per derived predicate).
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.shard_plan
    }

    /// Overrides shard partition keys (`--shard-key pred=col`). A key
    /// outside the predicate's arity, or naming a predicate no rule
    /// derives, is rejected so a typo cannot silently route every row
    /// to column-0 hashing.
    pub fn set_shard_keys<'k>(
        &mut self,
        overrides: impl IntoIterator<Item = (&'k str, usize)>,
    ) -> Result<(), EvalError> {
        for (pred, col) in overrides {
            let Some(rule) = self.program.rules.iter().find(|r| r.head.pred == pred) else {
                return Err(EvalError::InvalidShardKey(format!(
                    "`{pred}` is not a derived predicate"
                )));
            };
            let arity = rule.head.args.len();
            if col >= arity {
                return Err(EvalError::InvalidShardKey(format!(
                    "column {col} out of range for `{pred}` (arity {arity})"
                )));
            }
            self.shard_plan.set_key(pred, col);
        }
        Ok(())
    }

    /// Executes against `db` with the options the engine was built
    /// with.
    pub fn run(&self, db: &Database) -> Result<EvalOutput, EvalError> {
        self.run_with(db, &self.opts)
    }

    /// [`run`](PreparedProgram::run) with the pipeline recorded on
    /// `tracer`: per-stratum fixpoint iterations, per-rule plan
    /// execution, parallel worker chunks, end-of-stratum pruning, and a
    /// solver-session summary.
    pub fn run_traced(&self, db: &Database, tracer: &Tracer) -> Result<EvalOutput, EvalError> {
        self.run_with_traced(db, &self.opts, tracer)
    }

    /// Executes against `db` with explicit per-run options. Note the
    /// plans were compiled at prepare time; options affecting planning
    /// inputs (there are none today) would require re-preparing.
    pub fn run_with(&self, db: &Database, opts: &EvalOptions) -> Result<EvalOutput, EvalError> {
        self.run_with_traced(db, opts, &Tracer::disabled())
    }

    /// [`run_with`](PreparedProgram::run_with) +
    /// [`run_traced`](PreparedProgram::run_traced) combined.
    pub fn run_with_traced(
        &self,
        db: &Database,
        opts: &EvalOptions,
        tracer: &Tracer,
    ) -> Result<EvalOutput, EvalError> {
        let t_run = tracer.now_ns();
        publish::publish_run(opts.threads);
        let state = self.materialize_with(db, opts, tracer)?;
        let output = state.into_output(&self.program);

        let solver_stats = output.stats.solver_stats;
        tracer.emit_instant("solver", "session", 0, || {
            vec![
                ("sat_calls", solver_stats.sat_calls.into()),
                ("sat_true", solver_stats.sat_true.into()),
                ("simplify_calls", solver_stats.simplify_calls.into()),
                ("memo_hits", solver_stats.memo_hits.into()),
                ("cross_run_hits", solver_stats.cross_run_hits.into()),
                ("memo_misses", solver_stats.memo_misses.into()),
                (
                    "time_ns",
                    u64::try_from(solver_stats.time.as_nanos())
                        .unwrap_or(u64::MAX)
                        .into(),
                ),
            ]
        });
        let tuples = output.stats.tuples;
        let pruned = output.stats.pruned;
        tracer.emit_span("eval", "run", t_run, 0, || {
            vec![("tuples", tuples.into()), ("pruned", pruned.into())]
        });
        Ok(output)
    }
}

/// Evaluates `program` on `db` with default options.
pub fn evaluate(program: &Program, db: &Database) -> Result<EvalOutput, EvalError> {
    evaluate_with(program, db, &EvalOptions::default())
}

/// Evaluates `program` on `db` with explicit options (prepare-then-run
/// in one call).
pub fn evaluate_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<EvalOutput, EvalError> {
    Engine::with_options(*opts).prepare(program)?.run(db)
}

/// Runs `f` with process-global telemetry publication suppressed on
/// the current thread, restoring the previous state afterwards.
///
/// Auxiliary evaluations drive the full engine without being pipeline
/// work — loading a database file's conditional facts, or the §5
/// containment oracle's run over a canonical database. Publishing
/// their counters would inflate `faure_runs_total` /
/// `faure_materializations_total` and break the invariant that the
/// `/metrics` registry agrees with an eval's final `--metrics` totals,
/// so such callers wrap the evaluation in this guard. Results are
/// unaffected; only registry publication is skipped.
pub fn without_telemetry<R>(f: impl FnOnce() -> R) -> R {
    publish::with_publication_suppressed(f)
}

/// [`evaluate_with`], recording the prepare and run pipelines on
/// `tracer` (a [`Tracer::disabled`] makes this identical to
/// [`evaluate_with`] — results never depend on tracing).
pub fn evaluate_traced(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
    tracer: &Tracer,
) -> Result<EvalOutput, EvalError> {
    Engine::with_options(*opts)
        .prepare_traced(program, tracer)?
        .run_traced(db, tracer)
}

/// Resolves c-variable names to ids, auto-registering unknown names
/// with an open domain (batched — the registry vector grows once).
fn resolve_cvars(program: &Program, db: &mut Database) -> HashMap<String, CVarId> {
    let mut map = HashMap::new();
    let mut missing: Vec<&str> = Vec::new();
    for name in program.cvar_names() {
        match db.cvars.by_name(name) {
            Some(id) => {
                map.insert(name.to_owned(), id);
            }
            None => missing.push(name),
        }
    }
    let ids = db.fresh_cvars(missing.iter().map(|&n| (n.to_owned(), Domain::Open)));
    for (name, id) in missing.into_iter().zip(ids) {
        map.insert(name.to_owned(), id);
    }
    map
}

/// Immutable per-run context shared by every rule pass (and, under
/// parallel evaluation, every worker thread).
pub(crate) struct Ctx<'a> {
    pub(crate) cvmap: &'a HashMap<String, CVarId>,
    /// Registry snapshot taken after resolution (the registry is not
    /// mutated during evaluation).
    pub(crate) reg_snapshot: CVarRegistry,
    /// The run's solver memo: backs the driver session, every parallel
    /// worker session, and — via the prepared program's pool — later
    /// runs over a fingerprint-matching registry.
    pub(crate) shared_memo: Arc<SharedMemo>,
    /// The run's tracer (disabled unless the caller opted in). Workers
    /// buffer events locally and the driver submits them in chunk
    /// order, so tracing never perturbs results.
    pub(crate) tracer: Tracer,
    /// Partition keys for the sharded fixpoint driver (unused when
    /// `opts.shards <= 1`).
    pub(crate) shard_plan: ShardPlan,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use faure_ctable::examples::table2_path_db;
    use faure_ctable::{CTuple, Condition, Schema, Term};

    /// q1/q2 of the paper: cost of 1.2.3.4's path.
    #[test]
    fn table2_cost_query() {
        let (db, vars) = table2_path_db();
        let program = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#).unwrap();
        let out = evaluate(&program, &db).unwrap();
        let rel = out.relation("Cost").unwrap();
        // Depending on x̄, the cost is 3 ([ABC]) or 4 ([ADEC]).
        assert_eq!(rel.len(), 2);
        let mut costs: Vec<i64> = rel
            .iter()
            .map(|t| t.terms[0].as_const().unwrap().as_int().unwrap())
            .collect();
        costs.sort_unstable();
        assert_eq!(costs, vec![3, 4]);
        // Each row's condition must mention x̄.
        for t in rel.iter() {
            assert!(t.cond.cvars().contains(&vars.x));
        }
    }

    /// q3: implicit pattern matching — P(1.2.3.5, y) matches the
    /// c-variable row (ȳ, [ABE]).
    #[test]
    fn table2_q3_pattern_match() {
        let (db, _) = table2_path_db();
        let program = parse_program(r#"Q3(c) :- P("1.2.3.5", p), C(p, c)."#).unwrap();
        let out = evaluate(&program, &db).unwrap();
        let rel = out.relation("Q3").unwrap();
        // The answer 3 is conditional on ȳ = 1.2.3.5 (consistent with
        // ȳ ≠ 1.2.3.4), so exactly one row.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples[0].terms[0], Term::int(3));
        assert_ne!(rel.tuples[0].cond, Condition::True);
    }

    /// The diagnostic pre-pass surfaces lints without changing results.
    #[test]
    fn warnings_surface_without_changing_results() {
        let (db, _) = table2_path_db();
        // `u` is a singleton (likely-typo) variable; the query result
        // must be identical to the clean formulation.
        let program = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c), D(u)."#).unwrap();
        let mut db2 = db.clone();
        db2.create_relation(faure_ctable::Schema::new("D", &["a"]))
            .unwrap();
        db2.insert("D", faure_ctable::CTuple::new([Term::int(0)]))
            .unwrap();
        let out = evaluate(&program, &db2).unwrap();
        assert_eq!(out.relation("Cost").unwrap().len(), 2);
        assert!(out
            .warnings
            .iter()
            .any(|w| matches!(w, crate::analysis::Finding::SingletonVariable { variable, .. } if variable == "u")));
        assert!(out.warnings.iter().all(|w| !w.is_error()));

        // A clean program yields no warnings.
        let clean = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#).unwrap();
        let out = evaluate(&clean, &db).unwrap();
        assert_eq!(out.warnings, Vec::new());
    }

    #[test]
    fn facts_evaluate() {
        let db = Database::new();
        let program = parse_program("Lb(Mkt, CS).\nLb(\"R&D\", GS).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert_eq!(out.relation("Lb").unwrap().len(), 2);
    }

    #[test]
    fn recursion_transitive_closure_ground() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let out = evaluate(&program, &db).unwrap();
        // 1→2,1→3,1→4,2→3,2→4,3→4
        assert_eq!(out.relation("R").unwrap().len(), 6);
    }

    #[test]
    fn naive_matches_semi_naive() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let semi = evaluate(&program, &db).unwrap();
        let naive = evaluate_with(
            &program,
            &db,
            &EvalOptions {
                semi_naive: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut a: Vec<Vec<Term>> = semi
            .relation("R")
            .unwrap()
            .iter()
            .map(|t| t.terms.clone())
            .collect();
        let mut b: Vec<Vec<Term>> = naive
            .relation("R")
            .unwrap()
            .iter()
            .map(|t| t.terms.clone())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn recursion_with_conditions_terminates_on_cycles() {
        // A 2-cycle where each link is protected by a c-variable; the
        // reachability conditions must converge (conjunction dedup).
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar("y", Domain::Bool01);
        db.create_relation(Schema::new("F", &["a", "b"])).unwrap();
        db.insert(
            "F",
            CTuple::with_cond(
                [Term::int(1), Term::int(2)],
                Condition::eq(Term::Var(x), Term::int(1)),
            ),
        )
        .unwrap();
        db.insert(
            "F",
            CTuple::with_cond(
                [Term::int(2), Term::int(1)],
                Condition::eq(Term::Var(y), Term::int(1)),
            ),
        )
        .unwrap();
        let program = parse_program(
            "R(a, b) :- F(a, b).\n\
             R(a, b) :- F(a, c), R(c, b).\n",
        )
        .unwrap();
        let out = evaluate(&program, &db).unwrap();
        let r = out.relation("R").unwrap();
        // R(1,2), R(2,1), R(1,1), R(2,2)
        assert_eq!(r.len(), 4);
        // R(1,1) requires both links: condition ≡ x̄=1 ∧ ȳ=1.
        let r11 = r
            .iter()
            .find(|t| t.terms == vec![Term::int(1), Term::int(1)])
            .unwrap();
        let expected = Condition::eq(Term::Var(x), Term::int(1))
            .and(Condition::eq(Term::Var(y), Term::int(1)));
        assert!(faure_solver::equivalent(&out.database.cvars, &r11.cond, &expected).unwrap());
    }

    #[test]
    fn negation_not_derivable() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        db.create_relation(Schema::new("N", &["a"])).unwrap();
        db.insert("N", CTuple::new([Term::int(1)])).unwrap();
        db.insert("N", CTuple::new([Term::int(2)])).unwrap();
        db.create_relation(Schema::new("Block", &["a"])).unwrap();
        db.insert(
            "Block",
            CTuple::with_cond([Term::int(1)], Condition::eq(Term::Var(x), Term::int(1))),
        )
        .unwrap();
        let program = parse_program("Open(a) :- N(a), !Block(a).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        let open = out.relation("Open").unwrap();
        assert_eq!(open.len(), 2);
        let o1 = open.iter().find(|t| t.terms == vec![Term::int(1)]).unwrap();
        // Open(1) iff NOT (x̄ = 1), i.e. x̄ ≠ 1.
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &o1.cond,
            &Condition::ne(Term::Var(x), Term::int(1))
        )
        .unwrap());
        let o2 = open.iter().find(|t| t.terms == vec![Term::int(2)]).unwrap();
        assert_eq!(o2.cond, Condition::True);
    }

    #[test]
    fn comparisons_filter_and_annotate() {
        let mut db = Database::new();
        let p = db.fresh_cvar("p", Domain::Ints(vec![80, 344, 7000]));
        db.create_relation(Schema::new("R", &["subnet", "port"]))
            .unwrap();
        db.insert("R", CTuple::new([Term::sym("Mkt"), Term::Var(p)]))
            .unwrap();
        db.insert("R", CTuple::new([Term::sym("R&D"), Term::int(80)]))
            .unwrap();
        let program = parse_program("V(s) :- R(s, q), q != 80.\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        let v = out.relation("V").unwrap();
        // R&D row: 80 != 80 is ground-false → dropped. Mkt row: condition p̄ ≠ 80.
        assert_eq!(v.len(), 1);
        assert_eq!(v.tuples[0].terms, vec![Term::sym("Mkt")]);
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &v.tuples[0].cond,
            &Condition::ne(Term::Var(p), Term::int(80))
        )
        .unwrap());
    }

    #[test]
    fn zero_ary_panic_queries() {
        let mut db = Database::new();
        db.create_relation(Schema::new("R", &["s", "d"])).unwrap();
        db.insert("R", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        db.create_relation(Schema::new("Fw", &["s", "d"])).unwrap();
        // No firewall: panic must fire unconditionally.
        let program = parse_program("panic :- R(Mkt, CS), !Fw(Mkt, CS).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert!(out.derived("panic"));
        // Deploy the firewall: panic no longer derivable.
        let mut db2 = db.clone();
        db2.insert("Fw", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        let out2 = evaluate(&program, &db2).unwrap();
        assert!(!out2.derived("panic"));
    }

    #[test]
    fn eager_prune_matches_end_of_stratum() {
        let (db, _) = table2_path_db();
        let program = parse_program(
            r#"Cost(c) :- P("1.2.3.4", p), C(p, c).
               Cheap(c) :- Cost(c), c < 4."#,
        )
        .unwrap();
        let a = evaluate_with(
            &program,
            &db,
            &EvalOptions {
                prune: PrunePolicy::Eager,
                ..Default::default()
            },
        )
        .unwrap();
        let b = evaluate(&program, &db).unwrap();
        assert_eq!(
            a.relation("Cheap").unwrap().len(),
            b.relation("Cheap").unwrap().len()
        );
        assert_eq!(a.relation("Cheap").unwrap().len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Ints(vec![1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(1)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(2)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(2), Term::Var(x)]))
            .unwrap();
        let program = parse_program("Diag(a) :- E(a, a).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        let diag = out.relation("Diag").unwrap();
        // E(1,1) → Diag(1) unconditionally; E(2, x̄) → Diag(2) iff x̄ = 2.
        assert_eq!(diag.len(), 2);
        let d2 = diag.iter().find(|t| t.terms == vec![Term::int(2)]).unwrap();
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &d2.cond,
            &Condition::eq(Term::Var(x), Term::int(2))
        )
        .unwrap());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut db = Database::new();
        db.create_relation(Schema::new("F", &["a", "b"])).unwrap();
        let program = parse_program("R(a) :- F(a).\n").unwrap();
        assert!(matches!(
            evaluate(&program, &db),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn plans_compile_once_and_hit_cache_across_iterations() {
        // A 6-node chain: transitive closure takes several semi-naive
        // iterations, each of which must reuse the compiled delta plan.
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 1..6 {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert_eq!(out.relation("R").unwrap().len(), 15);
        // Plans: (rule1, None), (rule2, None), (rule2, Δ@1) — compiled
        // exactly once each (at prepare time); every lookup during the
        // run is a cache hit.
        assert_eq!(out.stats.plan_cache_misses, 3);
        assert!(
            out.stats.plan_cache_hits > 0,
            "fixpoint iterations must reuse compiled plans, stats: {:?}",
            out.stats
        );
        // Semi-naive deltas shrink down the chain: iteration 0 seeds
        // the 5 edges plus the 4 length-2 paths (rule 2 already sees
        // rule 1's output), then 3, 2, 1 longer paths.
        assert_eq!(out.stats.delta_sizes, vec![9, 3, 2, 1]);
        // Operator counters observed the probes.
        assert!(out.stats.ops.probes > 0);
        assert!(out.stats.ops.rows_matched as usize >= 15);
    }

    #[test]
    fn pushed_comparisons_prune_branches_early() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 0..10 {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        let program = parse_program("Q(a, c) :- E(a, b), E(b, c), a < 3.\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert_eq!(out.relation("Q").unwrap().len(), 3);
        // `a < 3` is bound after the first literal; the 6+ failing
        // bindings must be cut before the second join, not after.
        assert!(out.stats.ops.cmp_pruned >= 6, "stats: {:?}", out.stats.ops);
    }

    #[test]
    fn canonicalize_merges_reordered_conjunctions() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar("y", Domain::Bool01);
        let a = Condition::eq(Term::Var(x), Term::int(1));
        let b = Condition::eq(Term::Var(y), Term::int(1));
        let ab = canonicalize(a.clone().and(b.clone()));
        let ba = canonicalize(b.and(a));
        assert_eq!(ab, ba);
    }

    /// Tracing records the pipeline without changing results; a
    /// disabled tracer records nothing.
    #[test]
    fn traced_run_records_pipeline_without_changing_results() {
        use faure_trace::{ManualClock, Recorder};

        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 1..5 {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        let program = crate::parser::parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();

        let plain = evaluate(&program, &db).unwrap();

        let rec = Arc::new(Recorder::new());
        let tracer = Tracer::with_clock(rec.clone(), Arc::new(ManualClock::new()));
        let traced = evaluate_traced(&program, &db, &EvalOptions::default(), &tracer).unwrap();

        // Bit-identical results and counters.
        assert_eq!(
            plain.relation("R").unwrap().tuples,
            traced.relation("R").unwrap().tuples
        );
        assert_eq!(plain.stats.tuples, traced.stats.tuples);
        assert_eq!(plain.stats.delta_sizes, traced.stats.delta_sizes);

        // The recorded stream covers every pipeline layer.
        let events = rec.take();
        let has = |cat: &str, name: &str| events.iter().any(|e| e.cat == cat && e.name == name);
        assert!(has("prepare", "safety"));
        assert!(has("prepare", "stratify"));
        assert!(has("prepare", "plan-compile"));
        assert!(has("eval", "setup"));
        assert!(has("eval", "stratum"));
        assert!(has("eval", "prune"));
        assert!(has("eval", "run"));
        assert!(has("fixpoint", "iteration"));
        assert!(has("fixpoint", "rule-pass"));
        assert!(has("solver", "session"));

        // rule-pass spans carry the per-rule payload.
        let pass = events
            .iter()
            .find(|e| e.name == "rule-pass" && e.arg_u64("rule") == Some(0))
            .expect("rule 0 pass recorded");
        assert_eq!(pass.arg_str("head"), Some("R"));
        assert!(pass.arg_u64("matches").unwrap() >= 4);
        assert!(pass.arg_u64("rows_out").is_some());
        assert!(pass.arg_u64("cond_size").is_some());

        // The iteration spans mirror the delta-size counters.
        let delta_rows: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "iteration")
            .filter_map(|e| e.arg_u64("delta_rows"))
            .filter(|&n| n > 0)
            .collect();
        let expected: Vec<u64> = traced.stats.delta_sizes.iter().map(|&n| n as u64).collect();
        assert_eq!(delta_rows, expected);
    }

    /// Parallel traced runs buffer worker spans and stay bit-identical.
    #[test]
    fn parallel_traced_run_emits_worker_chunks() {
        use faure_trace::Recorder;

        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 1..8 {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        let program = crate::parser::parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let opts = EvalOptions {
            threads: 4,
            ..Default::default()
        };
        let serial = evaluate(&program, &db).unwrap();

        let rec = Arc::new(Recorder::new());
        let tracer = Tracer::new(rec.clone());
        let traced = evaluate_traced(&program, &db, &opts, &tracer).unwrap();
        assert_eq!(
            serial.relation("R").unwrap().tuples,
            traced.relation("R").unwrap().tuples
        );
        let events = rec.take();
        let chunks: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "worker" && e.name == "chunk")
            .collect();
        assert!(!chunks.is_empty(), "worker chunk spans recorded");
        // Tracks are chunk indices + 1, and chunk args count up from 0
        // within each rule pass (deterministic submission order).
        for c in &chunks {
            assert_eq!(u64::from(c.track), c.arg_u64("chunk").unwrap() + 1);
            assert!(c.arg_u64("matches").is_some());
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(None), 1);
        assert_eq!(parse_threads(Some("")), 1);
        assert_eq!(parse_threads(Some("0")), 1);
        assert_eq!(parse_threads(Some("four")), 1);
        assert_eq!(parse_threads(Some("-2")), 1);
        assert_eq!(parse_threads(Some("4")), 4);
        assert_eq!(parse_threads(Some(" 8 ")), 8);
    }

    #[test]
    fn prepared_program_reruns_skip_planning() {
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        assert_eq!(prepared.plan_count(), 3);

        // Two different databases through the same prepared program.
        let mut outputs = Vec::new();
        for n in [4i64, 6] {
            let mut db = Database::new();
            db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
            for i in 1..n {
                db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                    .unwrap();
            }
            outputs.push(prepared.run(&db).unwrap());
        }
        assert_eq!(outputs[0].relation("R").unwrap().len(), 6);
        assert_eq!(outputs[1].relation("R").unwrap().len(), 15);
        for out in &outputs {
            assert_eq!(out.stats.plan_cache_misses, 3);
            assert!(out.stats.plan_cache_hits > 0);
        }
    }

    #[test]
    fn prepared_program_reuses_memo_across_runs() {
        let build_db = |dom: Domain| {
            let mut db = Database::new();
            let x = db.fresh_cvar("x", dom.clone());
            let y = db.fresh_cvar("y", dom);
            db.create_relation(Schema::new("F", &["a", "b"])).unwrap();
            db.insert(
                "F",
                CTuple::with_cond(
                    [Term::int(1), Term::int(2)],
                    Condition::eq(Term::Var(x), Term::int(1)),
                ),
            )
            .unwrap();
            db.insert(
                "F",
                CTuple::with_cond(
                    [Term::int(2), Term::int(1)],
                    Condition::eq(Term::Var(y), Term::int(1)),
                ),
            )
            .unwrap();
            db
        };
        let program = parse_program(
            "R(a, b) :- F(a, b).\n\
             R(a, b) :- F(a, c), R(c, b).\n",
        )
        .unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();

        let db = build_db(Domain::Bool01);
        let first = prepared.run(&db).unwrap();
        assert_eq!(first.stats.solver_stats.cross_run_hits, 0);

        // Second run over the same registry: the pooled memo answers
        // the repeated conditions across the run boundary, and results
        // stay bit-identical.
        let second = prepared.run(&db).unwrap();
        assert!(
            second.stats.solver_stats.cross_run_hits > 0,
            "stats: {:?}",
            second.stats.solver_stats
        );
        assert!(second.stats.solver_stats.memo_cross_run_hit_rate() > 0.0);
        assert_eq!(
            first.relation("R").unwrap().tuples,
            second.relation("R").unwrap().tuples
        );

        // A different registry signature (same names, wider domain)
        // invalidates the pooled memo instead of serving stale verdicts.
        let other = build_db(Domain::Ints(vec![0, 1, 2]));
        let third = prepared.run(&other).unwrap();
        assert_eq!(third.stats.solver_stats.cross_run_hits, 0);
    }

    #[test]
    fn prepare_rejects_unsafe_and_unstratifiable_programs() {
        let engine = Engine::new();
        let unsafe_p = parse_program("P(a, b) :- N(a).\n").unwrap();
        assert!(matches!(
            engine.prepare(&unsafe_p),
            Err(EvalError::Analysis(_))
        ));
        let unstrat = parse_program("P(a) :- N(a), !Q(a).\nQ(a) :- N(a), !P(a).\n").unwrap();
        assert!(matches!(
            engine.prepare(&unstrat),
            Err(EvalError::Analysis(_))
        ));
    }

    /// Parallel evaluation must produce bit-identical results to serial
    /// — rows, row order, and derived conditions included.
    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar("y", Domain::Bool01);
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (2, 5), (5, 1)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        db.insert(
            "E",
            CTuple::with_cond(
                [Term::int(4), Term::int(6)],
                Condition::eq(Term::Var(x), Term::int(1)),
            ),
        )
        .unwrap();
        db.insert(
            "E",
            CTuple::with_cond(
                [Term::int(6), Term::int(1)],
                Condition::eq(Term::Var(y), Term::int(1)),
            ),
        )
        .unwrap();
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n\
             Q(a) :- R(a, a), !Bad(a).\n",
        )
        .unwrap();
        let serial = evaluate(&program, &db).unwrap();
        for threads in [2, 4, 8] {
            let par = evaluate_with(
                &program,
                &db,
                &EvalOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            for name in ["R", "Q"] {
                let a = serial.relation(name).unwrap();
                let b = par.relation(name).unwrap();
                assert_eq!(a.tuples, b.tuples, "{name} differs at threads={threads}");
            }
        }
    }
}
