//! Offline stand-in for the tiny subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no network access to a
//! crates registry, so the workspace points the `rand` dependency at
//! this shim via a path dependency.
//!
//! The generator is **SplitMix64** — deterministic, seedable, and
//! statistically fine for the synthetic-workload generation and
//! property tests in this repo. No cryptographic use.
//!
//! Provided surface (only what the workspace calls):
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open integer ranges
//! * [`Rng::gen_bool`]
//! * [`seq::SliceRandom::choose`]

#![forbid(unsafe_code)]

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling methods, mirroring the parts of `rand::Rng` in use.
pub trait Rng {
    /// Returns the next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open integer range.
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (0.0 ≤ p ≤ 1.0).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 high bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna 2015).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random element selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0..3u8);
            assert!(v < 3);
            let w = rng.gen_range(5..10usize);
            assert!((5..10).contains(&w));
            let z = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((1200..1600).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [10, 20, 30];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(*pool.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
