//! Physical execution operators over [`Table`].
//!
//! The evaluation engine in `faure-core` compiles each rule into a
//! *logical* plan (join order, delta slot, comparison pushdown) once
//! per stratum; this module supplies the *physical* side executed every
//! fixpoint iteration:
//!
//! * [`probe`] — pattern matching against a table, routed through the
//!   most selective column index (or a delta scan when the table is an
//!   iteration delta);
//! * [`CondAcc`] — the condition-conjoining join: instead of rebuilding
//!   a flattened `And` on every nesting level (which re-allocates the
//!   child vector per joined row), fragments are pushed onto a stack
//!   and materialised into a single conjunction only when a binding
//!   survives to the head;
//! * [`OpStats`] — per-operator row/condition counters threaded into
//!   [`crate::PhaseStats`] so benches and `explain`-style tooling can
//!   see where relational time goes.

use crate::table::{Pattern, Table};
use faure_ctable::{CVarRegistry, Condition};

/// Per-operator execution counters for one evaluation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Pattern-match operator invocations (index probe or scan).
    pub probes: u64,
    /// Rows returned by probes (matches, before comparison filtering).
    pub rows_matched: u64,
    /// Condition fragments conjoined by the join operator.
    pub conds_conjoined: u64,
    /// Join branches cut by a pushed-down comparison that evaluated to
    /// ground-false before the remaining literals were joined.
    pub cmp_pruned: u64,
    /// Negation checks performed (one per negated literal per binding).
    pub neg_checks: u64,
    /// Rule passes skipped entirely because semantic analysis compiled
    /// the plan to a statically-pruned empty body (branch cut before a
    /// single probe ran).
    pub static_cut: u64,
}

impl OpStats {
    /// Folds another counter record into this one. Saturating: the
    /// driver folds one record per parallel worker per rule pass, and a
    /// long-running process must clamp at `u64::MAX` rather than wrap
    /// back towards zero (a wrapped counter reads as "cheap rule" in a
    /// profile, the worst possible lie).
    pub fn absorb(&mut self, other: &OpStats) {
        self.probes = self.probes.saturating_add(other.probes);
        self.rows_matched = self.rows_matched.saturating_add(other.rows_matched);
        self.conds_conjoined = self.conds_conjoined.saturating_add(other.conds_conjoined);
        self.cmp_pruned = self.cmp_pruned.saturating_add(other.cmp_pruned);
        self.neg_checks = self.neg_checks.saturating_add(other.neg_checks);
        self.static_cut = self.static_cut.saturating_add(other.static_cut);
    }
}

/// Pattern-match operator: finds all rows of `table` matching `pats`,
/// counting the probe and its result size. `table` may be a full
/// relation (index probe) or an iteration delta (delta scan) — the
/// distinction lives in the logical plan; physically both route through
/// the table's most selective column index.
pub fn probe(
    table: &Table,
    reg: &CVarRegistry,
    pats: &[Pattern],
    ops: &mut OpStats,
) -> Vec<(usize, Condition)> {
    ops.probes += 1;
    let matches = table.find_matches(reg, pats);
    ops.rows_matched += matches.len() as u64;
    matches
}

/// Condition accumulator for the conjoining join.
///
/// Join recursion pushes fragments (row conditions, match conditions
/// `μ`, pushed-down comparison atoms) as it descends and truncates back
/// to a [`mark`](CondAcc::mark) when it backtracks; the full
/// conjunction is only materialised at the leaf. Row conditions are
/// `Arc`-backed, so each push is O(1) — the old code paid a flattened
/// `And`-vector rebuild per nesting level per row.
#[derive(Clone, Debug, Default)]
pub struct CondAcc {
    parts: Vec<Condition>,
}

impl CondAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a fragment; `True` is skipped. Returns `false` when the
    /// fragment is `False` (the branch is dead and the caller should
    /// backtrack — the fragment is *not* pushed).
    pub fn push(&mut self, c: Condition, ops: &mut OpStats) -> bool {
        match c {
            Condition::True => true,
            Condition::False => false,
            other => {
                ops.conds_conjoined += 1;
                self.parts.push(other);
                true
            }
        }
    }

    /// Current stack depth, for later [`truncate`](CondAcc::truncate).
    pub fn mark(&self) -> usize {
        self.parts.len()
    }

    /// Backtracks to a previous [`mark`](CondAcc::mark).
    pub fn truncate(&mut self, mark: usize) {
        self.parts.truncate(mark);
    }

    /// Materialises the conjunction of all pushed fragments.
    pub fn materialize(&self) -> Condition {
        match self.parts.len() {
            0 => Condition::True,
            1 => self.parts[0].clone(),
            _ => Condition::conj(self.parts.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{CTuple, Schema, Term};

    #[test]
    fn probe_counts_rows() {
        let reg = CVarRegistry::new();
        let mut t = Table::new(Schema::new("E", &["a", "b"]));
        for i in 0..5 {
            t.insert(CTuple::new([Term::int(i % 2), Term::int(i)]))
                .unwrap();
        }
        let mut ops = OpStats::default();
        let m = probe(
            &t,
            &reg,
            &[Pattern::Exact(Term::int(0)), Pattern::Any],
            &mut ops,
        );
        assert_eq!(m.len(), 3);
        assert_eq!(ops.probes, 1);
        assert_eq!(ops.rows_matched, 3);
    }

    #[test]
    fn acc_materializes_and_backtracks() {
        let mut ops = OpStats::default();
        let mut acc = CondAcc::new();
        let a = Condition::eq(Term::int(1), Term::int(1));
        let b = Condition::ne(Term::int(1), Term::int(2));
        assert!(acc.push(Condition::True, &mut ops));
        assert_eq!(acc.materialize(), Condition::True);
        assert!(acc.push(a.clone(), &mut ops));
        let mark = acc.mark();
        assert!(acc.push(b.clone(), &mut ops));
        assert_eq!(acc.materialize(), Condition::conj(vec![a.clone(), b]));
        acc.truncate(mark);
        assert_eq!(acc.materialize(), a);
        assert!(!acc.push(Condition::False, &mut ops));
        assert_eq!(ops.conds_conjoined, 2);
    }

    #[test]
    fn absorb_saturates_instead_of_wrapping() {
        let mut a = OpStats {
            probes: u64::MAX - 1,
            rows_matched: u64::MAX,
            conds_conjoined: 1,
            cmp_pruned: 0,
            neg_checks: u64::MAX,
            static_cut: u64::MAX,
        };
        let b = OpStats {
            probes: 5,
            rows_matched: 5,
            conds_conjoined: 2,
            cmp_pruned: 3,
            neg_checks: 1,
            static_cut: 1,
        };
        a.absorb(&b);
        assert_eq!(a.probes, u64::MAX);
        assert_eq!(a.rows_matched, u64::MAX);
        assert_eq!(a.conds_conjoined, 3);
        assert_eq!(a.cmp_pruned, 3);
        assert_eq!(a.neg_checks, u64::MAX);
        assert_eq!(a.static_cut, u64::MAX);
    }
}
