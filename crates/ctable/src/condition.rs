//! The condition language attached to c-table rows.
//!
//! A condition is a boolean combination of *atoms*. Following the
//! paper's examples, two kinds of atoms are needed:
//!
//! * **term comparisons** — `x̄ = [ABC]`, `ȳ ≠ 1.2.3.4`, `p̄ ≠ 7000`:
//!   (dis)equalities and orderings between elements of the c-domain;
//! * **linear constraints** — `x̄ + ȳ + z̄ = 1`, `ȳ + z̄ < 2`: integer
//!   linear expressions over c-variables compared to each other or to
//!   constants.
//!
//! Both are represented by [`Atom`] with [`Expr`] sides. Conditions are
//! built structurally during query evaluation (conjunction of body
//! conditions, plus pattern-matching equalities) and later simplified /
//! pruned by the `faure-solver` crate.

use crate::cvar::{CVarId, CVarRegistry};
use crate::value::Const;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::term::Term;

/// Comparison operators usable in atoms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CmpOp {
    /// Equality `=`.
    Eq,
    /// Disequality `!=`.
    Ne,
    /// Strictly less `<` (numeric sides only).
    Lt,
    /// Less-or-equal `<=` (numeric sides only).
    Le,
    /// Strictly greater `>` (numeric sides only).
    Gt,
    /// Greater-or-equal `>=` (numeric sides only).
    Ge,
}

impl CmpOp {
    /// The operator expressing the negation of `self`.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with swapped sides (`a op b` iff `b op.flip() a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Applies the operator to an [`Ordering`] between two values.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An integer linear expression `Σ coefᵢ · x̄ᵢ + constant`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinExpr {
    /// Coefficient / c-variable pairs, kept sorted by variable id with
    /// no duplicates and no zero coefficients (normalised on build).
    pub terms: Vec<(i64, CVarId)>,
    /// Additive constant.
    pub constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: 0,
        }
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single c-variable.
    pub fn var(v: CVarId) -> Self {
        LinExpr {
            terms: vec![(1, v)],
            constant: 0,
        }
    }

    /// Sum of c-variables, e.g. `x̄ + ȳ + z̄`.
    pub fn sum<I: IntoIterator<Item = CVarId>>(vars: I) -> Self {
        let mut e = LinExpr::zero();
        for v in vars {
            e = e.plus_var(1, v);
        }
        e
    }

    /// Adds `coef · v` to the expression (normalising).
    pub fn plus_var(mut self, coef: i64, v: CVarId) -> Self {
        match self.terms.binary_search_by_key(&v, |&(_, var)| var) {
            Ok(i) => {
                self.terms[i].0 += coef;
                if self.terms[i].0 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => {
                if coef != 0 {
                    self.terms.insert(i, (coef, v));
                }
            }
        }
        self
    }

    /// Adds a constant.
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// `self - other`.
    pub fn minus(mut self, other: &LinExpr) -> Self {
        for &(coef, v) in &other.terms {
            self = self.plus_var(-coef, v);
        }
        self.constant -= other.constant;
        self
    }

    /// Whether the expression mentions no c-variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression under an assignment. Returns `None` if
    /// some c-variable is unbound or maps to a non-integer constant.
    pub fn eval(&self, lookup: &impl Fn(CVarId) -> Option<Const>) -> Option<i64> {
        let mut acc = self.constant;
        for &(coef, v) in &self.terms {
            acc += coef * lookup(v)?.as_int()?;
        }
        Some(acc)
    }

    /// All c-variables mentioned.
    pub fn cvars(&self, out: &mut BTreeSet<CVarId>) {
        out.extend(self.terms.iter().map(|&(_, v)| v));
    }
}

/// One side of an atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Expr {
    /// A c-domain term (constant or c-variable).
    Term(Term),
    /// An integer linear expression over c-variables.
    Lin(LinExpr),
}

impl Expr {
    /// All c-variables mentioned.
    pub fn cvars(&self, out: &mut BTreeSet<CVarId>) {
        match self {
            Expr::Term(Term::Var(v)) => {
                out.insert(*v);
            }
            Expr::Term(Term::Const(_)) => {}
            Expr::Lin(l) => l.cvars(out),
        }
    }

    /// Evaluates under an assignment; yields a constant.
    ///
    /// Linear expressions evaluate to `Const::Int`; returns `None` if
    /// a referenced c-variable is unbound or a linear expression
    /// references a non-integer-valued c-variable.
    pub fn eval(&self, lookup: &impl Fn(CVarId) -> Option<Const>) -> Option<Const> {
        match self {
            Expr::Term(t) => t.instantiate(lookup),
            Expr::Lin(l) => l.eval(lookup).map(Const::Int),
        }
    }
}

impl From<Term> for Expr {
    fn from(t: Term) -> Self {
        Expr::Term(t)
    }
}

impl From<LinExpr> for Expr {
    fn from(l: LinExpr) -> Self {
        Expr::Lin(l)
    }
}

impl From<Const> for Expr {
    fn from(c: Const) -> Self {
        Expr::Term(Term::Const(c))
    }
}

/// An atomic comparison `lhs op rhs`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Atom {
    /// Left side.
    pub lhs: Expr,
    /// Operator.
    pub op: CmpOp,
    /// Right side.
    pub rhs: Expr,
}

impl Atom {
    /// Builds an atom.
    pub fn new(lhs: impl Into<Expr>, op: CmpOp, rhs: impl Into<Expr>) -> Self {
        Atom {
            lhs: lhs.into(),
            op,
            rhs: rhs.into(),
        }
    }

    /// Evaluates the atom under an assignment.
    ///
    /// Ordering comparisons (`<`, `<=`, `>`, `>=`) between non-integer
    /// constants use the total structural order on [`Const`]; equality
    /// comparisons are structural. Returns `None` when a referenced
    /// c-variable is unbound or a linear side references a non-integer
    /// constant (a modelling error).
    pub fn eval(&self, lookup: &impl Fn(CVarId) -> Option<Const>) -> Option<bool> {
        let l = self.lhs.eval(lookup)?;
        let r = self.rhs.eval(lookup)?;
        Some(self.op.eval(l.cmp(&r)))
    }

    /// All c-variables mentioned.
    pub fn cvars(&self, out: &mut BTreeSet<CVarId>) {
        self.lhs.cvars(out);
        self.rhs.cvars(out);
    }

    /// Canonical orientation: symmetric operators (`=`, `!=`) put the
    /// smaller side left; `>` / `>=` rewrite to `<` / `<=` with swapped
    /// sides. Logically equivalent atoms built in different orders then
    /// compare equal, which matters for structural deduplication.
    pub fn normalized(self) -> Atom {
        match self.op {
            CmpOp::Eq | CmpOp::Ne => {
                if self.rhs < self.lhs {
                    Atom {
                        lhs: self.rhs,
                        op: self.op,
                        rhs: self.lhs,
                    }
                } else {
                    self
                }
            }
            CmpOp::Gt | CmpOp::Ge => Atom {
                lhs: self.rhs,
                op: self.op.flipped(),
                rhs: self.lhs,
            },
            CmpOp::Lt | CmpOp::Le => self,
        }
    }
}

/// A row condition: a boolean formula over [`Atom`]s.
///
/// `True` is the *empty condition* of the paper (the row is present in
/// every world); `False` marks a contradictory row (pruned by the
/// solver phase).
///
/// Composite nodes (`Not` / `And` / `Or`) hold their children behind
/// [`Arc`], so cloning a condition is O(1) regardless of its size and
/// subtrees are **shared** between the conditions derived from them.
/// This matters in the join inner loop: conjoining a body row's
/// condition into a derived row's condition bumps a reference count
/// instead of deep-copying the tree. Equality, hashing, and ordering
/// all remain structural (they see through the `Arc`).
///
/// The derived [`Ord`] is a total *structural* order; it has no
/// semantic meaning but gives canonicalisation a collision-free sort
/// key (see `faure_core::eval::canonicalize`).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Condition {
    /// Always true (empty condition).
    True,
    /// Always false (contradiction).
    False,
    /// An atomic comparison.
    Atom(Atom),
    /// Negation.
    Not(Arc<Condition>),
    /// Conjunction (empty = true).
    And(Arc<Vec<Condition>>),
    /// Disjunction (empty = false).
    Or(Arc<Vec<Condition>>),
}

impl Condition {
    /// Raw conjunction node over `children` (no flattening or
    /// constant folding; use [`Condition::and`] / [`Condition::all`]
    /// for the smart constructors).
    pub fn conj(children: Vec<Condition>) -> Condition {
        Condition::And(Arc::new(children))
    }

    /// Raw disjunction node over `children` (no flattening or
    /// constant folding; use [`Condition::or`] / [`Condition::any`]
    /// for the smart constructors).
    pub fn disj(children: Vec<Condition>) -> Condition {
        Condition::Or(Arc::new(children))
    }

    /// Takes ownership of a shared child vector, cloning the vector
    /// only when other references to it exist (and then only
    /// shallowly — the children themselves are `Arc`-cheap).
    pub fn take_children(cs: Arc<Vec<Condition>>) -> Vec<Condition> {
        Arc::try_unwrap(cs).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Takes ownership of a shared `Not` child.
    pub fn take_inner(c: Arc<Condition>) -> Condition {
        Arc::try_unwrap(c).unwrap_or_else(|shared| (*shared).clone())
    }
    /// Shorthand for an equality atom between two terms.
    pub fn eq(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Self {
        Condition::Atom(Atom::new(lhs, CmpOp::Eq, rhs))
    }

    /// Shorthand for a disequality atom between two terms.
    pub fn ne(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Self {
        Condition::Atom(Atom::new(lhs, CmpOp::Ne, rhs))
    }

    /// Shorthand for a general comparison atom.
    pub fn cmp(lhs: impl Into<Expr>, op: CmpOp, rhs: impl Into<Expr>) -> Self {
        Condition::Atom(Atom::new(lhs, op, rhs))
    }

    /// Conjunction that flattens nested `And`s and short-circuits on
    /// constants (`True` disappears, `False` dominates).
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (Condition::True, c) | (c, Condition::True) => c,
            (Condition::And(mut a), Condition::And(b)) => {
                Arc::make_mut(&mut a).extend(Condition::take_children(b));
                Condition::And(a)
            }
            (Condition::And(mut a), c) => {
                Arc::make_mut(&mut a).push(c);
                Condition::And(a)
            }
            (c, Condition::And(mut b)) => {
                Arc::make_mut(&mut b).insert(0, c);
                Condition::And(b)
            }
            (a, b) => Condition::conj(vec![a, b]),
        }
    }

    /// Disjunction that flattens nested `Or`s and short-circuits on
    /// constants.
    pub fn or(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (Condition::False, c) | (c, Condition::False) => c,
            (Condition::Or(mut a), Condition::Or(b)) => {
                Arc::make_mut(&mut a).extend(Condition::take_children(b));
                Condition::Or(a)
            }
            (Condition::Or(mut a), c) => {
                Arc::make_mut(&mut a).push(c);
                Condition::Or(a)
            }
            (c, Condition::Or(mut b)) => {
                Arc::make_mut(&mut b).insert(0, c);
                Condition::Or(b)
            }
            (a, b) => Condition::disj(vec![a, b]),
        }
    }

    /// Logical negation with constant folding and double-negation
    /// elimination (not full NNF; the solver does that).
    pub fn negate(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(inner) => Condition::take_inner(inner),
            Condition::Atom(a) => Condition::Atom(Atom {
                lhs: a.lhs,
                op: a.op.negated(),
                rhs: a.rhs,
            }),
            other => Condition::Not(Arc::new(other)),
        }
    }

    /// Conjunction of an iterator of conditions.
    pub fn all<I: IntoIterator<Item = Condition>>(conds: I) -> Condition {
        conds.into_iter().fold(Condition::True, |acc, c| acc.and(c))
    }

    /// Disjunction of an iterator of conditions.
    pub fn any<I: IntoIterator<Item = Condition>>(conds: I) -> Condition {
        conds.into_iter().fold(Condition::False, |acc, c| acc.or(c))
    }

    /// Evaluates the condition under an assignment of the c-variables
    /// it mentions. Returns `None` when a referenced c-variable is
    /// unbound or a linear atom references a non-integer constant.
    pub fn eval(&self, lookup: &impl Fn(CVarId) -> Option<Const>) -> Option<bool> {
        match self {
            Condition::True => Some(true),
            Condition::False => Some(false),
            Condition::Atom(a) => a.eval(lookup),
            Condition::Not(c) => c.eval(lookup).map(|b| !b),
            Condition::And(cs) => {
                for c in cs.iter() {
                    if !c.eval(lookup)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Condition::Or(cs) => {
                for c in cs.iter() {
                    if c.eval(lookup)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
        }
    }

    /// Collects all c-variables mentioned anywhere in the condition.
    pub fn cvars(&self) -> BTreeSet<CVarId> {
        let mut out = BTreeSet::new();
        self.collect_cvars(&mut out);
        out
    }

    /// Appends mentioned c-variables into `out`.
    pub fn collect_cvars(&self, out: &mut BTreeSet<CVarId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Atom(a) => a.cvars(out),
            Condition::Not(c) => c.collect_cvars(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs.iter() {
                    c.collect_cvars(out);
                }
            }
        }
    }

    /// Structural size (number of atoms and connectives); used to keep
    /// simplification monotone and in tests.
    pub fn size(&self) -> usize {
        match self {
            Condition::True | Condition::False => 1,
            Condition::Atom(_) => 1,
            Condition::Not(c) => 1 + c.size(),
            Condition::And(cs) | Condition::Or(cs) => {
                1 + cs.iter().map(Condition::size).sum::<usize>()
            }
        }
    }

    /// Renders with names from `reg`.
    pub fn display<'a>(&'a self, reg: &'a CVarRegistry) -> CondDisplay<'a> {
        CondDisplay { cond: self, reg }
    }
}

/// Helper returned by [`Condition::display`].
pub struct CondDisplay<'a> {
    cond: &'a Condition,
    reg: &'a CVarRegistry,
}

impl CondDisplay<'_> {
    fn fmt_expr(&self, e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            Expr::Term(t) => write!(f, "{}", t.display(self.reg)),
            Expr::Lin(l) => {
                let mut first = true;
                for &(coef, v) in &l.terms {
                    if first {
                        if coef == 1 {
                            write!(f, "{}'", self.reg.name(v))?;
                        } else {
                            write!(f, "{}*{}'", coef, self.reg.name(v))?;
                        }
                        first = false;
                    } else if coef == 1 {
                        write!(f, " + {}'", self.reg.name(v))?;
                    } else {
                        write!(f, " + {}*{}'", coef, self.reg.name(v))?;
                    }
                }
                if l.constant != 0 || first {
                    if first {
                        write!(f, "{}", l.constant)?;
                    } else {
                        write!(f, " + {}", l.constant)?;
                    }
                }
                Ok(())
            }
        }
    }

    fn fmt_cond(&self, c: &Condition, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match c {
            Condition::True => f.write_str("true"),
            Condition::False => f.write_str("false"),
            Condition::Atom(a) => {
                self.fmt_expr(&a.lhs, f)?;
                write!(f, " {} ", a.op)?;
                self.fmt_expr(&a.rhs, f)
            }
            Condition::Not(inner) => {
                f.write_str("!(")?;
                self.fmt_cond(inner, f)?;
                f.write_str(")")
            }
            Condition::And(cs) => {
                f.write_str("(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" & ")?;
                    }
                    self.fmt_cond(c, f)?;
                }
                f.write_str(")")
            }
            Condition::Or(cs) => {
                f.write_str("(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" | ")?;
                    }
                    self.fmt_cond(c, f)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for CondDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_cond(self.cond, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvar::Domain;

    fn reg3() -> (CVarRegistry, CVarId, CVarId, CVarId) {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let z = reg.fresh("z", Domain::Bool01);
        (reg, x, y, z)
    }

    #[test]
    fn linexpr_normalises() {
        let (_, x, y, _) = reg3();
        let e = LinExpr::zero()
            .plus_var(1, x)
            .plus_var(2, y)
            .plus_var(-1, x)
            .plus_const(5);
        assert_eq!(e.terms, vec![(2, y)]);
        assert_eq!(e.constant, 5);
        assert!(!e.is_constant());
        assert!(LinExpr::constant(3).is_constant());
    }

    #[test]
    fn linexpr_eval() {
        let (_, x, y, z) = reg3();
        let e = LinExpr::sum([x, y, z]);
        let lookup = |v: CVarId| Some(Const::Int(if v == x { 0 } else { 1 }));
        assert_eq!(e.eval(&lookup), Some(2));
        let bad = |_: CVarId| Some(Const::sym("oops"));
        assert_eq!(e.eval(&bad), None);
    }

    #[test]
    fn atom_eval_orders_and_equalities() {
        let (_, x, _, _) = reg3();
        let lookup = |_: CVarId| Some(Const::Int(1));
        // x̄ = 1 under x̄ := 1
        assert_eq!(
            Atom::new(Term::Var(x), CmpOp::Eq, Term::int(1)).eval(&lookup),
            Some(true)
        );
        // x̄ < 1 is false
        assert_eq!(
            Atom::new(Term::Var(x), CmpOp::Lt, Term::int(1)).eval(&lookup),
            Some(false)
        );
        // symbolic comparison
        let sym_lookup = |_: CVarId| Some(Const::sym("ADEC"));
        assert_eq!(
            Atom::new(Term::Var(x), CmpOp::Ne, Term::sym("ABC")).eval(&sym_lookup),
            Some(true)
        );
    }

    #[test]
    fn and_or_short_circuit() {
        let t = Condition::True;
        let f = Condition::False;
        assert_eq!(t.clone().and(f.clone()), Condition::False);
        assert_eq!(t.clone().or(f.clone()), Condition::True);
        let (_, x, _, _) = reg3();
        let a = Condition::eq(Term::Var(x), Term::int(1));
        assert_eq!(a.clone().and(Condition::True), a);
        assert_eq!(a.clone().or(Condition::False), a);
    }

    #[test]
    fn and_flattens() {
        let (_, x, y, z) = reg3();
        let a = Condition::eq(Term::Var(x), Term::int(1));
        let b = Condition::eq(Term::Var(y), Term::int(1));
        let c = Condition::eq(Term::Var(z), Term::int(1));
        let all = a.clone().and(b.clone()).and(c.clone());
        assert_eq!(all, Condition::conj(vec![a, b, c]));
    }

    #[test]
    fn negate_atoms_directly() {
        let (_, x, _, _) = reg3();
        let a = Condition::eq(Term::Var(x), Term::int(1));
        assert_eq!(a.negate(), Condition::ne(Term::Var(x), Term::int(1)));
        assert_eq!(Condition::True.negate(), Condition::False);
    }

    #[test]
    fn double_negation_cancels() {
        let (_, x, y, _) = reg3();
        let inner =
            Condition::eq(Term::Var(x), Term::int(0)).or(Condition::eq(Term::Var(y), Term::int(0)));
        assert_eq!(inner.clone().negate().negate(), inner);
    }

    #[test]
    fn eval_nested() {
        let (_, x, y, z) = reg3();
        // (x̄+ȳ+z̄ = 1) ∧ ȳ = 0, under x̄=1, ȳ=0, z̄=0
        let c = Condition::cmp(LinExpr::sum([x, y, z]), CmpOp::Eq, LinExpr::constant(1))
            .and(Condition::eq(Term::Var(y), Term::int(0)));
        let lookup = |v: CVarId| Some(Const::Int(if v == x { 1 } else { 0 }));
        assert_eq!(c.eval(&lookup), Some(true));
        let lookup2 = |_: CVarId| Some(Const::Int(1));
        assert_eq!(c.eval(&lookup2), Some(false));
    }

    #[test]
    fn cvars_collects_all() {
        let (_, x, y, z) = reg3();
        let c = Condition::cmp(LinExpr::sum([x, y]), CmpOp::Lt, LinExpr::constant(2))
            .and(Condition::ne(Term::Var(z), Term::sym("Mkt")));
        assert_eq!(c.cvars().into_iter().collect::<Vec<_>>(), vec![x, y, z]);
    }

    #[test]
    fn display_renders_readably() {
        let (reg, x, y, z) = reg3();
        let c = Condition::cmp(LinExpr::sum([x, y, z]), CmpOp::Eq, LinExpr::constant(1));
        assert_eq!(c.display(&reg).to_string(), "x' + y' + z' = 1");
    }
}
