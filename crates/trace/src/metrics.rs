//! Span roll-ups for the aggregated-metrics schema.
//!
//! The `--metrics` output and `faure profile` report both want
//! aggregates, not raw spans: "how long did all `rule-pass` spans for
//! rule 3 take, and how many rows did they produce?". [`rollup_spans`]
//! groups by `(cat, name)`; [`rollup_by_arg`] further splits one span
//! kind by an integer argument (the per-rule table keys on the `rule`
//! index argument). Numeric arguments are summed saturating; ordering
//! is first-seen, which is deterministic because the event stream is.

use crate::{ArgValue, Event};
use std::collections::BTreeMap;

/// Aggregate over all spans sharing a `(cat, name)` key (and, for
/// [`rollup_by_arg`], an argument value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rollup {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Number of spans aggregated.
    pub count: u64,
    /// Total duration in nanoseconds.
    pub wall_ns: u64,
    /// Saturating sums of every integer argument seen, by key. String
    /// and float arguments are not aggregated.
    pub sums: BTreeMap<&'static str, u64>,
    /// Last string value seen per string-argument key (labels like a
    /// rule's head predicate are constant within a group).
    pub labels: BTreeMap<&'static str, String>,
}

impl Rollup {
    fn new(cat: &'static str, name: &'static str) -> Self {
        Rollup {
            cat,
            name,
            count: 0,
            wall_ns: 0,
            sums: BTreeMap::new(),
            labels: BTreeMap::new(),
        }
    }

    fn absorb(&mut self, e: &Event) {
        self.count = self.count.saturating_add(1);
        self.wall_ns = self.wall_ns.saturating_add(e.dur_ns);
        for (k, v) in &e.args {
            match v {
                ArgValue::UInt(u) => {
                    let slot = self.sums.entry(k).or_insert(0);
                    *slot = slot.saturating_add(*u);
                }
                ArgValue::Int(i) => {
                    let slot = self.sums.entry(k).or_insert(0);
                    *slot = slot.saturating_add(u64::try_from(*i).unwrap_or(0));
                }
                ArgValue::Str(s) => {
                    self.labels.insert(k, s.clone());
                }
                ArgValue::Float(_) => {}
            }
        }
    }

    /// A summed argument, 0 if the key never appeared.
    pub fn sum(&self, key: &str) -> u64 {
        self.sums.get(key).copied().unwrap_or(0)
    }

    /// A label argument, if any span in the group carried it.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }
}

/// Groups spans by `(cat, name)` in first-seen order.
pub fn rollup_spans(events: &[Event]) -> Vec<Rollup> {
    let mut order: Vec<(&'static str, &'static str)> = Vec::new();
    let mut by_key: BTreeMap<(&'static str, &'static str), Rollup> = BTreeMap::new();
    for e in events {
        let key = (e.cat, e.name);
        by_key
            .entry(key)
            .or_insert_with(|| {
                order.push(key);
                Rollup::new(e.cat, e.name)
            })
            .absorb(e);
    }
    order
        .into_iter()
        .map(|k| by_key.remove(&k).expect("key inserted above"))
        .collect()
}

/// Splits spans matching `(cat, name)` by the integer argument `arg`
/// (e.g. per-rule roll-ups keyed by the `rule` index). Returns
/// `(arg value, rollup)` pairs in first-seen order; spans without the
/// argument are skipped.
pub fn rollup_by_arg(events: &[Event], cat: &str, name: &str, arg: &str) -> Vec<(u64, Rollup)> {
    let mut order: Vec<u64> = Vec::new();
    let mut by_key: BTreeMap<u64, Rollup> = BTreeMap::new();
    for e in events {
        if e.cat != cat || e.name != name {
            continue;
        }
        let Some(v) = e.arg_u64(arg) else { continue };
        by_key
            .entry(v)
            .or_insert_with(|| {
                order.push(v);
                Rollup::new(e.cat, e.name)
            })
            .absorb(e);
    }
    order
        .into_iter()
        .map(|v| (v, by_key.remove(&v).expect("key inserted above")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, dur: u64, args: Vec<(&'static str, ArgValue)>) -> Event {
        Event {
            cat: "fixpoint",
            name,
            start_ns: 0,
            dur_ns: dur,
            track: 0,
            args,
        }
    }

    #[test]
    fn groups_by_cat_name_in_first_seen_order() {
        let events = vec![
            span("rule-pass", 10, vec![("matches", 3u64.into())]),
            span("iteration", 5, vec![]),
            span("rule-pass", 20, vec![("matches", 4u64.into())]),
        ];
        let rollups = rollup_spans(&events);
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].name, "rule-pass");
        assert_eq!(rollups[0].count, 2);
        assert_eq!(rollups[0].wall_ns, 30);
        assert_eq!(rollups[0].sum("matches"), 7);
        assert_eq!(rollups[1].name, "iteration");
        assert_eq!(rollups[1].count, 1);
    }

    #[test]
    fn splits_by_integer_argument() {
        let events = vec![
            span(
                "rule-pass",
                10,
                vec![("rule", 1u64.into()), ("rows", 2u64.into())],
            ),
            span(
                "rule-pass",
                7,
                vec![("rule", 0u64.into()), ("rows", 1u64.into())],
            ),
            span(
                "rule-pass",
                5,
                vec![("rule", 1u64.into()), ("rows", 3u64.into())],
            ),
            span("iteration", 99, vec![("rule", 1u64.into())]),
            span("rule-pass", 4, vec![]), // no `rule` arg: skipped
        ];
        let by_rule = rollup_by_arg(&events, "fixpoint", "rule-pass", "rule");
        assert_eq!(by_rule.len(), 2);
        assert_eq!(by_rule[0].0, 1);
        assert_eq!(by_rule[0].1.wall_ns, 15);
        assert_eq!(by_rule[0].1.sum("rows"), 5);
        assert_eq!(by_rule[1].0, 0);
        assert_eq!(by_rule[1].1.wall_ns, 7);
    }

    #[test]
    fn keeps_last_string_label() {
        let events = vec![
            span("rule-pass", 1, vec![("head", "R".into())]),
            span("rule-pass", 1, vec![("head", "R".into())]),
        ];
        let rollups = rollup_spans(&events);
        assert_eq!(rollups[0].label("head"), Some("R"));
        assert_eq!(rollups[0].label("missing"), None);
    }

    #[test]
    fn negative_int_args_do_not_underflow() {
        let events = vec![span("rule-pass", 1, vec![("delta", ArgValue::Int(-5))])];
        let rollups = rollup_spans(&events);
        assert_eq!(rollups[0].sum("delta"), 0);
    }
}
