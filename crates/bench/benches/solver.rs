//! Micro-benchmarks of the condition solver (the Z3 substitute).
//!
//! These track the unit costs behind Table 4's solver column:
//! satisfiability of typical reachability conditions, entailment
//! checks used by the verifiers, and condition simplification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faure_ctable::{CVarId, CVarRegistry, CmpOp, Condition, Domain, LinExpr, Term};
use faure_solver::{implies, satisfiable, simplify};

/// Registry with `n` Bool01 link variables.
fn links(n: usize) -> (CVarRegistry, Vec<CVarId>) {
    let mut reg = CVarRegistry::new();
    let vars = (0..n)
        .map(|i| reg.fresh(format!("l{i}"), Domain::Bool01))
        .collect();
    (reg, vars)
}

/// A typical reachability condition: disjunction over paths, each a
/// conjunction of link-up atoms.
fn path_condition(vars: &[CVarId], paths: usize, hops: usize) -> Condition {
    Condition::any((0..paths).map(|p| {
        Condition::all((0..hops).map(|h| {
            let v = vars[(p * hops + h) % vars.len()];
            Condition::eq(Term::Var(v), Term::int(1))
        }))
    }))
}

fn bench_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_sat");
    for nvars in [4usize, 8, 12] {
        let (reg, vars) = links(nvars);
        let cond = path_condition(&vars, 4, 3).and(Condition::cmp(
            LinExpr::sum(vars.iter().copied().take(3)),
            CmpOp::Eq,
            LinExpr::constant(1),
        ));
        group.bench_with_input(
            BenchmarkId::new("paths_plus_linear", nvars),
            &cond,
            |b, cond| b.iter(|| satisfiable(&reg, cond).expect("supported")),
        );
    }
    group.finish();
}

fn bench_unsat_detection(c: &mut Criterion) {
    let (reg, vars) = links(6);
    // Contradiction: all links up AND sum < number of links.
    let cond = Condition::all(
        vars.iter()
            .map(|&v| Condition::eq(Term::Var(v), Term::int(1))),
    )
    .and(Condition::cmp(
        LinExpr::sum(vars.iter().copied()),
        CmpOp::Lt,
        LinExpr::constant(6),
    ));
    c.bench_function("solver_unsat_contradiction", |b| {
        b.iter(|| satisfiable(&reg, &cond).expect("supported"))
    });
}

fn bench_implication(c: &mut Criterion) {
    let (reg, vars) = links(6);
    let premise = Condition::cmp(
        LinExpr::sum(vars.iter().copied().take(3)),
        CmpOp::Eq,
        LinExpr::constant(3),
    );
    let conclusion = Condition::eq(Term::Var(vars[0]), Term::int(1));
    c.bench_function("solver_implies_linear_to_atom", |b| {
        b.iter(|| implies(&reg, &premise, &conclusion).expect("supported"))
    });
}

fn bench_simplify(c: &mut Criterion) {
    let (_, vars) = links(8);
    let cond = path_condition(&vars, 6, 4);
    let messy = cond
        .clone()
        .and(cond.clone())
        .and(Condition::True)
        .or(Condition::False);
    c.bench_function("solver_structural_simplify", |b| {
        b.iter(|| simplify(&messy))
    });
}

criterion_group!(
    benches,
    bench_satisfiability,
    bench_unsat_detection,
    bench_implication,
    bench_simplify
);
criterion_main!(benches);
