//! `faure check` over every shipped example program: the examples must
//! stay diagnostic-clean (no errors, no warnings) — except the
//! `bad_*` fixtures, which exist to trip specific diagnostics and
//! must keep tripping exactly those — and the analyzer must exercise
//! at least five distinct diagnostic classes on a deliberately broken
//! program.

use faure_analyze::{check_source, Severity};
use std::path::PathBuf;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples/programs")
}

fn is_fl(path: &std::path::Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("fl")
}

fn is_bad_fixture(path: &std::path::Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("bad_"))
}

#[test]
fn every_example_program_checks_clean() {
    let dir = programs_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if !is_fl(&path) || is_bad_fixture(&path) {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let report = check_source(&src);
        assert!(
            report.is_empty(),
            "{} has diagnostics:\n{}",
            path.display(),
            report.render(&src, path.to_str().unwrap())
        );
        checked += 1;
    }
    assert!(checked >= 5, "expected at least 5 example programs");
}

/// Every `bad_*` fixture trips exactly the diagnostic its name
/// advertises (these are the programs the CI `check-examples` job
/// runs `faure check --deny warnings` against, expecting exit 1).
#[test]
fn bad_example_fixtures_trip_their_advertised_codes() {
    let expected = [
        ("bad_unsafe_head.fl", "F0001"),
        ("bad_empty_join.fl", "F0010"),
        ("bad_no_growth.fl", "F0012"),
        ("bad_kind_mismatch.fl", "F0009"),
    ];
    for (file, code) in expected {
        let path = programs_dir().join(file);
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = check_source(&src);
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "{file} must trigger {code}, got:\n{}",
            report.render(&src, file)
        );
    }
    // And the clean sweep above really skips them all.
    let bad_on_disk: Vec<_> = std::fs::read_dir(programs_dir())
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (is_fl(&path) && is_bad_fixture(&path))
                .then(|| path.file_name().unwrap().to_str().unwrap().to_owned())
        })
        .collect();
    assert_eq!(
        bad_on_disk.len(),
        expected.len(),
        "bad_* fixture on disk without a code expectation: {bad_on_disk:?}"
    );
}

#[test]
fn broken_program_yields_many_distinct_diagnostic_classes() {
    // One program tripping six diagnostic classes in a single run.
    let src = "\
R(a, b) :- F(a).\n\
S(x) :- F(x, x), x < 2, x > 5.\n\
P(q) :- N(q), !Q(q).\n\
Q(q) :- N(q), !P(q).\n\
Dead(a) :- Dead(a).\n\
T(a) :- F(a, b, c).\n";
    let report = check_source(src);
    let mut codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    assert!(
        codes.len() >= 5,
        "expected >= 5 distinct classes, got {codes:?}\n{}",
        report.render(src, "broken.fl")
    );
    assert!(report.has_errors());
    // Errors and warnings coexist in one report (not fail-fast).
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Warning));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error));
}
