//! # faure-bench — benchmark harness for the paper's Table 4
//!
//! Table 4 of the paper reports, per input size (1 000 / 10 000 /
//! 100 000 / 922 067 prefixes) and per query (q4–q5 recursion, q6, q7,
//! q8), the SQL-phase time, the Z3 time, and the number of tuples
//! produced. This crate regenerates that table on the synthetic RIB
//! workload:
//!
//! * [`run_table4_row`] evaluates the whole Listing 2 pipeline for one
//!   prefix count and collects the per-query [`QueryStats`];
//! * the `table4` binary sweeps the sizes and prints the table (plus a
//!   machine-readable JSON dump for EXPERIMENTS.md);
//! * the Criterion benches (`benches/`) track per-query latency at
//!   fixed sizes, solver micro-costs, and the design ablations
//!   (semi-naive vs naive fixpoint, solver pruning policies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faure_core::{evaluate_with, Delta, Engine, EvalError, EvalOptions, PrunePolicy};
use faure_ctable::Const;
use faure_net::{queries, rib};
use faure_solver::session::SolverStats;
use faure_storage::OpStats;
use std::time::Duration;

/// Timing + size numbers for one query (one cell group of Table 4).
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Relational-phase time ("sql" column), seconds.
    pub sql: f64,
    /// Solver-phase time ("Z3" column), seconds.
    pub solver: f64,
    /// Number of tuples produced ("#tuples" column).
    pub tuples: usize,
    /// Solver memo hit rate over the evaluation (0.0 when the solver
    /// was never consulted).
    pub memo_hit_rate: f64,
    /// Fraction of memo queries answered by an entry from an earlier
    /// run of the same memo (batch-mode reuse; 0.0 for the one-shot
    /// evaluations this harness runs).
    pub memo_cross_run_hit_rate: f64,
    /// Elapsed wall-clock of the prune phase alone, seconds. Shrinks
    /// with the thread count under parallel pruning while `solver`
    /// (per-worker CPU time) stays flat.
    pub prune_wall: f64,
    /// Delta rows after each semi-naive iteration (across strata, in
    /// evaluation order) — the convergence profile of the fixpoint.
    pub delta_sizes: Vec<usize>,
    /// Per-operator execution counters (probes, rows matched,
    /// conditions conjoined, comparison-pruned branches, negation
    /// checks) — the relational half of the aggregated-metrics block.
    pub ops: OpStats,
    /// Fine-grained solver counters (sat calls, memo hits/misses,
    /// per-check latency histogram) — the solver half.
    pub solver_stats: SolverStats,
    /// Rule plans served from the per-evaluation plan cache.
    pub plan_cache_hits: u64,
    /// Rule plans compiled because no cached plan existed.
    pub plan_cache_misses: u64,
    /// Condition-pool counters snapshotted when the query finished
    /// (the pool is process-global, so these are cumulative: `size`
    /// is the number of distinct condition nodes ever interned and
    /// `hits` the dedup lookups answered by an existing node).
    pub pool: faure_ctable::PoolStats,
}

impl QueryStats {
    fn from_phase(stats: &faure_storage::PhaseStats) -> Self {
        QueryStats {
            sql: stats.relational.as_secs_f64(),
            solver: stats.solver.as_secs_f64(),
            tuples: stats.tuples,
            memo_hit_rate: stats.solver_stats.memo_hit_rate(),
            memo_cross_run_hit_rate: stats.solver_stats.memo_cross_run_hit_rate(),
            prune_wall: stats.prune_wall.as_secs_f64(),
            delta_sizes: stats.delta_sizes.clone(),
            ops: stats.ops.clone(),
            solver_stats: stats.solver_stats,
            plan_cache_hits: stats.plan_cache_hits,
            plan_cache_misses: stats.plan_cache_misses,
            pool: faure_ctable::pool::pool_stats(),
        }
    }

    /// JSON object for this cell group (no external serializer in the
    /// offline build, so the encoding is by hand). The `metrics` block
    /// mirrors the CLI's `--metrics` per-database schema (ops, solver,
    /// plan-cache counters, solve-latency histogram).
    pub fn to_json(&self) -> String {
        let deltas: Vec<String> = self.delta_sizes.iter().map(|d| d.to_string()).collect();
        let ops = &self.ops;
        let sv = &self.solver_stats;
        format!(
            "{{\"sql\":{},\"solver\":{},\"prune_wall\":{},\"tuples\":{},\"memo_hit_rate\":{:.4},\"memo_cross_run_hit_rate\":{:.4},\"delta_sizes\":[{}],\
             \"metrics\":{{\
             \"ops\":{{\"probes\":{},\"rows_matched\":{},\"conds_conjoined\":{},\"cmp_pruned\":{},\"neg_checks\":{},\"static_cut\":{}}},\
             \"solver\":{{\"sat_calls\":{},\"sat_true\":{},\"simplify_calls\":{},\"memo_hits\":{},\"cross_run_hits\":{},\"memo_misses\":{},\"memo_cross_run_hit_rate\":{:.4},\"time_ns\":{},\"latency_ns\":{}}},\
             \"plan_cache\":{{\"hits\":{},\"misses\":{}}},\
             \"pool\":{{\"pool_hits\":{},\"pool_misses\":{},\"pool_size\":{},\"hit_rate\":{:.4}}}}}}}",
            self.sql,
            self.solver,
            self.prune_wall,
            self.tuples,
            self.memo_hit_rate,
            self.memo_cross_run_hit_rate,
            deltas.join(","),
            ops.probes,
            ops.rows_matched,
            ops.conds_conjoined,
            ops.cmp_pruned,
            ops.neg_checks,
            ops.static_cut,
            sv.sat_calls,
            sv.sat_true,
            sv.simplify_calls,
            sv.memo_hits,
            sv.cross_run_hits,
            sv.memo_misses,
            sv.memo_cross_run_hit_rate(),
            sv.time.as_nanos(),
            sv.latency.to_json(),
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.pool.hits,
            self.pool.misses,
            self.pool.size,
            self.pool.hit_rate(),
        )
    }
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Input size (number of prefixes).
    pub prefixes: usize,
    /// RNG seed used for the workload.
    pub seed: u64,
    /// Worker threads the row was evaluated with (1 = serial).
    pub threads: usize,
    /// Worker shards of the partitioned fixpoint (1 = single-space).
    pub shards: usize,
    /// q4–q5 delta rows routed to a non-producing shard (0 for
    /// single-space rows) — the cross-shard communication volume.
    pub routed_deltas: u64,
    /// Max/mean per-shard wall ratio of the q4–q5 sharded passes
    /// (`None` for single-space rows): 1.0 is perfect balance.
    pub shard_imbalance: Option<f64>,
    /// q4–q5 wall-clock (sql+solver) of the serial row divided by this
    /// row's — filled by the `table4` binary when it ran a serial
    /// baseline for the same size, `None` otherwise.
    pub speedup_q45: Option<f64>,
    /// Whether `speedup_q45` is a meaningful signal on this machine:
    /// `false` on single-core runners, where a 1-vs-N comparison
    /// measures scheduler noise, not parallel speedup. The `table4`
    /// binary derives it from the row's recorded `host_cores` field,
    /// so re-reading a dump never re-probes the current machine.
    pub speedup_valid: bool,
    /// Logical cores available to this process
    /// (`std::thread::available_parallelism()`), recorded so a
    /// `speedup_valid`/`speedup_q45` pair can be judged against the
    /// machine that produced it.
    pub host_cores: usize,
    /// q4–q5 prune-phase wall-clock of the serial row divided by this
    /// row's (the solver-phase counterpart of `speedup_q45`) — filled
    /// by the `table4` binary under the same conditions and gated on
    /// `speedup_valid` the same way.
    pub prune_speedup: Option<f64>,
    /// Size of the generated forwarding c-table.
    pub f_tuples: usize,
    /// q4–q5: all-pairs reachability (recursive).
    pub q45: QueryStats,
    /// q6: reachability under 2-link failure.
    pub q6: QueryStats,
    /// q7: point-to-point reachability under ȳ-failure.
    pub q7: QueryStats,
    /// q8: reachability with ≥ 1 of ȳ/z̄ failed.
    pub q8: QueryStats,
    /// Total wall-clock for the row, seconds.
    pub total: f64,
    /// Peak resident set size (`VmHWM` from `/proc/self/status`) in
    /// kB, sampled when the row finished. Process-wide high-water
    /// mark, so within one `table4` run it is monotone across rows;
    /// the first (largest-impact) row per size is the comparable
    /// number. `0` when the kernel interface is unavailable.
    pub peak_rss_kb: u64,
}

impl Table4Row {
    /// JSON object for this row. Tagged `"bench":"table4"` so readers
    /// (and the CI jq asserts) can tell Table 4 rows from churn rows
    /// when both share one array.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(s) => format!("{s:.3}"),
            None => "null".to_owned(),
        };
        format!(
            "{{\"bench\":\"table4\",\"prefixes\":{},\"seed\":{},\"threads\":{},\"shards\":{},\"routed_deltas\":{},\"shard_imbalance\":{},\"speedup_q45\":{},\"speedup_valid\":{},\"host_cores\":{},\"prune_wall\":{},\"prune_speedup\":{},\"f_tuples\":{},\"q45\":{},\"q6\":{},\"q7\":{},\"q8\":{},\"total\":{},\"peak_rss_kb\":{}}}",
            self.prefixes,
            self.seed,
            self.threads,
            self.shards,
            self.routed_deltas,
            opt(self.shard_imbalance),
            opt(self.speedup_q45),
            self.speedup_valid,
            self.host_cores,
            self.prune_wall(),
            opt(self.prune_speedup),
            self.f_tuples,
            self.q45.to_json(),
            self.q6.to_json(),
            self.q7.to_json(),
            self.q8.to_json(),
            self.total,
            self.peak_rss_kb
        )
    }

    /// q4–q5 wall-clock (the relational and solver phases together),
    /// seconds — the quantity `speedup_q45` compares across thread
    /// counts.
    pub fn q45_wall(&self) -> f64 {
        self.q45.sql + self.q45.solver
    }

    /// q4–q5 prune-phase wall-clock, seconds — the quantity
    /// `prune_speedup` compares across thread counts.
    pub fn prune_wall(&self) -> f64 {
        self.q45.prune_wall
    }
}

/// JSON array over rows, one row per line (the `--json` dump format of
/// the `table4` binary).
pub fn rows_to_json(rows: &[Table4Row]) -> String {
    let body: Vec<String> = rows.iter().map(|r| format!("  {}", r.to_json())).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

/// Harness options.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOptions {
    /// Workload seed.
    pub seed: u64,
    /// Evaluation options (prune policy, fixpoint strategy).
    pub eval: EvalOptions,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            seed: rib::RibParams::default().seed,
            eval: EvalOptions {
                prune: PrunePolicy::EndOfStratum,
                ..Default::default()
            },
        }
    }
}

/// Builds the workload for `prefixes` prefixes (paper parameters: 5
/// paths per prefix).
pub fn workload(prefixes: usize, seed: u64) -> rib::RibWorkload {
    rib::generate(&rib::RibParams {
        prefixes,
        seed,
        ..Default::default()
    })
}

/// Runs the full Listing 2 pipeline for one input size and returns the
/// Table 4 row.
pub fn run_table4_row(prefixes: usize, opts: &HarnessOptions) -> Result<Table4Row, EvalError> {
    let started = std::time::Instant::now();
    let w = workload(prefixes, opts.seed);
    let f_tuples = w.db.relation("F").map(|r| r.len()).unwrap_or(0);
    let pair = rib::frequent_pair(&w).unwrap_or((0, 1));

    // q4–q5: recursion over the whole workload. The stage order and
    // explicit drops below keep at most two R-sized databases alive at
    // once — the 100 000-prefix row otherwise exhausts a 16 GB machine.
    let mut out_r = evaluate_with(&queries::reachability_program(), &w.db, &opts.eval)?;
    drop(w);
    let q45 = QueryStats::from_phase(&out_r.stats);
    // The sharded-fixpoint counters of the recursive stage — the only
    // stage sharding targets (q6–q8 are non-recursive filters over R).
    let shard_stats = out_r.stats.shard.clone();

    // The downstream queries read only R: strip F and move R into a
    // slim database.
    let mut r_db = faure_ctable::Database::new();
    r_db.cvars = out_r.database.cvars.clone();
    r_db.set_relation(
        out_r
            .database
            .remove_relation("R")
            .expect("q4-q5 derived R"),
    );
    drop(out_r);

    // q8 reads R (run before q6 so only one derived stage is alive).
    let out8 = evaluate_with(&queries::q8_reach_with_failure(pair.0), &r_db, &opts.eval)?;
    let q8 = QueryStats::from_phase(&out8.stats);
    drop(out8);

    // q6 reads R.
    let mut out6 = evaluate_with(&queries::q6_two_link_failure(), &r_db, &opts.eval)?;
    let q6 = QueryStats::from_phase(&out6.stats);
    drop(r_db);

    // q7 reads T1 (nested query): strip everything else.
    let mut t1_db = faure_ctable::Database::new();
    t1_db.cvars = out6.database.cvars.clone();
    t1_db.set_relation(out6.database.remove_relation("T1").expect("q6 derived T1"));
    drop(out6);
    let out7 = evaluate_with(
        &queries::q7_pair_under_y_failure(pair.0, pair.1),
        &t1_db,
        &opts.eval,
    )?;
    let q7 = QueryStats::from_phase(&out7.stats);

    Ok(Table4Row {
        prefixes,
        seed: opts.seed,
        threads: opts.eval.threads,
        shards: opts.eval.shards.max(1),
        routed_deltas: shard_stats.routed_rows,
        shard_imbalance: shard_stats.imbalance(),
        speedup_q45: None,
        speedup_valid: false,
        host_cores: host_cores(),
        prune_speedup: None,
        f_tuples,
        q45,
        q6,
        q7,
        q8,
        total: started.elapsed().as_secs_f64(),
        peak_rss_kb: peak_rss_kb(),
    })
}

/// Like [`run_table4_row`] but evaluates only the recursive q4–q5
/// stage, leaving the q6–q8 cells zeroed. This is the path for the
/// paper's largest input (922 067 prefixes): the reachability fixpoint
/// alone derives ~28 M R-tuples, and the downstream q6 filter would
/// materialize another R-sized stage on top — q4–q5-only keeps the
/// peak at one derived database so the row completes (and records
/// `peak_rss_kb`) on hardware that the full row would exhaust.
pub fn run_table4_q45_row(prefixes: usize, opts: &HarnessOptions) -> Result<Table4Row, EvalError> {
    let started = std::time::Instant::now();
    let w = workload(prefixes, opts.seed);
    let f_tuples = w.db.relation("F").map(|r| r.len()).unwrap_or(0);
    let out_r = evaluate_with(&queries::reachability_program(), &w.db, &opts.eval)?;
    drop(w);
    let q45 = QueryStats::from_phase(&out_r.stats);
    let shard_stats = out_r.stats.shard.clone();
    Ok(Table4Row {
        prefixes,
        seed: opts.seed,
        threads: opts.eval.threads,
        shards: opts.eval.shards.max(1),
        routed_deltas: shard_stats.routed_rows,
        shard_imbalance: shard_stats.imbalance(),
        speedup_q45: None,
        speedup_valid: false,
        host_cores: host_cores(),
        prune_speedup: None,
        f_tuples,
        q45,
        q6: QueryStats::default(),
        q7: QueryStats::default(),
        q8: QueryStats::default(),
        total: started.elapsed().as_secs_f64(),
        peak_rss_kb: peak_rss_kb(),
    })
}

/// One row of the `churn` benchmark: a standing Table 4 materialization
/// absorbs an announce-heavy stream of single-tuple deltas (~9:1
/// insert:withdraw, the BGP churn shape from ROADMAP item 2), and the
/// mean per-update incremental wall is compared against one full
/// re-evaluation of the final database through the same compiled plans.
#[derive(Clone, Debug)]
pub struct ChurnRow {
    /// Input size (number of prefixes in the standing workload).
    pub prefixes: usize,
    /// RNG seed used for the workload.
    pub seed: u64,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Logical cores available to this process, recorded next to
    /// `speedup` so the incremental-vs-reeval ratio can be judged
    /// against the machine that produced it.
    pub host_cores: usize,
    /// Updates applied (each a single-tuple delta).
    pub updates: usize,
    /// How many of them were insertions (route announcements).
    pub inserts: usize,
    /// How many were exact-tuple deletions (withdrawals).
    pub deletes: usize,
    /// Size of the standing forwarding c-table before the stream.
    pub f_tuples: usize,
    /// Derived R tuples after the whole stream.
    pub r_tuples: usize,
    /// Wall-clock of the initial materialization (the batch fixpoint).
    pub materialize_wall_ns: u64,
    /// Sum of per-update apply wall-clocks.
    pub total_update_wall_ns: u64,
    /// Mean per-update apply wall-clock — the headline number.
    pub per_update_wall_ns: u64,
    /// Worst single update.
    pub max_update_wall_ns: u64,
    /// One full re-evaluation of the final database over the same
    /// prepared plans (what every update would cost without
    /// incremental maintenance).
    pub full_reeval_wall_ns: u64,
    /// `full_reeval_wall_ns / per_update_wall_ns`.
    pub speedup: f64,
    /// Derived rows (re)derived across the stream.
    pub rederived: usize,
    /// Derived rows removed during DRed over-deletion.
    pub overdeleted: usize,
}

impl ChurnRow {
    /// JSON object for this row. Tagged `"bench":"churn"` so readers
    /// (and the CI jq asserts) can tell churn rows from Table 4 rows
    /// when both share one array.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"churn\",\"prefixes\":{},\"seed\":{},\"threads\":{},\"host_cores\":{},\
             \"updates\":{},\
             \"inserts\":{},\"deletes\":{},\"f_tuples\":{},\"r_tuples\":{},\
             \"materialize_wall_ns\":{},\"total_update_wall_ns\":{},\"per_update_wall_ns\":{},\
             \"max_update_wall_ns\":{},\"full_reeval_wall_ns\":{},\"speedup\":{:.2},\
             \"rederived\":{},\"overdeleted\":{}}}",
            self.prefixes,
            self.seed,
            self.threads,
            self.host_cores,
            self.updates,
            self.inserts,
            self.deletes,
            self.f_tuples,
            self.r_tuples,
            self.materialize_wall_ns,
            self.total_update_wall_ns,
            self.per_update_wall_ns,
            self.max_update_wall_ns,
            self.full_reeval_wall_ns,
            self.speedup,
            self.rederived,
            self.overdeleted
        )
    }
}

/// Runs the `churn` benchmark for one input size: materialize the
/// reachability fixpoint (q4–q5) over the RIB workload once, stream
/// `updates` single-tuple deltas through
/// [`PreparedProgram::apply`](faure_core::PreparedProgram::apply), then
/// time one full re-evaluation of the final database as the baseline.
///
/// The stream is deterministic in `(seed, updates)`: update `i` is a
/// withdrawal of the `(7i)`-th original forwarding tuple when
/// `i % 10 == 9`, otherwise an announcement extending the `i`-th
/// tuple's path by one hop to a fresh node — so inserts join into the
/// standing reachability relation (recursive rederivation) rather than
/// forming disconnected edges, and deletes exercise the DRed path.
pub fn run_churn_row(
    prefixes: usize,
    updates: usize,
    opts: &HarnessOptions,
) -> Result<ChurnRow, EvalError> {
    let w = workload(prefixes, opts.seed);
    let program = queries::reachability_program();

    // Ground term triples of the standing F table, stream fodder.
    let f_rows: Vec<[i64; 3]> =
        w.db.relation("F")
            .map(|rel| {
                rel.iter()
                    .filter_map(|t| {
                        let mut row = [0i64; 3];
                        for (slot, term) in row.iter_mut().zip(&t.terms) {
                            *slot = term.as_const().and_then(|c| c.as_int())?;
                        }
                        Some(row)
                    })
                    .collect()
            })
            .unwrap_or_default();
    let f_tuples = f_rows.len();
    assert!(f_tuples > 0, "workload generated no ground F tuples");

    let prepared = Engine::with_options(opts.eval).prepare(&program)?;
    let t0 = std::time::Instant::now();
    let mut state = prepared.materialize(&w.db)?;
    let materialize_wall_ns = t0.elapsed().as_nanos() as u64;
    drop(w);

    let (mut inserts, mut deletes) = (0usize, 0usize);
    let (mut total_ns, mut max_ns) = (0u64, 0u64);
    let (mut rederived, mut overdeleted) = (0usize, 0usize);
    for i in 0..updates {
        let mut delta = Delta::new();
        if i % 10 == 9 {
            let [p, a, b] = f_rows[(i * 7) % f_tuples];
            delta.push_delete_exact("F", [Const::Int(p), Const::Int(a), Const::Int(b)]);
            deletes += 1;
        } else {
            let [p, _, b] = f_rows[i % f_tuples];
            delta.push_insert_fact(
                "F",
                [Const::Int(p), Const::Int(b), Const::Int(600_000 + i as i64)],
            );
            inserts += 1;
        }
        let report = prepared.apply(&mut state, delta)?;
        let ns = report.wall.as_nanos() as u64;
        total_ns += ns;
        max_ns = max_ns.max(ns);
        rederived += report.rederived;
        overdeleted += report.overdeleted;
    }

    // Baseline: one full batch re-evaluation of the final database,
    // through the same prepared plans (prepare cost excluded — this is
    // what a non-incremental engine would pay per update).
    let mut final_db = faure_ctable::Database::new();
    final_db.cvars = state.database().cvars.clone();
    final_db.set_relation(state.relation("F").expect("F is maintained"));
    let t1 = std::time::Instant::now();
    let out = prepared.run(&final_db)?;
    let full_reeval_wall_ns = t1.elapsed().as_nanos() as u64;
    let r_tuples = out.database.relation("R").map(|r| r.len()).unwrap_or(0);

    let per_update_wall_ns = total_ns / updates.max(1) as u64;
    Ok(ChurnRow {
        prefixes,
        seed: opts.seed,
        threads: opts.eval.threads,
        host_cores: host_cores(),
        updates,
        inserts,
        deletes,
        f_tuples,
        r_tuples,
        materialize_wall_ns,
        total_update_wall_ns: total_ns,
        per_update_wall_ns,
        max_update_wall_ns: max_ns,
        full_reeval_wall_ns,
        speedup: full_reeval_wall_ns as f64 / per_update_wall_ns.max(1) as f64,
        rederived,
        overdeleted,
    })
}

/// JSON array over pre-encoded row objects, one per line — lets the
/// `table4` binary mix [`Table4Row`] and [`ChurnRow`] dumps in one file.
pub fn mixed_rows_to_json(rows: &[String]) -> String {
    let body: Vec<String> = rows.iter().map(|r| format!("  {r}")).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}m", s * 1e3)
    } else {
        format!("{:.0}u", s * 1e6)
    }
}

/// Prints rows in the paper's Table 4 layout.
pub fn print_table(rows: &[Table4Row]) {
    println!(
        "{:>9} | {:>8} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8}",
        "", "q4-q5", "q6", "", "", "q7", "", "", "q8", "", ""
    );
    println!(
        "{:>9} | {:>8} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8}",
        "#prefix",
        "sql+slv",
        "sql",
        "solver",
        "#tuples",
        "sql",
        "solver",
        "#tuples",
        "sql",
        "solver",
        "#tuples"
    );
    for r in rows {
        println!(
            "{:>9} | {:>8} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8}",
            r.prefixes,
            fmt_secs(r.q45.sql + r.q45.solver),
            fmt_secs(r.q6.sql),
            fmt_secs(r.q6.solver),
            r.q6.tuples,
            fmt_secs(r.q7.sql),
            fmt_secs(r.q7.solver),
            r.q7.tuples,
            fmt_secs(r.q8.sql),
            fmt_secs(r.q8.solver),
            r.q8.tuples,
        );
    }
}

/// Duration helper for the benches.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Logical cores available to this process — the `host_cores` column
/// every benchmark row carries next to its speedup figures.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), or 0 when the interface is unavailable
/// (non-Linux hosts, restricted /proc). Delegates to the shared
/// `/proc/self/status` reader in `faure-trace`.
pub fn peak_rss_kb() -> u64 {
    faure_trace::telemetry::peak_rss_kb().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_small_row_runs() {
        let row = run_table4_row(
            25,
            &HarnessOptions {
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(row.prefixes, 25);
        assert!(row.f_tuples > 0);
        assert!(row.q45.tuples >= row.f_tuples);
        assert!(row.total > 0.0);
        // q6 filters R: never more tuples than R.
        assert!(row.q6.tuples <= row.q45.tuples);
        // The recursive q4-q5 stage iterates: its convergence profile
        // must be present and strictly decreasing after the seed pass.
        assert!(row.q45.delta_sizes.len() >= 2, "{:?}", row.q45.delta_sizes);
        assert!((0.0..=1.0).contains(&row.q45.memo_hit_rate));
    }

    #[test]
    fn rows_serialize_to_json() {
        // Pin threads/shards so the assertions hold under FAURE_THREADS
        // and FAURE_SHARDS.
        let mut opts = HarnessOptions::default();
        opts.eval.threads = 1;
        opts.eval.shards = 1;
        let mut row = run_table4_row(10, &opts).unwrap();
        let json = rows_to_json(&[row.clone()]);
        assert!(json.contains("\"bench\":\"table4\""));
        assert!(json.contains("\"prefixes\":10"));
        assert!(json.contains("\"threads\":1"));
        assert!(json.contains("\"shards\":1"));
        assert!(json.contains("\"routed_deltas\":0"));
        assert!(json.contains("\"shard_imbalance\":null"));
        assert!(json.contains("\"speedup_q45\":null"));
        assert!(json.contains("\"speedup_valid\":false"));
        assert!(json.contains("\"host_cores\":"));
        assert!(row.host_cores >= 1);
        assert!(json.contains("\"prune_wall\":"));
        assert!(json.contains("\"prune_speedup\":null"));
        assert!(json.contains("\"q6\""));
        assert!(json.contains("\"memo_hit_rate\""));
        assert!(json.contains("\"memo_cross_run_hit_rate\""));
        assert!(json.contains("\"delta_sizes\":["));
        // The aggregated-metrics block mirrors the CLI --metrics schema.
        assert!(json.contains("\"metrics\":{\"ops\":{\"probes\":"));
        assert!(json.contains("\"solver\":{\"sat_calls\":"));
        assert!(json.contains("\"cross_run_hits\":"));
        assert!(json.contains("\"latency_ns\":["));
        assert!(json.contains("\"plan_cache\":{\"hits\":"));
        // The condition-pool block: q4-q5 interned at least the
        // pinned True/False nodes, so size is non-zero.
        assert!(json.contains("\"pool\":{\"pool_hits\":"));
        assert!(json.contains("\"pool_size\":"));
        assert!(row.q45.pool.size >= 2);
        // Peak RSS comes from /proc (always present on the Linux CI
        // hosts this suite runs on).
        assert!(json.contains("\"peak_rss_kb\":"));
        assert!(row.peak_rss_kb > 0);
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
        row.speedup_q45 = Some(1.5);
        row.speedup_valid = true;
        row.prune_speedup = Some(2.0);
        assert!(row.to_json().contains("\"speedup_q45\":1.500"));
        assert!(row.to_json().contains("\"speedup_valid\":true"));
        assert!(row.to_json().contains("\"prune_speedup\":2.000"));
    }

    #[test]
    fn parallel_row_matches_serial_tuples() {
        let mut serial_opts = HarnessOptions::default();
        serial_opts.eval.threads = 1;
        let serial = run_table4_row(10, &serial_opts).unwrap();
        let mut opts = HarnessOptions::default();
        opts.eval.threads = 4;
        let parallel = run_table4_row(10, &opts).unwrap();
        assert_eq!(parallel.threads, 4);
        assert_eq!(serial.q45.tuples, parallel.q45.tuples);
        assert_eq!(serial.q6.tuples, parallel.q6.tuples);
        assert_eq!(serial.q7.tuples, parallel.q7.tuples);
        assert_eq!(serial.q8.tuples, parallel.q8.tuples);
        assert_eq!(serial.q45.delta_sizes, parallel.q45.delta_sizes);
    }

    #[test]
    fn sharded_row_matches_serial_tuples() {
        let mut serial_opts = HarnessOptions::default();
        serial_opts.eval.threads = 1;
        serial_opts.eval.shards = 1;
        let serial = run_table4_row(10, &serial_opts).unwrap();
        let mut opts = HarnessOptions::default();
        opts.eval.threads = 1;
        opts.eval.shards = 4;
        let sharded = run_table4_row(10, &opts).unwrap();
        assert_eq!(sharded.shards, 4);
        assert_eq!(serial.q45.tuples, sharded.q45.tuples);
        assert_eq!(serial.q6.tuples, sharded.q6.tuples);
        assert_eq!(serial.q7.tuples, sharded.q7.tuples);
        assert_eq!(serial.q8.tuples, sharded.q8.tuples);
        // The recursive stage exchanged rows across shards and its
        // balance figure is recorded for the JSON dump.
        assert!(sharded.routed_deltas > 0, "{sharded:?}");
        assert!(sharded.shard_imbalance.is_some(), "{sharded:?}");
        let json = sharded.to_json();
        assert!(json.contains("\"shards\":4"), "{json}");
        assert!(json.contains("\"routed_deltas\":"), "{json}");
        assert!(!json.contains("\"shard_imbalance\":null"), "{json}");
    }

    #[test]
    fn churn_row_runs_and_serializes() {
        let mut opts = HarnessOptions::default();
        opts.eval.threads = 1;
        let row = run_churn_row(10, 30, &opts).unwrap();
        assert_eq!(row.updates, 30);
        assert_eq!(row.inserts, 27);
        assert_eq!(row.deletes, 3);
        assert!(row.f_tuples > 0);
        assert!(row.r_tuples > 0);
        assert!(row.per_update_wall_ns > 0);
        assert!(row.max_update_wall_ns >= row.per_update_wall_ns);
        assert!(row.full_reeval_wall_ns > 0);
        // The announcements extend standing paths, so propagation must
        // actually derive new reachability rows.
        assert!(row.rederived > 0, "{row:?}");
        // Withdrawals of ground tuples must exercise DRed.
        assert!(row.overdeleted > 0, "{row:?}");
        assert!(row.host_cores >= 1);
        let json = row.to_json();
        for key in [
            "\"bench\":\"churn\"",
            "\"prefixes\":10",
            "\"host_cores\":",
            "\"updates\":30",
            "\"per_update_wall_ns\":",
            "\"full_reeval_wall_ns\":",
            "\"speedup\":",
            "\"materialize_wall_ns\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let mixed = mixed_rows_to_json(&[json]);
        assert!(mixed.trim_start().starts_with('['));
    }

    #[test]
    fn churn_final_state_matches_full_reeval_tuples() {
        // The r_tuples field comes from the full re-evaluation of the
        // final database; the maintained state must agree. Re-run the
        // small stream by hand and compare counts.
        let mut opts = HarnessOptions::default();
        opts.eval.threads = 1;
        let w = workload(10, opts.seed);
        let program = queries::reachability_program();
        let prepared = Engine::with_options(opts.eval).prepare(&program).unwrap();
        let mut state = prepared.materialize(&w.db).unwrap();
        let f_rows: Vec<Vec<faure_ctable::Term>> =
            w.db.relation("F")
                .unwrap()
                .iter()
                .map(|t| t.terms.clone())
                .collect();
        for i in 0..30usize {
            let mut delta = Delta::new();
            if i % 10 == 9 {
                let row = &f_rows[(i * 7) % f_rows.len()];
                delta.push_delete_exact(
                    "F",
                    row.iter()
                        .map(|t| t.as_const().unwrap().clone())
                        .collect::<Vec<_>>(),
                );
            } else {
                let row = &f_rows[i % f_rows.len()];
                let p = row[0].as_const().unwrap().as_int().unwrap();
                let b = row[2].as_const().unwrap().as_int().unwrap();
                delta.push_insert_fact(
                    "F",
                    [Const::Int(p), Const::Int(b), Const::Int(600_000 + i as i64)],
                );
            }
            prepared.apply(&mut state, delta).unwrap();
        }
        let mut final_db = faure_ctable::Database::new();
        final_db.cvars = state.database().cvars.clone();
        final_db.set_relation(state.relation("F").unwrap());
        let out = prepared.run(&final_db).unwrap();
        assert_eq!(
            state.relation("R").unwrap().len(),
            out.database.relation("R").unwrap().len()
        );
    }

    #[test]
    fn print_table_does_not_panic() {
        let row = run_table4_row(10, &HarnessOptions::default()).unwrap();
        print_table(&[row]);
    }
}
