//! Criterion benches for the Table 4 queries at fixed workload sizes.
//!
//! Absolute numbers differ from the paper (different machine, Rust
//! engine vs PostgreSQL+Z3); the tracked property is the *relative*
//! shape: q4–q5 (recursion) dominates, q6 produces the most tuples and
//! solver work, q7 is cheap, q8 sits in between.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faure_bench::workload;
use faure_core::{evaluate_with, EvalOptions, PrunePolicy};
use faure_net::{queries, rib};

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("q4_q5_reachability");
    group.sample_size(10);
    for prefixes in [50usize, 100, 200] {
        let w = workload(prefixes, 1);
        group.bench_with_input(BenchmarkId::from_parameter(prefixes), &w, |b, w| {
            b.iter(|| {
                evaluate_with(
                    &queries::reachability_program(),
                    &w.db,
                    &EvalOptions::default(),
                )
                .expect("evaluation succeeds")
            })
        });
    }
    group.finish();
}

fn bench_failure_patterns(c: &mut Criterion) {
    // Precompute R once; bench the nested queries.
    let w = workload(100, 1);
    let out = evaluate_with(
        &queries::reachability_program(),
        &w.db,
        &EvalOptions::default(),
    )
    .expect("evaluation succeeds");
    let with_r = out.database;
    let pair = rib::frequent_pair(&w).unwrap_or((0, 1));

    let mut group = c.benchmark_group("failure_patterns_100_prefixes");
    group.sample_size(10);
    group.bench_function("q6_two_link_failure", |b| {
        b.iter(|| {
            evaluate_with(
                &queries::q6_two_link_failure(),
                &with_r,
                &EvalOptions::default(),
            )
            .expect("evaluation succeeds")
        })
    });
    group.bench_function("q8_reach_with_failure", |b| {
        b.iter(|| {
            evaluate_with(
                &queries::q8_reach_with_failure(pair.0),
                &with_r,
                &EvalOptions::default(),
            )
            .expect("evaluation succeeds")
        })
    });

    let out6 = evaluate_with(
        &queries::q6_two_link_failure(),
        &with_r,
        &EvalOptions::default(),
    )
    .expect("evaluation succeeds");
    group.bench_function("q7_pair_under_y_failure", |b| {
        b.iter(|| {
            evaluate_with(
                &queries::q7_pair_under_y_failure(pair.0, pair.1),
                &out6.database,
                &EvalOptions::default(),
            )
            .expect("evaluation succeeds")
        })
    });
    group.finish();
}

fn bench_solver_phase_share(c: &mut Criterion) {
    // The cost of the solver phase alone: evaluate with Never, then
    // prune the result tables — mirrors the paper's separate Z3 step.
    let w = workload(100, 1);
    let no_prune = EvalOptions {
        prune: PrunePolicy::Never,
        ..Default::default()
    };
    let out = evaluate_with(&queries::reachability_program(), &w.db, &no_prune)
        .expect("evaluation succeeds");
    let r = out.relation("R").expect("derived").clone();
    let reg = out.database.cvars.clone();

    let mut group = c.benchmark_group("solver_phase");
    group.sample_size(10);
    group.bench_function("prune_r_table_100_prefixes", |b| {
        b.iter(|| {
            let mut table = faure_storage::Table::from_relation(&r);
            let mut session = faure_solver::Session::new();
            table.prune(&reg, &mut session).expect("prunable");
            table.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reachability,
    bench_failure_patterns,
    bench_solver_phase_share
);
criterion_main!(benches);
