//! Telemetry publication: the bridge from the engine's per-run
//! statistics structs to the process-global
//! [`faure_trace::telemetry`] registry.
//!
//! Every counter here is published at a *boundary* — end of a fixpoint
//! iteration, end of a prune pass, end of a delta apply — never inside
//! the per-row hot loops, so the cost is a handful of atomic adds per
//! boundary. Publication only touches atomics and can therefore never
//! change evaluation results; the `trace_determinism` suite pins that
//! down.
//!
//! Counter names follow Prometheus conventions (`faure_` prefix,
//! `_total` suffix for cumulative counters, `_ns` for nanosecond
//! histograms). The JSON↔Prometheus mapping is documented in the
//! README's metrics-schema table; keep the two in sync.

use super::maintain::DeltaReport;
use faure_storage::PhaseStats;
use faure_trace::telemetry::{global, Registry};
use std::cell::Cell;

thread_local! {
    /// Set while an auxiliary evaluation runs on this thread. Database
    /// loading and the §5 containment oracle drive the full engine, but
    /// they are not pipeline work: publishing their counters would
    /// inflate `faure_runs_total` / `faure_materializations_total` and
    /// break the invariant that the registry agrees with the final
    /// `--metrics` totals. All publication sites sit on the
    /// coordinating thread (workers fold stats back before any
    /// boundary), so a thread-local covers the whole evaluation.
    static SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

/// True while publication is suppressed on this thread.
fn suppressed() -> bool {
    SUPPRESSED.with(Cell::get)
}

/// Runs `f` with registry publication suppressed on this thread,
/// restoring the previous state afterwards (also on panic).
pub(crate) fn with_publication_suppressed<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            SUPPRESSED.with(|s| s.set(self.0));
        }
    }
    let _reset = Reset(SUPPRESSED.with(|s| s.replace(true)));
    f()
}

/// Publishes one finished delta apply (the fresh materialization or an
/// incremental update) into the registry: the apply's [`PhaseStats`]
/// operator/solver/plan-cache counters, the [`DeltaReport`] row
/// movement, the solver latency histogram, and a mirror of the
/// process-global condition-pool counters.
pub(crate) fn publish_apply(stats: &PhaseStats, report: &DeltaReport, fresh: bool) {
    if suppressed() {
        return;
    }
    let reg = global();
    if fresh {
        reg.counter("faure_materializations_total").inc();
        reg.histogram("faure_materialize_ns")
            .observe_ns(u64::try_from(report.wall.as_nanos()).unwrap_or(u64::MAX));
    } else {
        reg.counter("faure_updates_applied_total").inc();
        reg.histogram("faure_update_apply_ns")
            .observe_ns(u64::try_from(report.wall.as_nanos()).unwrap_or(u64::MAX));
    }

    let ops = &stats.ops;
    reg.counter("faure_probes_total").add(ops.probes);
    reg.counter("faure_rows_matched_total")
        .add(ops.rows_matched);
    reg.counter("faure_conds_conjoined_total")
        .add(ops.conds_conjoined);
    reg.counter("faure_cmp_pruned_total").add(ops.cmp_pruned);
    reg.counter("faure_neg_checks_total").add(ops.neg_checks);
    reg.counter("faure_static_cut_total").add(ops.static_cut);

    let sv = &stats.solver_stats;
    reg.counter("faure_sat_calls_total").add(sv.sat_calls);
    reg.counter("faure_sat_true_total").add(sv.sat_true);
    reg.counter("faure_simplify_calls_total")
        .add(sv.simplify_calls);
    reg.counter("faure_memo_hits_total").add(sv.memo_hits);
    reg.counter("faure_memo_cross_run_hits_total")
        .add(sv.cross_run_hits);
    reg.counter("faure_memo_misses_total").add(sv.memo_misses);
    reg.counter("faure_solver_ns_total")
        .add(u64::try_from(sv.time.as_nanos()).unwrap_or(u64::MAX));
    reg.histogram("faure_solver_latency_ns").merge(&sv.latency);

    reg.counter("faure_relational_ns_total")
        .add(u64::try_from(stats.relational.as_nanos()).unwrap_or(u64::MAX));
    reg.counter("faure_prune_wall_ns_total")
        .add(u64::try_from(stats.prune_wall.as_nanos()).unwrap_or(u64::MAX));
    reg.counter("faure_pruned_rows_total")
        .add(stats.pruned as u64);
    reg.counter("faure_plan_cache_hits_total")
        .add(stats.plan_cache_hits);
    reg.counter("faure_plan_cache_misses_total")
        .add(stats.plan_cache_misses);
    // Absolute, not a per-apply increment: the standing IDB row count.
    reg.gauge("faure_idb_tuples").set(stats.tuples as i64);

    reg.counter("faure_rows_inserted_total")
        .add(report.inserted as u64);
    reg.counter("faure_rows_deleted_total")
        .add(report.deleted as u64);
    reg.counter("faure_rows_overdeleted_total")
        .add(report.overdeleted as u64);
    reg.counter("faure_rows_rederived_total")
        .add(report.rederived as u64);
    reg.counter("faure_strata_touched_total")
        .add(report.strata_touched as u64);

    sync_pool(reg);
}

/// Mirrors the condition pool's process-global hit/miss counters and
/// size into the registry. `sync_to` (a `fetch_max`) rather than an
/// add: the pool counters are already cumulative, so mirroring must
/// not double count when several applies race.
pub(crate) fn sync_pool(reg: &Registry) {
    let pool = faure_ctable::pool::pool_stats();
    reg.counter("faure_pool_hits_total").sync_to(pool.hits);
    reg.counter("faure_pool_misses_total").sync_to(pool.misses);
    reg.gauge("faure_pool_size").set(pool.size as i64);
}

/// Publishes one maintenance stratum pass, labeled by its propagation
/// mode (`append` / `counting` / `rederive` / `recompute`).
pub(crate) fn publish_maintain_stratum(mode: &str, changed_rows: usize) {
    if suppressed() {
        return;
    }
    let reg = global();
    reg.counter_with("faure_maintain_strata_total", &[("mode", mode)])
        .inc();
    reg.counter("faure_maintain_changed_rows_total")
        .add(changed_rows as u64);
}

/// Publishes one finished fixpoint iteration and its delta size.
pub(crate) fn publish_iteration(delta_rows: usize) {
    if suppressed() {
        return;
    }
    let reg = global();
    reg.counter("faure_fixpoint_iterations_total").inc();
    reg.counter("faure_delta_rows_total").add(delta_rows as u64);
}

/// Publishes one prune pass (whole-table or delta sweep).
pub(crate) fn publish_prune(rows: usize, removed: usize) {
    if suppressed() {
        return;
    }
    let reg = global();
    reg.counter("faure_prune_passes_total").inc();
    reg.counter("faure_prune_rows_seen_total").add(rows as u64);
    reg.counter("faure_prune_rows_removed_total")
        .add(removed as u64);
}

/// Publishes one sharded delta pass: the shard count, the delta
/// batches exchanged through the bounded channels, the rows they
/// carried, and how many changed rows were routed to a non-producing
/// shard (broadcast copies included) or broadcast outright.
pub(crate) fn publish_shard_pass(
    shards: usize,
    batches: u64,
    rows: usize,
    routed: u64,
    broadcast: u64,
) {
    if suppressed() {
        return;
    }
    let reg = global();
    reg.counter("faure_shard_passes_total").inc();
    reg.counter("faure_shard_batches_total").add(batches);
    reg.counter("faure_shard_rows_exchanged_total")
        .add(rows as u64);
    reg.counter("faure_shard_routed_rows_total").add(routed);
    reg.counter("faure_shard_broadcast_rows_total")
        .add(broadcast);
    reg.gauge("faure_shards").set(shards as i64);
    // Standing view of the most recent pass's routed volume.
    reg.gauge("faure_shard_routed_delta_rows")
        .set(i64::try_from(routed).unwrap_or(i64::MAX));
}

/// Publishes one data-parallel rule pass: how many chunks the match
/// list was cut into, and on how many worker threads.
pub(crate) fn publish_parallel(workers: usize, chunks: usize) {
    if suppressed() {
        return;
    }
    let reg = global();
    reg.counter("faure_parallel_rule_passes_total").inc();
    reg.counter("faure_parallel_chunks_total")
        .add(chunks as u64);
    reg.gauge("faure_parallel_workers").set(workers as i64);
}

/// Publishes the start of an evaluation run (batch `run()` or a fresh
/// materialization) and its configured thread count.
pub(crate) fn publish_run(threads: usize) {
    if suppressed() {
        return;
    }
    let reg = global();
    reg.counter("faure_runs_total").inc();
    reg.gauge("faure_threads").set(threads as i64);
}
