//! Shared helpers for the Fauré integration test suites.
//!
//! The central helper is [`assert_lossless`], which checks the paper's
//! defining semantic property (§4): *fauré-log query evaluation on a
//! c-table database is equivalent to iterating pure datalog over every
//! possible world*. The left side runs the production engine
//! (`faure-core::eval`); the right side runs the independent ground
//! evaluator (`faure-core::reference`); the two share no evaluation
//! code.

use faure_core::reference::evaluate_ground;
use faure_core::{evaluate, Program};
use faure_ctable::worlds::WorldIter;
use faure_ctable::{Const, Database, GroundTuple};
use std::collections::{BTreeMap, BTreeSet};

pub mod corpus;

/// Instantiates the engine's derived relations in one world.
pub fn instantiate_derived(
    out: &faure_core::EvalOutput,
    program: &Program,
    assignment: &faure_ctable::Assignment,
) -> BTreeMap<String, BTreeSet<GroundTuple>> {
    let lookup = assignment.lookup();
    let mut res: BTreeMap<String, BTreeSet<GroundTuple>> = BTreeMap::new();
    for pred in program.idb_predicates() {
        let rel = out.relation(pred).expect("IDB relation exists");
        let mut set = BTreeSet::new();
        for row in rel.iter() {
            if row.cond.eval(&lookup) == Some(true) {
                set.insert(
                    row.terms
                        .iter()
                        .map(|t| {
                            t.instantiate(&lookup)
                                .expect("world assignment binds every c-variable")
                        })
                        .collect::<Vec<Const>>(),
                );
            }
        }
        res.insert(pred.to_owned(), set);
    }
    res
}

/// Asserts loss-lessness of `program` over `db`: for every possible
/// world, the instantiated fauré-log answer equals the pure-datalog
/// answer computed in that world. Returns the number of worlds checked.
///
/// The per-world checks are independent (each world gets its own ground
/// evaluation and instantiation), so they are fanned out across
/// `std::thread::scope` workers — the oracle dominates proptest
/// wall-clock, and the world count (domain-size ^ c-variables) is the
/// embarrassingly parallel axis. A failing world's assertion panic is
/// re-raised on the caller's thread with its message intact.
///
/// Requires every c-variable the program mentions to occur in `db` (so
/// world enumeration covers it) and all domains to be finite.
pub fn assert_lossless(program: &Program, db: &Database) -> usize {
    let out = evaluate(program, db).expect("fauré-log evaluation succeeds");
    let worlds: Vec<_> = WorldIter::new(db, None).expect("finite domains").collect();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(worlds.len());
    let check = |world: &faure_ctable::GroundDatabase| {
        let expected =
            evaluate_ground(program, &db.cvars, world).expect("reference evaluation succeeds");
        let got = instantiate_derived(&out, program, &world.assignment);
        assert_eq!(
            expected, got,
            "loss-lessness violated in world {:?}\nprogram:\n{program}",
            world.assignment
        );
    };
    if threads <= 1 {
        for world in &worlds {
            check(world);
        }
        return worlds.len();
    }
    // Contiguous balanced split; workers only read shared state.
    let base = worlds.len() / threads;
    let extra = worlds.len() % threads;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        let mut rest: &[faure_ctable::GroundDatabase] = &worlds;
        for w in 0..threads {
            let take = base + usize::from(w < extra);
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let check = &check;
            handles.push(s.spawn(move || {
                for world in chunk {
                    check(world);
                }
            }));
        }
        for h in handles {
            // Re-raise a worker's assertion panic with its original
            // message (join erases it into a Box<dyn Any>).
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    worlds.len()
}
