//! # faure-analyze — diagnostics and lints for fauré-log programs
//!
//! A span-aware, non-fail-fast front end over the analysis passes in
//! [`faure_core::analysis`]. Where evaluation stops at the first
//! problem, `faure check` collects **every** problem in one run, tags
//! each with a stable error code, and renders them rustc-style with a
//! source snippet and carets:
//!
//! ```text
//! error[F0001]: unsafe variable `b`: not bound by any positive body atom
//!  --> prog.fl:1:6
//!   |
//! 1 | R(a, b) :- F(a).
//!   |      ^
//! ```
//!
//! ## Error codes
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | F0000 | error    | syntax error |
//! | F0001 | error    | unsafe (unbound) rule variable |
//! | F0002 | error    | negation through recursion (not stratifiable) |
//! | F0003 | error    | conflicting predicate arity |
//! | F0004 | warning  | rule head shadows an input relation |
//! | F0005 | warning  | dead rule (provably empty body predicate) |
//! | F0006 | warning  | undefined relation |
//! | F0007 | warning  | singleton (likely misspelled) variable |
//! | F0008 | warning  | statically unsatisfiable rule condition |
//!
//! The entry points are [`check_source`] (program text only) and
//! [`check_source_with_db`] (adds database-aware passes: schema arity,
//! shadowing, undefined relations, empty-input dead rules).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod feasible;
pub mod infer;

pub use domains::{AbsDom, Kind};
pub use feasible::{Infeasibility, RuleSemantics};
pub use infer::{infer, Columns, Inference};

use faure_core::analysis::{analyze, Finding};
use faure_core::parser::{parse_program_spanned, RuleSpans, Span, SpannedProgram};
use faure_ctable::Database;
use std::fmt;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is rejected by evaluation.
    Error,
    /// The program evaluates, but something is probably wrong.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// One diagnostic: a coded, spanned message about the source program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code (`F0001`, …).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Byte span of the offending source text.
    pub span: Span,
    /// Index of the rule the diagnostic concerns (`usize::MAX` for
    /// syntax errors, which have no rule).
    pub rule: usize,
}

/// The result of checking a program: all diagnostics, in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Diagnostics sorted by span start, then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the program is clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders every diagnostic rustc-style against `src`, labelling
    /// locations as `filename:line:col`.
    pub fn render(&self, src: &str, filename: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&render_diagnostic(d, src, filename));
            out.push('\n');
        }
        out
    }

    /// Renders every diagnostic as a JSON array (machine-readable
    /// `faure check --format json` output). Each element carries the
    /// stable code, severity, message, file, 1-based line/col of the
    /// span start, and the byte span itself:
    ///
    /// ```json
    /// [{"code":"F0001","severity":"error","message":"...",
    ///   "file":"prog.fl","line":1,"col":6,"span":{"start":5,"end":6}}]
    /// ```
    pub fn to_json(&self, src: &str, filename: &str) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (line, col) = line_col(src, d.span.start);
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"message\":{},\"file\":{},\
                 \"line\":{line},\"col\":{col},\
                 \"span\":{{\"start\":{},\"end\":{}}}}}",
                json_str(d.code),
                json_str(&d.severity.to_string()),
                json_str(&d.message),
                json_str(filename),
                d.span.start,
                d.span.end,
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Checks program text with the text-only passes.
pub fn check_source(src: &str) -> Report {
    check(src, None)
}

/// Checks program text including the database-aware passes (schema
/// arity, shadowed inputs, undefined relations, empty input relations).
pub fn check_source_with_db(src: &str, db: &Database) -> Report {
    check(src, Some(db))
}

fn check(src: &str, db: Option<&Database>) -> Report {
    let spanned = match parse_program_spanned(src) {
        Ok(sp) => sp,
        Err(e) => {
            // A syntax error preempts analysis: one diagnostic at the
            // failing byte.
            let at = e.pos.min(src.len());
            return Report {
                diagnostics: vec![Diagnostic {
                    code: "F0000",
                    severity: Severity::Error,
                    message: format!("syntax error: {}", e.msg),
                    span: Span::new(at, (at + 1).min(src.len()).max(at)),
                    rule: usize::MAX,
                }],
            };
        }
    };
    let findings = analyze(&spanned.program, db);
    let mut diagnostics: Vec<Diagnostic> = findings
        .iter()
        .map(|f| to_diagnostic(f, &spanned, src))
        .collect();
    let inference = infer::infer(&spanned.program, db);
    diagnostics.extend(semantic_diagnostics(&spanned, db, &inference));
    // Stable order: by span, then code — and exact duplicates (same
    // code, span, and message) collapse to one.
    diagnostics.sort_by(|a, b| {
        (a.span.start, a.span.end, a.code).cmp(&(b.span.start, b.span.end, b.code))
    });
    diagnostics.dedup();
    Report { diagnostics }
}

// ---------------------------------------------------------------------------
// semantic diagnostics (F0009–F0014), from the abstract interpretation
// ---------------------------------------------------------------------------

/// Maps the inference results to diagnostics F0009–F0014.
///
/// | code  | fires when |
/// |-------|------------|
/// | F0009 | two rules write different kinds (integer vs symbolic) into one column |
/// | F0010 | a body join is provably empty under the inferred domains |
/// | F0011 | a comparison contradicts a variable's atom-inferred domain |
/// | F0012 | a recursive rule copies its head verbatim from its own body |
/// | F0013 | (with db) a derived column stays completely unrestricted (⊤) |
/// | F0014 | (with db) a program constant/c-variable misses an input relation's actual domain |
fn semantic_diagnostics(
    spanned: &SpannedProgram,
    db: Option<&Database>,
    inf: &infer::Inference,
) -> Vec<Diagnostic> {
    let program = &spanned.program;
    let idb: std::collections::BTreeSet<&str> = program.idb_predicates();
    let reg = db.map(|d| &d.cvars);
    let mut out = Vec::new();

    // The span of head argument `col` of rule `ri` (atom fallback under
    // arity conflicts).
    let head_arg = |ri: usize, col: usize| -> Span {
        let spans = &spanned.spans[ri];
        spans.head.args.get(col).copied().unwrap_or(spans.head.atom)
    };
    let body_arg = |ri: usize, li: usize, col: usize| -> Span {
        let spans = &spanned.spans[ri];
        spans
            .body
            .get(li)
            .map(|a| a.args.get(col).copied().unwrap_or(a.atom))
            .unwrap_or(spans.rule)
    };

    // F0009: kind mismatch across rule head contributions, per column.
    // The first rule writing a definite kind into a column sets the
    // precedent; later rules writing the opposite kind are flagged.
    let mut col_kinds: std::collections::BTreeMap<(&str, usize), (usize, domains::Kind)> =
        std::collections::BTreeMap::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let sem = &inf.rules[ri];
        if sem.infeasible.is_some() {
            continue;
        }
        for (col, arg) in rule.head.args.iter().enumerate() {
            let v = infer::arg_value(arg, sem, reg);
            let kind = match &v {
                AbsDom::Bottom | AbsDom::Top => continue,
                d => d.kind(),
            };
            if kind == domains::Kind::Mixed {
                continue;
            }
            match col_kinds.get(&(rule.head.pred.as_str(), col)) {
                None => {
                    col_kinds.insert((rule.head.pred.as_str(), col), (ri, kind));
                }
                Some(&(first, prior)) if prior != kind => {
                    out.push(Diagnostic {
                        code: "F0009",
                        severity: Severity::Warning,
                        message: format!(
                            "column {col} of `{}` holds {kind} values here but {prior} \
                             values in rule #{}: the column's type is inconsistent",
                            rule.head.pred,
                            first + 1,
                        ),
                        span: head_arg(ri, col),
                        rule: ri,
                    });
                }
                Some(_) => {}
            }
        }
    }

    // F0010 / F0011 / F0014: per-rule infeasibility proofs.
    for (ri, sem) in inf.rules.iter().enumerate() {
        let rule = &program.rules[ri];
        match &sem.infeasible {
            // Empty predicates are the dead-rule pass's territory
            // (F0005) — re-reporting them here would be noise.
            Some(Infeasibility::EmptyPredicate { .. }) | None => {}
            Some(Infeasibility::ConstOutsideDomain {
                literal,
                col,
                constant,
                predicate,
                domain,
            }) => {
                let is_input = db.is_some() && !idb.contains(predicate.as_str());
                out.push(Diagnostic {
                    code: if is_input { "F0014" } else { "F0010" },
                    severity: Severity::Warning,
                    message: if is_input {
                        format!(
                            "constant `{constant}` can never match input relation \
                             `{predicate}`: column {col} only holds {domain}"
                        )
                    } else {
                        format!(
                            "join can never succeed: `{constant}` is outside column \
                             {col} of `{predicate}`, which only holds {domain}"
                        )
                    },
                    span: body_arg(ri, *literal, *col),
                    rule: ri,
                });
            }
            Some(Infeasibility::CVarOutsideDomain {
                literal,
                col,
                cvar,
                predicate,
                domain,
            }) => {
                let is_input = db.is_some() && !idb.contains(predicate.as_str());
                out.push(Diagnostic {
                    code: if is_input { "F0014" } else { "F0010" },
                    severity: Severity::Warning,
                    message: format!(
                        "c-variable `${cvar}`'s domain is disjoint from column {col} of \
                         `{predicate}`, which only holds {domain}"
                    ),
                    span: body_arg(ri, *literal, *col),
                    rule: ri,
                });
            }
            Some(Infeasibility::DisjointColumns {
                literal,
                col,
                variable,
                before,
                here,
            }) => {
                out.push(Diagnostic {
                    code: "F0010",
                    severity: Severity::Warning,
                    message: format!(
                        "join can never succeed: `{variable}` ranges over {before} from \
                         earlier atoms, but column {col} here only holds {here}"
                    ),
                    span: body_arg(ri, *literal, *col),
                    rule: ri,
                });
            }
            Some(Infeasibility::Comparison {
                comparison,
                variable,
                atom_domain,
                against_atoms,
            }) => {
                // Contradictions among the comparisons themselves are
                // F0008's territory; F0011 fires only when a comparison
                // contradicts what the *atoms* prove.
                if !against_atoms {
                    continue;
                }
                let spans = &spanned.spans[ri];
                out.push(Diagnostic {
                    code: "F0011",
                    severity: Severity::Warning,
                    message: format!(
                        "comparison contradicts the inferred domain of `{variable}`: \
                         the body atoms constrain it to {atom_domain}"
                    ),
                    span: spans
                        .comparisons
                        .get(*comparison)
                        .copied()
                        .unwrap_or(spans.rule),
                    rule: ri,
                });
            }
        }
        // F0012: the head is copied verbatim from a positive body atom
        // of the same predicate — the rule can never derive a new tuple,
        // so the recursion cannot grow its predicate.
        if let Some(li) = rule.body.iter().position(|lit| {
            !lit.is_negative()
                && lit.atom().pred == rule.head.pred
                && lit.atom().args == rule.head.args
        }) {
            let spans = &spanned.spans[ri];
            out.push(Diagnostic {
                code: "F0012",
                severity: Severity::Warning,
                message: format!(
                    "recursion cannot grow `{}`: the head is copied unchanged from \
                     body atom #{} — the rule never derives a new tuple",
                    rule.head.pred,
                    li + 1,
                ),
                span: spans.rule,
                rule: ri,
            });
        }
    }

    // F0013: with a database, every input column has a concrete domain,
    // so a derived column still at ⊤ means no rule ever restricts it —
    // usually a missing filter or an open c-variable flowing through.
    if db.is_some() {
        for (pred, cols) in &inf.columns {
            if !idb.contains(pred.as_str()) || !inf.nonempty.contains(pred) {
                continue;
            }
            for (col, dom) in cols.iter().enumerate() {
                if *dom != AbsDom::Top {
                    continue;
                }
                // Blame the first feasible rule whose head contribution
                // is ⊤ at this column.
                let Some(ri) = program.rules.iter().enumerate().position(|(ri, r)| {
                    r.head.pred == *pred
                        && inf.rules[ri].infeasible.is_none()
                        && r.head.args.get(col).is_some_and(|arg| {
                            infer::arg_value(arg, &inf.rules[ri], reg) == AbsDom::Top
                        })
                }) else {
                    continue;
                };
                out.push(Diagnostic {
                    code: "F0013",
                    severity: Severity::Warning,
                    message: format!(
                        "column {col} of `{pred}` is never restricted: it can hold any \
                         value (⊤) — likely a missing filter"
                    ),
                    span: head_arg(ri, col),
                    rule: ri,
                });
            }
        }
    }

    out
}

/// Maps a structural finding to a coded, spanned diagnostic.
fn to_diagnostic(f: &Finding, spanned: &SpannedProgram, src: &str) -> Diagnostic {
    let spans = &spanned.spans[f.rule()];
    let (code, severity, span) = match f {
        Finding::UnsafeVariable { variable, .. } => (
            "F0001",
            Severity::Error,
            var_span(spans, src, variable).unwrap_or(spans.rule),
        ),
        Finding::NegativeCycle { .. } => ("F0002", Severity::Error, spans.head.atom),
        Finding::ArityConflict { literal, .. } => (
            "F0003",
            Severity::Error,
            match literal {
                Some(li) => spans.body[*li].atom,
                None => spans.head.atom,
            },
        ),
        Finding::ShadowedInput { .. } => ("F0004", Severity::Warning, spans.head.atom),
        Finding::DeadRule { .. } => ("F0005", Severity::Warning, spans.rule),
        Finding::UndefinedPredicate { literal, .. } => {
            ("F0006", Severity::Warning, spans.body[*literal].atom)
        }
        Finding::SingletonVariable { variable, .. } => (
            "F0007",
            Severity::Warning,
            var_span(spans, src, variable).unwrap_or(spans.rule),
        ),
        Finding::UnsatisfiableRule { .. } => (
            "F0008",
            Severity::Warning,
            comparisons_span(spans).unwrap_or(spans.rule),
        ),
    };
    Diagnostic {
        code,
        severity,
        message: f.to_string(),
        span,
        rule: f.rule(),
    }
}

/// The span of the first occurrence of rule variable `name` in the
/// rule: argument positions first (head, then body), then comparisons.
fn var_span(spans: &RuleSpans, src: &str, name: &str) -> Option<Span> {
    std::iter::once(&spans.head)
        .chain(spans.body.iter())
        .flat_map(|a| a.args.iter())
        .find(|s| src.get(s.start..s.end) == Some(name))
        .or_else(|| {
            // Fall back to the whole comparison mentioning the
            // variable as a word.
            spans.comparisons.iter().find(|s| {
                src.get(s.start..s.end)
                    .is_some_and(|text| mentions_word(text, name))
            })
        })
        .copied()
}

/// Whether `text` contains `name` as a standalone identifier.
fn mentions_word(text: &str, name: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(i) = text[from..].find(name) {
        let at = from + i;
        let before_ok = !text[..at]
            .chars()
            .next_back()
            .is_some_and(|c| is_ident(c) || c == '$');
        let after_ok = !text[at + name.len()..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// The span covering all comparisons of a rule.
fn comparisons_span(spans: &RuleSpans) -> Option<Span> {
    let first = spans.comparisons.first()?;
    let last = spans.comparisons.last()?;
    Some(Span::new(first.start, last.end))
}

// ---------------------------------------------------------------------------
// planner hints
// ---------------------------------------------------------------------------

/// Distils the inference results into [`faure_core::plan::Hints`] for
/// hinted plan compilation
/// ([`Engine::prepare_with_hints`](faure_core::Engine::prepare_with_hints)):
///
/// * every predicate the fixpoint proves empty goes into
///   `empty_preds`, and every rule with an infeasibility proof into
///   `infeasible_rules` — their plans compile to statically-pruned
///   empty bodies;
/// * every column with a finite inferred domain contributes its
///   cardinality to `col_cards`, refining join-order selectivity.
///
/// Soundness matters here: the hints must hold for the database the
/// program later runs against. Pass the same `db` the evaluation will
/// use; pass `None` for program-only hints, which are valid for any
/// database **whose relations the program does not shadow** — when in
/// doubt, supply the database.
pub fn plan_hints(program: &faure_core::Program, db: Option<&Database>) -> faure_core::plan::Hints {
    let inference = infer::infer(program, db);
    hints_from_inference(&inference)
}

/// The [`plan_hints`] distillation, for callers that already ran
/// [`infer`].
pub fn hints_from_inference(inference: &infer::Inference) -> faure_core::plan::Hints {
    let mut hints = faure_core::plan::Hints::default();
    for (pred, cols) in &inference.columns {
        if !inference.nonempty.contains(pred) {
            hints.empty_preds.insert(pred.clone());
            continue;
        }
        for (col, dom) in cols.iter().enumerate() {
            if let Some(card) = dom.card() {
                hints.col_cards.insert((pred.clone(), col), card);
            }
        }
    }
    for (ri, sem) in inference.rules.iter().enumerate() {
        if sem.infeasible.is_some() {
            hints.infeasible_rules.insert(ri);
        }
    }
    hints
}

// ---------------------------------------------------------------------------
// --explain
// ---------------------------------------------------------------------------

/// The long-form explanation of a diagnostic code (`faure check
/// --explain F0010`), or `None` for an unknown code.
pub fn explain_code(code: &str) -> Option<&'static str> {
    Some(match code {
        "F0000" => {
            "F0000: syntax error\n\n\
             The program text does not parse as fauré-log. The diagnostic points\n\
             at the first byte the parser could not consume. Everything after a\n\
             syntax error is unchecked: fix it first, then re-run `faure check`\n\
             to see the remaining diagnostics."
        }
        "F0001" => {
            "F0001: unsafe (unbound) rule variable\n\n\
             Every variable in a rule head, comparison, or negated atom must\n\
             also appear in at least one positive body atom — otherwise its\n\
             range is unbounded and the rule has no finite meaning. Bind the\n\
             variable in a positive atom, or replace it with a constant."
        }
        "F0002" => {
            "F0002: negation through recursion\n\n\
             The program negates a predicate inside its own recursive cycle, so\n\
             no stratification exists and the fixpoint is not well-defined.\n\
             Break the cycle: derive the negated predicate in an earlier\n\
             stratum, or drop the negation."
        }
        "F0003" => {
            "F0003: conflicting predicate arity\n\n\
             The same predicate is used with different argument counts (or a\n\
             count that disagrees with the database schema). Every use of a\n\
             predicate must have the same arity."
        }
        "F0004" => {
            "F0004: rule head shadows an input relation\n\n\
             A rule derives into a predicate that also holds stored tuples in\n\
             the database. Evaluation unions the two, which is legal but almost\n\
             always surprising. Rename the derived predicate if the overlap is\n\
             unintended."
        }
        "F0005" => {
            "F0005: dead rule\n\n\
             A positive body atom ranges over a predicate that is provably\n\
             empty — never stored, never derived — so the rule can never fire.\n\
             Check the predicate name for typos."
        }
        "F0006" => {
            "F0006: undefined relation\n\n\
             A body atom references a predicate that neither the database nor\n\
             any rule head defines. It evaluates as empty; this is usually a\n\
             misspelling."
        }
        "F0007" => {
            "F0007: singleton variable\n\n\
             A variable occurs exactly once in the rule. It joins nothing and\n\
             constrains nothing, which often hides a typo (`adress` vs\n\
             `address`). Use the variable twice, or rename deliberately\n\
             throw-away variables to something like `_x` by convention."
        }
        "F0008" => {
            "F0008: statically unsatisfiable rule condition\n\n\
             The rule's comparison atoms contradict each other (for example\n\
             `a < 2, a > 5`), so the body can never be satisfied in any world\n\
             and the rule is dead weight."
        }
        "F0009" => {
            "F0009: inconsistent column type across rules\n\n\
             Two rules write provably different kinds of values — integers in\n\
             one, symbols in the other — into the same column of a predicate.\n\
             The abstract interpreter infers each column's domain from every\n\
             rule that derives into it; a kind mismatch almost always means two\n\
             rules disagree about the predicate's schema (e.g. `Cost(f, 3)` vs\n\
             `Cost(f, High)`)."
        }
        "F0010" => {
            "F0010: provably empty join\n\n\
             Under the inferred per-column domains, a body join can never\n\
             produce a row: a shared variable's occurrences have disjoint\n\
             domains, or a constant argument lies outside the derived\n\
             predicate's inferred column domain. The rule is unsatisfiable in\n\
             every world, over every database consistent with the program."
        }
        "F0011" => {
            "F0011: comparison contradicts inferred domain\n\n\
             A comparison like `a > 100` contradicts what the body atoms\n\
             already prove about `a` (e.g. that it only holds values in\n\
             [0..2]). Unlike F0008, which finds contradictions *between*\n\
             comparisons, F0011 checks each comparison against the abstract\n\
             interpretation of the atoms."
        }
        "F0012" => {
            "F0012: recursion cannot grow its domain\n\n\
             A recursive rule copies its head verbatim from a positive body\n\
             atom of the same predicate (`P(a, b) :- P(a, b), ...`), so every\n\
             tuple it derives is already present and the rule can never add\n\
             anything. Usually one of the head arguments was meant to change."
        }
        "F0013" => {
            "F0013: head column never restricted\n\n\
             With a database every input column has a concrete finite domain,\n\
             so a derived column whose inferred domain is still ⊤ (any value)\n\
             means no rule ever restricts it — typically an open c-variable\n\
             flows through unchecked, or a filter was forgotten. Reported only\n\
             when a database is supplied."
        }
        "F0014" => {
            "F0014: constant incompatible with input relation\n\n\
             A program constant (or domain-restricted c-variable) used as an\n\
             argument to an input relation can never match the relation's\n\
             actual contents under the supplied database: the value lies\n\
             outside everything the column holds. The atom — and therefore the\n\
             rule — matches nothing. Reported only when a database is supplied."
        }
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

/// Renders one diagnostic with a source snippet and caret underline.
fn render_diagnostic(d: &Diagnostic, src: &str, filename: &str) -> String {
    let (line_no, col) = line_col(src, d.span.start);
    let line_start = src[..d.span.start.min(src.len())]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let line_end = src[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(src.len());
    let line_text = &src[line_start..line_end];

    // Caret run: from the span start to its end, clipped to this line,
    // at least one caret wide.
    let caret_start = col - 1;
    let caret_len = d.span.end.min(line_end).saturating_sub(d.span.start).max(1);

    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    format!(
        "{severity}[{code}]: {message}\n\
         {pad}--> {filename}:{line_no}:{col}\n\
         {pad} |\n\
         {gutter} | {line_text}\n\
         {pad} | {indent}{carets}\n",
        severity = d.severity,
        code = d.code,
        message = d.message,
        indent = " ".repeat(caret_start),
        carets = "^".repeat(caret_len),
    )
}

/// 1-based line and byte column of a byte offset.
fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let line = src[..pos].matches('\n').count() + 1;
    let col = pos - src[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn span_text<'s>(src: &'s str, d: &Diagnostic) -> &'s str {
        &src[d.span.start..d.span.end]
    }

    // --- F0001: unsafe variables ---------------------------------------

    #[test]
    fn f0001_unsafe_variable_with_span() {
        let src = "R(a, b) :- F(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0001"]);
        let d = &report.diagnostics[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(span_text(src, d), "b");
        assert!(d.message.contains("unsafe variable `b`"));
    }

    #[test]
    fn f0001_clean() {
        assert!(check_source("R(a, b) :- F(a, b).\n").is_empty());
    }

    // --- F0002: negation through recursion ------------------------------

    #[test]
    fn f0002_negative_cycle_flags_both_predicates() {
        let src = "P(a) :- N(a), !Q(a).\nQ(a) :- N(a), !P(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0002", "F0002"]);
        assert_eq!(span_text(src, &report.diagnostics[0]), "P(a)");
        assert_eq!(span_text(src, &report.diagnostics[1]), "Q(a)");
        assert!(report.has_errors());
    }

    #[test]
    fn f0002_clean_stratified_negation() {
        let src = "R(a) :- N(a).\nBad(a) :- N(a), !R(a).\n";
        assert!(check_source(src).is_empty());
    }

    // --- F0003: arity conflicts -----------------------------------------

    #[test]
    fn f0003_arity_conflict_points_at_conflicting_use() {
        let src = "R(a, b) :- F(a, b).\nS(a) :- R(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0003"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "R(a)");
        assert!(d.message.contains("arity is 2"));
    }

    #[test]
    fn f0003_clean_consistent_arity() {
        assert!(check_source("R(a, b) :- F(a, b).\nS(a) :- R(a, a).\n").is_empty());
    }

    // --- F0004: shadowed input relations --------------------------------

    #[test]
    fn f0004_head_shadowing_edb_relation() {
        let mut db = Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        db.insert("F", faure_ctable::CTuple::new([faure_ctable::Term::int(1)]))
            .unwrap();
        let src = "F(a) :- G(a).\nG(1).\n";
        let report = check_source_with_db(src, &db);
        assert!(codes(&report).contains(&"F0004"));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F0004")
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(span_text(src, d), "F(a)");
    }

    #[test]
    fn f0004_clean_without_collision() {
        let mut db = Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        db.insert("F", faure_ctable::CTuple::new([faure_ctable::Term::int(1)]))
            .unwrap();
        assert!(check_source_with_db("R(a) :- F(a).\n", &db).is_empty());
    }

    // --- F0005: dead rules ----------------------------------------------

    #[test]
    fn f0005_self_recursive_predicate_without_base_case() {
        let src = "P(a) :- P(a).\n";
        let report = check_source(src);
        // The self-copy also triggers F0012 (recursion cannot grow).
        assert_eq!(codes(&report), vec!["F0005", "F0012"]);
        assert_eq!(span_text(src, &report.diagnostics[0]), "P(a) :- P(a).");
        assert!(!report.has_errors());
    }

    #[test]
    fn f0005_clean_with_base_case() {
        // The base case silences F0005, but the verbatim self-copy in
        // rule 2 still can never derive a new tuple (F0012).
        let report = check_source("P(a) :- E(a).\nP(a) :- P(a).\n");
        assert_eq!(codes(&report), vec!["F0012"]);
        assert!(check_source("P(a) :- E(a).\nP(b) :- E2(a, b), P(a).\n").is_empty());
    }

    // --- F0006: undefined relations -------------------------------------

    #[test]
    fn f0006_undefined_relation_with_db() {
        let db = Database::new();
        let src = "R(a) :- Missing(a).\n";
        let report = check_source_with_db(src, &db);
        assert!(codes(&report).contains(&"F0006"));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F0006")
            .unwrap();
        assert_eq!(span_text(src, d), "Missing(a)");
    }

    #[test]
    fn f0006_clean_when_relation_exists() {
        let mut db = Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        db.insert("F", faure_ctable::CTuple::new([faure_ctable::Term::int(1)]))
            .unwrap();
        assert!(check_source_with_db("R(a) :- F(a).\n", &db).is_empty());
    }

    // --- F0007: singleton variables -------------------------------------

    #[test]
    fn f0007_singleton_variable_span() {
        let src = "R(a) :- F(a, b).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0007"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "b");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn f0007_clean_when_variable_shared() {
        assert!(check_source("R(a, b) :- F(a, b).\n").is_empty());
    }

    // --- F0008: unsatisfiable conditions --------------------------------

    #[test]
    fn f0008_contradictory_interval() {
        let src = "R(a) :- F(a), a < 2, a > 5.\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0008"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "a < 2, a > 5");
        assert!(d.message.contains("a < 2"));
        assert!(d.message.contains("a > 5"));
    }

    #[test]
    fn f0008_clean_satisfiable_bounds() {
        assert!(check_source("R(a) :- F(a), a > 2, a < 5.\n").is_empty());
    }

    // --- F0009..F0014: semantic diagnostics -----------------------------

    fn db_small() -> Database {
        use faure_ctable::{CTuple, Domain, Schema, Term};
        let mut db = Database::new();
        db.fresh_cvar("v", Domain::Ints(vec![0, 1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.insert("E", CTuple::new([Term::int(0), Term::int(1)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(2)]))
            .unwrap();
        db
    }

    #[test]
    fn f0009_kind_mismatch_across_rules() {
        let src = "Cost(a, 3) :- E(a, a).\nCost(a, High) :- E(a, a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0009"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "High");
        assert!(d.message.contains("symbolic"), "{}", d.message);
        assert!(d.message.contains("integer"), "{}", d.message);
        // Consistent kinds stay silent.
        assert!(check_source("Cost(a, 3) :- E(a, a).\nCost(a, 4) :- E(a, a).\n").is_empty());
    }

    #[test]
    fn f0010_provably_empty_join() {
        // P's only column holds {1, 2}; Q's holds {7}. Joining them on
        // one variable can never succeed.
        let src = "P(1).\nP(2).\nQ(7).\nR(a) :- P(a), Q(a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0010"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "a");
        assert!(
            d.message.contains("join can never succeed"),
            "{}",
            d.message
        );
        // Overlapping domains stay silent.
        assert!(check_source("P(1).\nP(2).\nQ(2).\nR(a) :- P(a), Q(a).\n").is_empty());
    }

    #[test]
    fn f0010_constant_outside_derived_domain() {
        let src = "P(1).\nP(2).\nR(a) :- P(7), E(a, a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0010"]);
        assert_eq!(span_text(src, &report.diagnostics[0]), "7");
    }

    #[test]
    fn f0011_comparison_contradicts_inferred_domain() {
        let db = db_small();
        let src = "R(a, b) :- E(a, b), a > 100.\n";
        let report = check_source_with_db(src, &db);
        assert_eq!(codes(&report), vec!["F0011"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "a > 100");
        assert!(d.message.contains("{0, 1}"), "{}", d.message);
        // A satisfiable comparison stays silent.
        assert!(check_source_with_db("R(a, b) :- E(a, b), a > 0.\n", &db).is_empty());
        // Comparison-vs-comparison contradictions stay F0008's call.
        let r = check_source_with_db("R(a, b) :- E(a, b), a < 2, a > 5.\n", &db);
        assert!(codes(&r).contains(&"F0008"), "{:?}", codes(&r));
        assert!(!codes(&r).contains(&"F0011"), "{:?}", codes(&r));
    }

    #[test]
    fn f0012_recursion_cannot_grow() {
        let src = "P(a) :- E(a, a).\nP(a) :- P(a), E(a, a).\n";
        let report = check_source(src);
        assert_eq!(codes(&report), vec!["F0012"]);
        assert!(
            report.diagnostics[0].message.contains("never derives"),
            "{}",
            report.diagnostics[0].message
        );
        // Real recursion (argument changes) stays silent.
        assert!(check_source("P(a) :- E(a, a).\nP(b) :- P(a), E(a, b).\n").is_empty());
    }

    #[test]
    fn f0013_unrestricted_head_column_with_db() {
        use faure_ctable::{CTuple, Domain, Schema, Term};
        let mut db = Database::new();
        let open = db.fresh_cvar("port", Domain::Open);
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.insert("E", CTuple::new([Term::int(0), Term::Var(open)]))
            .unwrap();
        let src = "R(a, b) :- E(a, b).\n";
        let report = check_source_with_db(src, &db);
        assert_eq!(codes(&report), vec!["F0013"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "b");
        assert!(d.message.contains("never restricted"), "{}", d.message);
        // A filter on the open column silences it.
        assert!(check_source_with_db("R(a, b) :- E(a, b), b < 100.\n", &db).is_empty());
        // Without a database F0013 never fires (everything would be ⊤).
        assert!(check_source(src).is_empty());
    }

    #[test]
    fn f0014_constant_incompatible_with_input() {
        let db = db_small();
        let src = "R(b) :- E(9, b).\n";
        let report = check_source_with_db(src, &db);
        assert_eq!(codes(&report), vec!["F0014"]);
        let d = &report.diagnostics[0];
        assert_eq!(span_text(src, d), "9");
        assert!(d.message.contains("input relation"), "{}", d.message);
        // A constant the input actually holds stays silent.
        assert!(check_source_with_db("R(b) :- E(1, b).\n", &db).is_empty());
    }

    #[test]
    fn duplicate_diagnostics_are_deduped_and_ordered() {
        // One atom triggering two different codes keeps both, ordered by
        // (span, code); exact duplicates collapse.
        let report = check_source("P(a) :- P(a).\n");
        let mut seen = report.diagnostics.clone();
        seen.dedup();
        assert_eq!(seen.len(), report.diagnostics.len());
        let keys: Vec<(usize, usize, &str)> = report
            .diagnostics
            .iter()
            .map(|d| (d.span.start, d.span.end, d.code))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn explain_code_covers_all_codes() {
        for n in 0..=14 {
            let code = format!("F{n:04}");
            let text = explain_code(&code).expect("explanation");
            assert!(text.starts_with(&code), "{code}: {text}");
        }
        assert!(explain_code("F9999").is_none());
        assert!(explain_code("nonsense").is_none());
    }

    // --- F0000: syntax errors -------------------------------------------

    #[test]
    fn f0000_syntax_error() {
        let report = check_source("R(a :- F(a).\n");
        assert_eq!(codes(&report), vec!["F0000"]);
        assert!(report.has_errors());
    }

    // --- collection and rendering ---------------------------------------

    #[test]
    fn multiple_diagnostics_in_one_run() {
        // Unsafe variable, singleton, and unsatisfiable condition all
        // reported together: the analyzer is not fail-fast.
        let src = "R(a, z) :- F(a, b).\nS(a) :- F(a, a), 1 > 2.\n";
        let report = check_source(src);
        let got = codes(&report);
        assert!(got.contains(&"F0001"), "{got:?}");
        assert!(got.contains(&"F0007"), "{got:?}");
        assert!(got.contains(&"F0008"), "{got:?}");
    }

    #[test]
    fn diagnostics_sorted_by_source_position() {
        let src = "S(a) :- F(a), 1 > 2.\nR(a, z) :- F(a).\n";
        let report = check_source(src);
        let starts: Vec<usize> = report.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn renderer_points_carets_at_the_span() {
        let src = "R(a, b) :- F(a).\n";
        let report = check_source(src);
        let rendered = report.render(src, "prog.fl");
        assert!(rendered.contains("error[F0001]"), "{rendered}");
        assert!(rendered.contains("--> prog.fl:1:6"), "{rendered}");
        assert!(rendered.contains("1 | R(a, b) :- F(a)."), "{rendered}");
        // The caret sits under column 6.
        let caret_line = rendered
            .lines()
            .find(|l| l.contains('^'))
            .expect("caret line");
        assert_eq!(caret_line.find('^'), Some("  | ".len() + 5), "{rendered}");
    }

    #[test]
    fn renderer_reports_line_numbers_past_one() {
        let src = "Ok(a) :- F(a).\nR(a, b) :- F(a).\n";
        let rendered = check_source(src).render(src, "x.fl");
        assert!(rendered.contains("--> x.fl:2:6"), "{rendered}");
    }

    // --- JSON output ------------------------------------------------------

    #[test]
    fn json_output_carries_code_location_and_span() {
        let src = "R(a, b) :- F(a).\n";
        let json = check_source(src).to_json(src, "prog.fl");
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"code\":\"F0001\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"file\":\"prog.fl\""), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
        assert!(json.contains("\"col\":6"), "{json}");
        assert!(json.contains("\"span\":{\"start\":5,\"end\":6}"), "{json}");
    }

    #[test]
    fn json_output_escapes_message_strings() {
        // Backtick-quoted identifiers are fine, but a message containing
        // quotes (e.g. from a syntax error echoing source) must escape.
        let src = "R(a) :- F(a), a != \"x\\\"y\".\n";
        let report = check_source(src);
        let json = report.to_json(src, "q.fl");
        // Valid JSON: every unescaped quote is structural. Cheap check:
        // the escape sequence survives and the array parses brackets.
        assert!(json.ends_with("]\n"), "{json}");
        // An empty report is an empty array.
        assert_eq!(check_source("R(a) :- F(a).\n").to_json("", "f"), "[]\n");
    }
}
