//! Error type for the c-table layer.

use std::fmt;

/// Errors raised while building or manipulating c-tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtableError {
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A relation name was not found in the database.
    UnknownRelation(String),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// Possible-world enumeration would exceed the configured limit.
    WorldLimitExceeded {
        /// Number of worlds that enumeration would visit.
        worlds: u128,
        /// The configured limit.
        limit: u128,
    },
    /// Possible-world enumeration requires finite domains, but a
    /// c-variable has an open domain.
    OpenDomain(String),
    /// Instantiation found a c-variable with no binding in the
    /// world assignment.
    UnboundCVar(String),
}

impl fmt::Display for CtableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtableError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch in relation {relation}: schema has {expected} attributes, tuple has {got}"
            ),
            CtableError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            CtableError::DuplicateRelation(name) => {
                write!(f, "relation {name} already exists")
            }
            CtableError::WorldLimitExceeded { worlds, limit } => write!(
                f,
                "possible-world enumeration needs {worlds} worlds, above the limit of {limit}"
            ),
            CtableError::OpenDomain(name) => write!(
                f,
                "c-variable {name}' has an open domain; possible worlds cannot be enumerated"
            ),
            CtableError::UnboundCVar(name) => write!(
                f,
                "c-variable {name}' is not bound by the world assignment"
            ),
        }
    }
}

impl std::error::Error for CtableError {}
