//! Table invariants under adversarial insert sequences.
//!
//! Random streams of inserts (duplicate terms, merged conditions,
//! contradictions, conditions too big to normalise) must preserve:
//!
//! * term-uniqueness: one row per distinct term vector;
//! * no `False` row conditions;
//! * index/scan agreement for every probe;
//! * semantic growth: the set of worlds in which a tuple is present
//!   never shrinks across inserts (conditions only widen);
//! * prune is semantically invisible.

use faure_ctable::{CTuple, CVarId, CVarRegistry, Condition, Const, Domain, Schema, Term};
use faure_storage::{Pattern, Table};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn registry() -> CVarRegistry {
    let mut reg = CVarRegistry::new();
    reg.fresh("a", Domain::Bool01);
    reg.fresh("b", Domain::Bool01);
    reg.fresh("c", Domain::Ints(vec![0, 1, 2]));
    reg
}

const NVARS: u32 = 3;

fn all_assignments(reg: &CVarRegistry) -> Vec<faure_ctable::Assignment> {
    let domains: Vec<Vec<Const>> = (0..NVARS)
        .map(|i| reg.domain(CVarId(i)).members().unwrap())
        .collect();
    let mut out = vec![faure_ctable::Assignment::new()];
    for (i, dom) in domains.iter().enumerate() {
        let mut next = Vec::new();
        for a in &out {
            for v in dom {
                let mut a2 = a.clone();
                a2.set(CVarId(i as u32), v.clone());
                next.push(a2);
            }
        }
        out = next;
    }
    out
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0i64..3).prop_map(Term::int),
        (0u32..NVARS).prop_map(|i| Term::Var(CVarId(i))),
    ]
}

fn arb_cond() -> impl Strategy<Value = Condition> {
    let atom = (0u32..NVARS, 0i64..3, any::<bool>()).prop_map(|(v, k, eq)| {
        if eq {
            Condition::eq(Term::Var(CVarId(v)), Term::int(k))
        } else {
            Condition::ne(Term::Var(CVarId(v)), Term::int(k))
        }
    });
    let leaf = prop_oneof![Just(Condition::True), atom];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Condition::conj),
            prop::collection::vec(inner, 1..3).prop_map(Condition::disj),
        ]
    })
}

fn arb_tuple() -> impl Strategy<Value = CTuple> {
    (prop::collection::vec(arb_term(), 2), arb_cond())
        .prop_map(|(terms, cond)| CTuple::with_cond(terms, cond))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn insert_stream_invariants(tuples in prop::collection::vec(arb_tuple(), 1..20)) {
        let reg = registry();
        let mut table = Table::new(Schema::new("T", &["x", "y"]));
        let assignments = all_assignments(&reg);
        // Per-world presence sets, tracked incrementally.
        let mut presence: Vec<BTreeSet<Vec<Const>>> =
            vec![BTreeSet::new(); assignments.len()];

        for t in &tuples {
            // Semantic reference update.
            for (w, a) in assignments.iter().enumerate() {
                let lookup = a.lookup();
                if t.cond.eval(&lookup) == Some(true) {
                    presence[w].insert(
                        t.terms.iter().map(|x| x.instantiate(&lookup).expect("bound")).collect(),
                    );
                }
            }
            table.insert(t.clone()).unwrap();

            // Invariant: distinct terms.
            let mut seen = BTreeSet::new();
            for row in table.iter() {
                prop_assert!(seen.insert(row.terms.clone()), "duplicate terms");
                prop_assert_ne!(&row.cond, &Condition::False);
            }
            // Invariant: per-world contents equal the reference.
            for (w, a) in assignments.iter().enumerate() {
                let lookup = a.lookup();
                let got: BTreeSet<Vec<Const>> = table
                    .iter()
                    .filter(|row| row.cond.eval(&lookup) == Some(true))
                    .map(|row| row.terms.iter().map(|x| x.instantiate(&lookup).expect("bound")).collect())
                    .collect();
                prop_assert_eq!(&got, &presence[w], "world {}", w);
            }
        }

        // Index/scan agreement on a few probes.
        for probe in [
            [Pattern::Exact(Term::int(0)), Pattern::Any],
            [Pattern::Exact(Term::int(2)), Pattern::Exact(Term::int(1))],
            [Pattern::Any, Pattern::Exact(Term::Var(CVarId(1)))],
        ] {
            let mut via_index: Vec<usize> = table
                .find_matches(&reg, &probe)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            via_index.sort_unstable();
            let mut via_scan: Vec<usize> = (0..table.len())
                .filter(|&i| Table::match_row(&reg, &table.row(i), &probe).is_some())
                .collect();
            via_scan.sort_unstable();
            prop_assert_eq!(via_index, via_scan);
        }

        // Prune is semantically invisible.
        let mut pruned = table.clone();
        let mut session = faure_solver::Session::new();
        pruned.prune(&reg, &mut session).unwrap();
        for (w, a) in assignments.iter().enumerate() {
            let lookup = a.lookup();
            let got: BTreeSet<Vec<Const>> = pruned
                .iter()
                .filter(|row| row.cond.eval(&lookup) == Some(true))
                .map(|row| row.terms.iter().map(|x| x.instantiate(&lookup).expect("bound")).collect())
                .collect();
            prop_assert_eq!(&got, &presence[w], "world {} after prune", w);
        }
    }
}
