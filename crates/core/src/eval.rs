//! Fauré-log evaluation over c-tables.
//!
//! This is the paper's central technical contribution (§3): datalog
//! evaluation where the valuation function `v^C` maps rule variables
//! into the **c-domain** — constants *and* c-variables — and where
//! pattern matching may succeed *conditionally* (a constant matches a
//! c-variable cell by adding an equality to the derived row's
//! condition).
//!
//! The engine implements:
//!
//! * **c-valuation** — rule-variable binding against c-tuples with
//!   accumulated match conditions (via [`faure_storage::Table`]);
//! * **condition propagation** — a derived row's condition is the
//!   conjunction of its body rows' conditions, the match conditions,
//!   and the rule's explicit comparisons (equation 3);
//! * **stratified semi-naive fixpoint** — recursion by iteration,
//!   negation by the *not-derivable* condition of the lower stratum
//!   (the paper §6: "recursive fauré-log is implemented by
//!   stratification");
//! * the **three-phase pipeline** of §6 with per-phase timing: the
//!   relational work is phase 1+2, the solver pass
//!   ([`PrunePolicy`]) is phase 3.
//!
//! Derived tuples with equal terms merge their conditions
//! disjunctively; disjuncts are canonicalised (sorted, deduplicated) so
//! the fixpoint terminates — conditions range over the finite atom
//! vocabulary induced by the database.

use crate::analysis::{check_safety, stratify, AnalysisError};
use crate::ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule};
use crate::plan::{PlanCache, RulePlan};
use faure_ctable::{
    Atom, CTuple, CVarId, Condition, Database, Domain, Expr, LinExpr, Relation, Schema, Term,
};
use faure_solver::{Session, SolverError};
use faure_storage::{exec, CondAcc, OpStats, Pattern, PhaseStats, Table};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::Instant;

/// When the solver phase (the paper's "Z3 step") runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrunePolicy {
    /// Never call the solver; rows may carry contradictory conditions.
    Never,
    /// Prune each derived relation once its stratum converges
    /// (default; matches the paper's batch use of Z3).
    EndOfStratum,
    /// Prune the delta after every fixpoint iteration (keeps
    /// intermediate states small, costs more solver calls).
    EveryIteration,
    /// Check satisfiability of every candidate row before insertion.
    Eager,
}

/// Evaluation options.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Solver phase policy.
    pub prune: PrunePolicy,
    /// Semi-naive (true, default) or naive (false) fixpoint — the
    /// latter exists for the ablation benchmark.
    pub semi_naive: bool,
    /// Safety valve on fixpoint iterations per stratum.
    pub max_iterations: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            prune: PrunePolicy::EndOfStratum,
            semi_naive: true,
            max_iterations: 100_000,
        }
    }
}

/// Evaluation errors.
#[derive(Debug)]
pub enum EvalError {
    /// Static analysis rejected the program.
    Analysis(AnalysisError),
    /// The solver rejected a condition (outside supported fragment or
    /// budget exceeded).
    Solver(SolverError),
    /// An atom's arity disagrees with its relation.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Arity in the database / earlier use.
        expected: usize,
        /// Arity at this use.
        got: usize,
    },
    /// The fixpoint did not converge within `max_iterations`.
    IterationLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A rule variable was unbound when needed (safety should prevent
    /// this; kept as a defensive error).
    UnboundVariable(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Analysis(e) => write!(f, "{e}"),
            EvalError::Solver(e) => write!(f, "{e}"),
            EvalError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate {pred} used with arity {got}, expected {expected}"
            ),
            EvalError::IterationLimit { limit } => {
                write!(f, "fixpoint did not converge within {limit} iterations")
            }
            EvalError::UnboundVariable(v) => write!(f, "unbound rule variable `{v}`"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<AnalysisError> for EvalError {
    fn from(e: AnalysisError) -> Self {
        EvalError::Analysis(e)
    }
}

impl From<SolverError> for EvalError {
    fn from(e: SolverError) -> Self {
        EvalError::Solver(e)
    }
}

/// Result of evaluating a program.
pub struct EvalOutput {
    /// The input database extended with all derived relations (and any
    /// c-variables auto-registered during resolution).
    pub database: Database,
    /// Per-phase statistics (the paper's `sql` / `Z3` / `#tuples`
    /// columns).
    pub stats: PhaseStats,
    /// Lint warnings from the pre-evaluation analysis pass (dead
    /// rules, shadowed inputs, singleton variables, …). Warnings never
    /// change evaluation results; callers may surface or ignore them.
    pub warnings: Vec<crate::analysis::Finding>,
}

impl EvalOutput {
    /// A derived (or input) relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.database.relation(name)
    }

    /// Whether the 0-ary predicate `name` (e.g. `panic`) was derived
    /// with a satisfiable condition. Requires the evaluation to have
    /// run with a pruning policy other than `Never`, or the caller can
    /// inspect conditions directly.
    pub fn derived(&self, name: &str) -> bool {
        self.relation(name).is_some_and(|r| !r.is_empty())
    }
}

/// Evaluates `program` on `db` with default options.
pub fn evaluate(program: &Program, db: &Database) -> Result<EvalOutput, EvalError> {
    evaluate_with(program, db, &EvalOptions::default())
}

/// Evaluates `program` on `db` with explicit options.
pub fn evaluate_with(
    program: &Program,
    db: &Database,
    opts: &EvalOptions,
) -> Result<EvalOutput, EvalError> {
    check_safety(program)?;
    let strat = stratify(program)?;
    // Diagnostic pre-pass: collect lint warnings without affecting
    // evaluation (the hard errors above gate first, so only
    // warning-class findings remain relevant here).
    let warnings: Vec<crate::analysis::Finding> = crate::analysis::analyze(program, Some(db))
        .into_iter()
        .filter(|f| !f.is_error())
        .collect();

    let mut database = db.clone();
    let cvmap = resolve_cvars(program, &mut database);
    let mut session = Session::new();
    let started = Instant::now();

    // --- set up tables -------------------------------------------------
    let idb: BTreeSet<&str> = program.idb_predicates();
    let mut tables: HashMap<String, Table> = HashMap::new();
    // EDB relations present in the database.
    for rel in database.relations() {
        tables.insert(rel.schema.name.clone(), Table::from_relation(rel));
    }
    // Any predicate mentioned but absent: empty table with inferred arity.
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(Literal::atom)) {
            let arity = atom.args.len();
            match tables.get(&atom.pred) {
                Some(t) if t.schema.arity() != arity => {
                    return Err(EvalError::ArityMismatch {
                        pred: atom.pred.clone(),
                        expected: t.schema.arity(),
                        got: arity,
                    });
                }
                Some(_) => {}
                None => {
                    let attrs: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
                    let schema = Schema {
                        name: atom.pred.clone(),
                        attrs,
                    };
                    tables.insert(atom.pred.clone(), Table::new(schema));
                }
            }
        }
    }

    let ctx = Ctx {
        cvmap: &cvmap,
        reg_snapshot: database.cvars.clone(),
    };

    let mut stats = PhaseStats::new();
    let mut plans = PlanCache::new();

    // --- evaluate stratum by stratum ------------------------------------
    for stratum_rules in &strat.strata {
        let rules: Vec<(usize, &Rule)> = stratum_rules
            .iter()
            .map(|&i| (i, &program.rules[i]))
            .collect();
        let stratum_preds: BTreeSet<&str> =
            rules.iter().map(|(_, r)| r.head.pred.as_str()).collect();

        if opts.semi_naive {
            eval_stratum_semi_naive(
                &ctx,
                &rules,
                &stratum_preds,
                &mut tables,
                &mut plans,
                &mut session,
                opts,
                &mut stats,
            )?;
        } else {
            eval_stratum_naive(
                &ctx,
                &rules,
                &stratum_preds,
                &mut tables,
                &mut plans,
                &mut session,
                opts,
                &mut stats,
            )?;
        }

        if matches!(
            opts.prune,
            PrunePolicy::EndOfStratum | PrunePolicy::EveryIteration
        ) {
            for p in &stratum_preds {
                let t = tables.get_mut(*p).expect("table created above");
                let removed = t.prune(&ctx.reg_snapshot, &mut session)?;
                stats.pruned += removed;
            }
        }
        let _ = idb;
    }

    // --- collect results -------------------------------------------------
    // Drop tables as they are converted (and EDB mirrors up front) so
    // peak memory stays near two copies of the data, not three — this
    // matters at Table 4 scale (millions of rows).
    let idb_names: Vec<String> = program
        .idb_predicates()
        .into_iter()
        .map(str::to_owned)
        .collect();
    tables.retain(|name, _| idb_names.iter().any(|p| p == name));
    let mut derived_tuples = 0usize;
    for p in &idb_names {
        let t = tables.remove(p).expect("table created in setup");
        derived_tuples += t.len();
        database.set_relation(t.to_relation());
    }

    let total = started.elapsed();
    let solver_time = session.stats().time;
    stats.relational = total.saturating_sub(solver_time);
    stats.solver = solver_time;
    stats.tuples = derived_tuples;
    stats.solver_stats = session.stats();
    stats.plan_cache_hits = plans.hits;
    stats.plan_cache_misses = plans.misses;

    Ok(EvalOutput {
        database,
        stats,
        warnings,
    })
}

/// Resolves c-variable names to ids, auto-registering unknown names
/// with an open domain.
fn resolve_cvars(program: &Program, db: &mut Database) -> HashMap<String, CVarId> {
    let mut map = HashMap::new();
    for name in program.cvar_names() {
        let id = match db.cvars.by_name(name) {
            Some(id) => id,
            None => db.fresh_cvar(name, Domain::Open),
        };
        map.insert(name.to_owned(), id);
    }
    map
}

struct Ctx<'a> {
    cvmap: &'a HashMap<String, CVarId>,
    /// Registry snapshot taken after resolution (the registry is not
    /// mutated during evaluation).
    reg_snapshot: faure_ctable::CVarRegistry,
}

// ---------------------------------------------------------------------------
// fixpoint drivers
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn eval_stratum_semi_naive(
    ctx: &Ctx<'_>,
    rules: &[(usize, &Rule)],
    stratum_preds: &BTreeSet<&str>,
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    // Iteration 0: every rule against the full tables (recursive rules
    // see the — possibly empty — current contents of stratum IDBs).
    let mut delta: HashMap<String, Table> = HashMap::new();
    for &(ri, rule) in rules {
        let plan = plans.get_or_compile(ri, rule, None);
        let derived = eval_rule(ctx, rule, plan, tables, None, session, opts, &mut stats.ops)?;
        merge_derived(rule.head.pred.as_str(), derived, tables, &mut delta);
    }
    record_delta_size(&delta, stats);

    let mut iterations = 0usize;
    while !delta.is_empty() {
        iterations += 1;
        if iterations > opts.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        if opts.prune == PrunePolicy::EveryIteration {
            for t in delta.values_mut() {
                t.prune(&ctx.reg_snapshot, session)?;
            }
            delta.retain(|_, t| !t.is_empty());
            if delta.is_empty() {
                break;
            }
        }
        let mut next_delta: HashMap<String, Table> = HashMap::new();
        for &(ri, rule) in rules {
            // One pass per positive body literal whose predicate is in
            // this stratum and has a pending delta. The plan for each
            // (rule, delta slot) is compiled once — later iterations
            // are cache hits that only execute.
            for (pos, lit) in rule.body.iter().enumerate() {
                if lit.is_negative() {
                    continue;
                }
                let p = lit.atom().pred.as_str();
                if !stratum_preds.contains(p) {
                    continue;
                }
                let Some(d) = delta.get(p) else { continue };
                if d.is_empty() {
                    continue;
                }
                let plan = plans.get_or_compile(ri, rule, Some(pos));
                let derived = eval_rule(
                    ctx,
                    rule,
                    plan,
                    tables,
                    Some(d),
                    session,
                    opts,
                    &mut stats.ops,
                )?;
                merge_derived(rule.head.pred.as_str(), derived, tables, &mut next_delta);
            }
        }
        delta = next_delta;
        record_delta_size(&delta, stats);
    }
    Ok(())
}

/// Records the total delta size of a just-finished fixpoint iteration
/// (the empty delta that terminates the loop is not recorded).
fn record_delta_size(delta: &HashMap<String, Table>, stats: &mut PhaseStats) {
    let total: usize = delta.values().map(Table::len).sum();
    if total > 0 {
        stats.delta_sizes.push(total);
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_stratum_naive(
    ctx: &Ctx<'_>,
    rules: &[(usize, &Rule)],
    stratum_preds: &BTreeSet<&str>,
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    let _ = stratum_preds;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > opts.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let mut changed = false;
        for &(ri, rule) in rules {
            let plan = plans.get_or_compile(ri, rule, None);
            let derived = eval_rule(ctx, rule, plan, tables, None, session, opts, &mut stats.ops)?;
            let table = tables
                .get_mut(rule.head.pred.as_str())
                .expect("table created in setup");
            for row in derived {
                if table.insert(row).changed() {
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

/// Merges derived rows into the full table; changed rows (new terms or
/// new disjunct) are recorded in `delta` carrying only the new
/// disjunct.
fn merge_derived(
    pred: &str,
    derived: Vec<CTuple>,
    tables: &mut HashMap<String, Table>,
    delta: &mut HashMap<String, Table>,
) {
    if derived.is_empty() {
        return;
    }
    let table = tables.get_mut(pred).expect("table created in setup");
    for row in derived {
        let disjunct = row.cond.clone();
        if table.insert(row.clone()).changed() {
            delta
                .entry(pred.to_owned())
                .or_insert_with(|| Table::new(table.schema.clone()))
                .insert(CTuple {
                    terms: row.terms,
                    cond: disjunct,
                });
        }
    }
}

// ---------------------------------------------------------------------------
// single-rule plan execution (the c-valuation)
// ---------------------------------------------------------------------------

/// Outcome of evaluating one comparison under a substitution: either
/// the branch dies (ground-false), or a condition fragment (possibly
/// `True`) joins the accumulator.
fn apply_comparison(
    ctx: &Ctx<'_>,
    cmp: &Comparison,
    theta: &HashMap<&str, Term>,
    acc: &mut CondAcc,
    ops: &mut OpStats,
) -> Result<bool, EvalError> {
    let atom = comparison_atom(ctx, cmp, theta)?;
    let mut vars = BTreeSet::new();
    atom.cvars(&mut vars);
    if vars.is_empty() {
        // Ground: decide now. A false (or undefined) comparison cuts
        // the branch before any further literal is joined.
        match atom.eval(&|_| unreachable!("ground atom")) {
            Some(true) => Ok(true),
            Some(false) | None => {
                ops.cmp_pruned += 1;
                Ok(false)
            }
        }
    } else if acc.push(Condition::Atom(atom), ops) {
        Ok(true)
    } else {
        ops.cmp_pruned += 1;
        Ok(false)
    }
}

/// Executes a compiled [`RulePlan`] against the current tables. When
/// the plan has a delta slot, `delta_table` supplies the iteration
/// delta it reads. Returns the derived head rows (conditions
/// structurally simplified, `False` filtered out).
#[allow(clippy::too_many_arguments)]
fn eval_rule(
    ctx: &Ctx<'_>,
    rule: &Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
) -> Result<Vec<CTuple>, EvalError> {
    debug_assert_eq!(plan.delta_pos.is_some(), delta_table.is_some());
    let mut out = Vec::new();
    let mut theta: HashMap<&str, Term> = HashMap::new();
    let mut acc = CondAcc::new();
    // Comparisons with no rule variables gate the whole rule pass.
    for &ci in &plan.initial_comparisons {
        if !apply_comparison(ctx, &rule.comparisons[ci], &theta, &mut acc, ops)? {
            return Ok(out);
        }
    }
    exec_step(
        ctx,
        rule,
        plan,
        tables,
        delta_table,
        0,
        &mut theta,
        &mut acc,
        session,
        opts,
        ops,
        &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn exec_step<'r>(
    ctx: &Ctx<'_>,
    rule: &'r Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    depth: usize,
    theta: &mut HashMap<&'r str, Term>,
    acc: &mut CondAcc,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
    out: &mut Vec<CTuple>,
) -> Result<(), EvalError> {
    if depth == plan.steps.len() {
        return finish_rule(ctx, rule, plan, tables, theta, acc, session, opts, ops, out);
    }
    let step = &plan.steps[depth];
    let atom = rule.body[step.lit_pos].atom();
    let table: &Table = if step.is_delta {
        delta_table.expect("delta plan executed with a delta table")
    } else {
        tables.get(&atom.pred).expect("table created in setup")
    };

    // Build patterns under the current substitution.
    let mut patterns = Vec::with_capacity(atom.args.len());
    for arg in &atom.args {
        let pat = match arg {
            ArgTerm::Cst(c) => Pattern::Exact(Term::Const(c.clone())),
            ArgTerm::CVar(name) => Pattern::Exact(Term::Var(ctx.cvmap[name])),
            ArgTerm::Var(v) => match theta.get(v.as_str()) {
                Some(t) => Pattern::Exact(t.clone()),
                None => Pattern::Any,
            },
        };
        patterns.push(pat);
    }

    for (row_idx, mu) in exec::probe(table, &ctx.reg_snapshot, &patterns, ops) {
        let row = table.row(row_idx);
        let mark = acc.mark();
        let mut ok = acc.push(row.cond.clone(), ops) && acc.push(mu, ops);
        // Bind variables (handling repeated variables within the atom).
        let mut bound_here: Vec<&'r str> = Vec::new();
        if ok {
            for (arg, cell) in atom.args.iter().zip(&row.terms) {
                if let ArgTerm::Var(v) = arg {
                    match theta.get(v.as_str()) {
                        Some(prev) => {
                            // Already bound (earlier literal or repeated in
                            // this atom). A pattern covered pre-bound vars;
                            // repeats bound within this row need an explicit
                            // equality.
                            if bound_here.contains(&v.as_str()) {
                                match (prev, cell) {
                                    (Term::Const(a), Term::Const(b)) => {
                                        if a != b {
                                            ok = false;
                                            break;
                                        }
                                    }
                                    (a, b) => {
                                        if a != b {
                                            let eq = Condition::eq(a.clone(), b.clone());
                                            if !acc.push(eq, ops) {
                                                ok = false;
                                                break;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        None => {
                            theta.insert(v.as_str(), cell.clone());
                            bound_here.push(v.as_str());
                        }
                    }
                }
            }
        }
        // Pushed-down comparisons: every variable they mention is bound
        // by now, so ground-false ones cut the branch here instead of
        // after the remaining joins.
        if ok {
            for &ci in &step.comparisons {
                if !apply_comparison(ctx, &rule.comparisons[ci], theta, acc, ops)? {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            exec_step(
                ctx,
                rule,
                plan,
                tables,
                delta_table,
                depth + 1,
                theta,
                acc,
                session,
                opts,
                ops,
                out,
            )?;
        }
        acc.truncate(mark);
        for v in bound_here {
            theta.remove(v);
        }
    }
    Ok(())
}

/// Applies negated literals, then emits the head row.
#[allow(clippy::too_many_arguments)]
fn finish_rule<'r>(
    ctx: &Ctx<'_>,
    rule: &'r Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    theta: &HashMap<&'r str, Term>,
    acc: &CondAcc,
    session: &mut Session,
    opts: &EvalOptions,
    ops: &mut OpStats,
    out: &mut Vec<CTuple>,
) -> Result<(), EvalError> {
    let mut cond = acc.materialize();
    // Negation: "not derivable from the c-table".
    for &np in &plan.negations {
        let atom = rule.body[np].atom();
        let terms = instantiate_args(ctx, &atom.args, theta)?;
        let table = tables.get(&atom.pred).expect("table created in setup");
        ops.neg_checks += 1;
        cond = cond.and(table.negation_condition(&ctx.reg_snapshot, &terms));
        if cond == Condition::False {
            return Ok(());
        }
    }

    let cond = canonicalize(faure_solver::simplify(&cond));
    if cond == Condition::False {
        return Ok(());
    }
    if opts.prune == PrunePolicy::Eager && !session.satisfiable(&ctx.reg_snapshot, &cond)? {
        return Ok(());
    }

    let terms = instantiate_args(ctx, &rule.head.args, theta)?;
    out.push(CTuple { terms, cond });
    Ok(())
}

fn instantiate_args(
    ctx: &Ctx<'_>,
    args: &[ArgTerm],
    theta: &HashMap<&str, Term>,
) -> Result<Vec<Term>, EvalError> {
    args.iter()
        .map(|a| match a {
            ArgTerm::Cst(c) => Ok(Term::Const(c.clone())),
            ArgTerm::CVar(name) => Ok(Term::Var(ctx.cvmap[name])),
            ArgTerm::Var(v) => theta
                .get(v.as_str())
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        })
        .collect()
}

/// Converts an AST comparison into a condition atom under the current
/// substitution.
fn comparison_atom(
    ctx: &Ctx<'_>,
    cmp: &Comparison,
    theta: &HashMap<&str, Term>,
) -> Result<Atom, EvalError> {
    let side = |e: &CompExpr| -> Result<Expr, EvalError> {
        match e {
            CompExpr::Arg(ArgTerm::Cst(c)) => Ok(Expr::Term(Term::Const(c.clone()))),
            CompExpr::Arg(ArgTerm::CVar(name)) => Ok(Expr::Term(Term::Var(ctx.cvmap[name]))),
            CompExpr::Arg(ArgTerm::Var(v)) => theta
                .get(v.as_str())
                .cloned()
                .map(Expr::Term)
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            CompExpr::Lin { terms, constant } => {
                let mut lin = LinExpr::constant(*constant);
                for (coef, name) in terms {
                    lin = lin.plus_var(*coef, ctx.cvmap[name]);
                }
                Ok(Expr::Lin(lin))
            }
        }
    };
    Ok(Atom {
        lhs: side(&cmp.lhs)?,
        op: cmp.op,
        rhs: side(&cmp.rhs)?,
    })
}

// ---------------------------------------------------------------------------
// condition canonicalisation
// ---------------------------------------------------------------------------

/// Sorts the children of `And` / `Or` nodes by the **total structural
/// order** on [`Condition`] so that logically identical conjunctions
/// built in different orders become structurally identical — the
/// delta-dedup in [`Table::insert`] then recognises them, which both
/// shrinks conditions and guarantees fixpoint termination.
///
/// The sort key used to be a 64-bit `DefaultHasher` value; two distinct
/// children with colliding hashes then got an arbitrary relative order,
/// so the "canonical" form was not collision-proof. Sorting by
/// `Condition`'s derived `Ord` is total and collision-free.
pub fn canonicalize(c: Condition) -> Condition {
    match c {
        Condition::And(cs) => {
            let mut cs: Vec<Condition> = Condition::take_children(cs)
                .into_iter()
                .map(canonicalize)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            match cs.len() {
                0 => Condition::True,
                1 => cs.pop().expect("len checked"),
                _ => Condition::conj(cs),
            }
        }
        Condition::Or(cs) => {
            let mut cs: Vec<Condition> = Condition::take_children(cs)
                .into_iter()
                .map(canonicalize)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            match cs.len() {
                0 => Condition::False,
                1 => cs.pop().expect("len checked"),
                _ => Condition::disj(cs),
            }
        }
        Condition::Not(inner) => canonicalize(Condition::take_inner(inner)).negate(),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use faure_ctable::examples::table2_path_db;

    /// q1/q2 of the paper: cost of 1.2.3.4's path.
    #[test]
    fn table2_cost_query() {
        let (db, vars) = table2_path_db();
        let program = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#).unwrap();
        let out = evaluate(&program, &db).unwrap();
        let rel = out.relation("Cost").unwrap();
        // Depending on x̄, the cost is 3 ([ABC]) or 4 ([ADEC]).
        assert_eq!(rel.len(), 2);
        let mut costs: Vec<i64> = rel
            .iter()
            .map(|t| t.terms[0].as_const().unwrap().as_int().unwrap())
            .collect();
        costs.sort_unstable();
        assert_eq!(costs, vec![3, 4]);
        // Each row's condition must mention x̄.
        for t in rel.iter() {
            assert!(t.cond.cvars().contains(&vars.x));
        }
    }

    /// q3: implicit pattern matching — P(1.2.3.5, y) matches the
    /// c-variable row (ȳ, [ABE]).
    #[test]
    fn table2_q3_pattern_match() {
        let (db, _) = table2_path_db();
        let program = parse_program(r#"Q3(c) :- P("1.2.3.5", p), C(p, c)."#).unwrap();
        let out = evaluate(&program, &db).unwrap();
        let rel = out.relation("Q3").unwrap();
        // The answer 3 is conditional on ȳ = 1.2.3.5 (consistent with
        // ȳ ≠ 1.2.3.4), so exactly one row.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples[0].terms[0], Term::int(3));
        assert_ne!(rel.tuples[0].cond, Condition::True);
    }

    /// The diagnostic pre-pass surfaces lints without changing results.
    #[test]
    fn warnings_surface_without_changing_results() {
        let (db, _) = table2_path_db();
        // `u` is a singleton (likely-typo) variable; the query result
        // must be identical to the clean formulation.
        let program = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c), D(u)."#).unwrap();
        let mut db2 = db.clone();
        db2.create_relation(faure_ctable::Schema::new("D", &["a"]))
            .unwrap();
        db2.insert("D", faure_ctable::CTuple::new([Term::int(0)]))
            .unwrap();
        let out = evaluate(&program, &db2).unwrap();
        assert_eq!(out.relation("Cost").unwrap().len(), 2);
        assert!(out
            .warnings
            .iter()
            .any(|w| matches!(w, crate::analysis::Finding::SingletonVariable { variable, .. } if variable == "u")));
        assert!(out.warnings.iter().all(|w| !w.is_error()));

        // A clean program yields no warnings.
        let clean = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#).unwrap();
        let out = evaluate(&clean, &db).unwrap();
        assert_eq!(out.warnings, Vec::new());
    }

    #[test]
    fn facts_evaluate() {
        let db = Database::new();
        let program = parse_program("Lb(Mkt, CS).\nLb(\"R&D\", GS).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert_eq!(out.relation("Lb").unwrap().len(), 2);
    }

    #[test]
    fn recursion_transitive_closure_ground() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let out = evaluate(&program, &db).unwrap();
        // 1→2,1→3,1→4,2→3,2→4,3→4
        assert_eq!(out.relation("R").unwrap().len(), 6);
    }

    #[test]
    fn naive_matches_semi_naive() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let semi = evaluate(&program, &db).unwrap();
        let naive = evaluate_with(
            &program,
            &db,
            &EvalOptions {
                semi_naive: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut a: Vec<Vec<Term>> = semi
            .relation("R")
            .unwrap()
            .iter()
            .map(|t| t.terms.clone())
            .collect();
        let mut b: Vec<Vec<Term>> = naive
            .relation("R")
            .unwrap()
            .iter()
            .map(|t| t.terms.clone())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn recursion_with_conditions_terminates_on_cycles() {
        // A 2-cycle where each link is protected by a c-variable; the
        // reachability conditions must converge (conjunction dedup).
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar("y", Domain::Bool01);
        db.create_relation(Schema::new("F", &["a", "b"])).unwrap();
        db.insert(
            "F",
            CTuple::with_cond(
                [Term::int(1), Term::int(2)],
                Condition::eq(Term::Var(x), Term::int(1)),
            ),
        )
        .unwrap();
        db.insert(
            "F",
            CTuple::with_cond(
                [Term::int(2), Term::int(1)],
                Condition::eq(Term::Var(y), Term::int(1)),
            ),
        )
        .unwrap();
        let program = parse_program(
            "R(a, b) :- F(a, b).\n\
             R(a, b) :- F(a, c), R(c, b).\n",
        )
        .unwrap();
        let out = evaluate(&program, &db).unwrap();
        let r = out.relation("R").unwrap();
        // R(1,2), R(2,1), R(1,1), R(2,2)
        assert_eq!(r.len(), 4);
        // R(1,1) requires both links: condition ≡ x̄=1 ∧ ȳ=1.
        let r11 = r
            .iter()
            .find(|t| t.terms == vec![Term::int(1), Term::int(1)])
            .unwrap();
        let expected = Condition::eq(Term::Var(x), Term::int(1))
            .and(Condition::eq(Term::Var(y), Term::int(1)));
        assert!(faure_solver::equivalent(&out.database.cvars, &r11.cond, &expected).unwrap());
    }

    #[test]
    fn negation_not_derivable() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        db.create_relation(Schema::new("N", &["a"])).unwrap();
        db.insert("N", CTuple::new([Term::int(1)])).unwrap();
        db.insert("N", CTuple::new([Term::int(2)])).unwrap();
        db.create_relation(Schema::new("Block", &["a"])).unwrap();
        db.insert(
            "Block",
            CTuple::with_cond([Term::int(1)], Condition::eq(Term::Var(x), Term::int(1))),
        )
        .unwrap();
        let program = parse_program("Open(a) :- N(a), !Block(a).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        let open = out.relation("Open").unwrap();
        assert_eq!(open.len(), 2);
        let o1 = open.iter().find(|t| t.terms == vec![Term::int(1)]).unwrap();
        // Open(1) iff NOT (x̄ = 1), i.e. x̄ ≠ 1.
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &o1.cond,
            &Condition::ne(Term::Var(x), Term::int(1))
        )
        .unwrap());
        let o2 = open.iter().find(|t| t.terms == vec![Term::int(2)]).unwrap();
        assert_eq!(o2.cond, Condition::True);
    }

    #[test]
    fn comparisons_filter_and_annotate() {
        let mut db = Database::new();
        let p = db.fresh_cvar("p", Domain::Ints(vec![80, 344, 7000]));
        db.create_relation(Schema::new("R", &["subnet", "port"]))
            .unwrap();
        db.insert("R", CTuple::new([Term::sym("Mkt"), Term::Var(p)]))
            .unwrap();
        db.insert("R", CTuple::new([Term::sym("R&D"), Term::int(80)]))
            .unwrap();
        let program = parse_program("V(s) :- R(s, q), q != 80.\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        let v = out.relation("V").unwrap();
        // R&D row: 80 != 80 is ground-false → dropped. Mkt row: condition p̄ ≠ 80.
        assert_eq!(v.len(), 1);
        assert_eq!(v.tuples[0].terms, vec![Term::sym("Mkt")]);
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &v.tuples[0].cond,
            &Condition::ne(Term::Var(p), Term::int(80))
        )
        .unwrap());
    }

    #[test]
    fn zero_ary_panic_queries() {
        let mut db = Database::new();
        db.create_relation(Schema::new("R", &["s", "d"])).unwrap();
        db.insert("R", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        db.create_relation(Schema::new("Fw", &["s", "d"])).unwrap();
        // No firewall: panic must fire unconditionally.
        let program = parse_program("panic :- R(Mkt, CS), !Fw(Mkt, CS).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert!(out.derived("panic"));
        // Deploy the firewall: panic no longer derivable.
        let mut db2 = db.clone();
        db2.insert("Fw", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        let out2 = evaluate(&program, &db2).unwrap();
        assert!(!out2.derived("panic"));
    }

    #[test]
    fn eager_prune_matches_end_of_stratum() {
        let (db, _) = table2_path_db();
        let program = parse_program(
            r#"Cost(c) :- P("1.2.3.4", p), C(p, c).
               Cheap(c) :- Cost(c), c < 4."#,
        )
        .unwrap();
        let a = evaluate_with(
            &program,
            &db,
            &EvalOptions {
                prune: PrunePolicy::Eager,
                ..Default::default()
            },
        )
        .unwrap();
        let b = evaluate(&program, &db).unwrap();
        assert_eq!(
            a.relation("Cheap").unwrap().len(),
            b.relation("Cheap").unwrap().len()
        );
        assert_eq!(a.relation("Cheap").unwrap().len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Ints(vec![1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(1)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(2)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(2), Term::Var(x)]))
            .unwrap();
        let program = parse_program("Diag(a) :- E(a, a).\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        let diag = out.relation("Diag").unwrap();
        // E(1,1) → Diag(1) unconditionally; E(2, x̄) → Diag(2) iff x̄ = 2.
        assert_eq!(diag.len(), 2);
        let d2 = diag.iter().find(|t| t.terms == vec![Term::int(2)]).unwrap();
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &d2.cond,
            &Condition::eq(Term::Var(x), Term::int(2))
        )
        .unwrap());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut db = Database::new();
        db.create_relation(Schema::new("F", &["a", "b"])).unwrap();
        let program = parse_program("R(a) :- F(a).\n").unwrap();
        assert!(matches!(
            evaluate(&program, &db),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn plans_compile_once_and_hit_cache_across_iterations() {
        // A 6-node chain: transitive closure takes several semi-naive
        // iterations, each of which must reuse the compiled delta plan.
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 1..6 {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        let program = parse_program(
            "R(a, b) :- E(a, b).\n\
             R(a, b) :- E(a, c), R(c, b).\n",
        )
        .unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert_eq!(out.relation("R").unwrap().len(), 15);
        // Plans: (rule1, None), (rule2, None), (rule2, Δ@1) — compiled
        // exactly once each; every later iteration is a cache hit.
        assert_eq!(out.stats.plan_cache_misses, 3);
        assert!(
            out.stats.plan_cache_hits > 0,
            "fixpoint iterations must reuse compiled plans, stats: {:?}",
            out.stats
        );
        // Semi-naive deltas shrink down the chain: iteration 0 seeds
        // the 5 edges plus the 4 length-2 paths (rule 2 already sees
        // rule 1's output), then 3, 2, 1 longer paths.
        assert_eq!(out.stats.delta_sizes, vec![9, 3, 2, 1]);
        // Operator counters observed the probes.
        assert!(out.stats.ops.probes > 0);
        assert!(out.stats.ops.rows_matched as usize >= 15);
    }

    #[test]
    fn pushed_comparisons_prune_branches_early() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 0..10 {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        let program = parse_program("Q(a, c) :- E(a, b), E(b, c), a < 3.\n").unwrap();
        let out = evaluate(&program, &db).unwrap();
        assert_eq!(out.relation("Q").unwrap().len(), 3);
        // `a < 3` is bound after the first literal; the 6+ failing
        // bindings must be cut before the second join, not after.
        assert!(out.stats.ops.cmp_pruned >= 6, "stats: {:?}", out.stats.ops);
    }

    #[test]
    fn canonicalize_merges_reordered_conjunctions() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        let y = db.fresh_cvar("y", Domain::Bool01);
        let a = Condition::eq(Term::Var(x), Term::int(1));
        let b = Condition::eq(Term::Var(y), Term::int(1));
        let ab = canonicalize(a.clone().and(b.clone()));
        let ba = canonicalize(b.and(a));
        assert_eq!(ab, ba);
    }
}
