//! Partition-aware routing for sharded evaluation.
//!
//! The sharded fixpoint driver (`faure_core::engine::shard`) partitions
//! each recursive predicate's delta on one key column; a derived row
//! belongs to the shard its key constant hashes to, and rows derived by
//! a different shard are *routed* to the owner, not recomputed. The
//! hash here must therefore be **stable**: independent of pointer
//! values, interning order, process, and platform, so that a fixed
//! shard count always produces the same partition of the same rows —
//! that stability is half of the determinism argument (the other half
//! is the producer-ordered merge at each barrier).
//!
//! A key cell holding a c-variable has no ground value to hash, so the
//! row cannot be assigned one owner: it is [broadcast](Route::Broadcast)
//! to every shard. Duplicate derivations downstream are absorbed by the
//! table's dedup-by-terms insert and the idempotent condition merge.

use faure_ctable::{Const, Term};
use std::time::Duration;

/// Where a row goes under a given shard count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// The row's key is ground: exactly one shard owns it.
    To(usize),
    /// The key cell is a c-variable — every shard must see the row.
    Broadcast,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable FNV-1a hash of a constant: a discriminant byte plus the
/// constant's content (symbols hash their *names*, not their interning
/// ids, so routing survives interning-order differences between runs).
pub fn hash_const(c: &Const) -> u64 {
    hash_const_into(FNV_OFFSET, c)
}

fn hash_const_into(state: u64, c: &Const) -> u64 {
    match c {
        Const::Int(v) => fnv1a(fnv1a(state, &[0u8]), &v.to_le_bytes()),
        Const::Sym(s) => fnv1a(fnv1a(state, &[1u8]), s.as_str().as_bytes()),
        Const::List(items) => {
            let mut h = fnv1a(state, &[2u8]);
            for item in items.iter() {
                h = hash_const_into(h, item);
            }
            fnv1a(h, &[3u8])
        }
    }
}

/// Routes a key cell under `shards` partitions: ground constants hash
/// to one owner, c-variable cells broadcast (see module docs).
pub fn route_term(term: &Term, shards: usize) -> Route {
    debug_assert!(shards >= 1);
    match term {
        Term::Const(c) => Route::To((hash_const(c) % shards as u64) as usize),
        Term::Var(_) => Route::Broadcast,
    }
}

/// Accumulated sharded-evaluation statistics for one run.
///
/// All counters are collected on the driver thread at pass barriers, so
/// they are deterministic for a fixed shard count (per-shard wall times
/// are wall-clock measurements and of course are not).
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Shard count the run executed with (`0` = never sharded).
    pub shards: usize,
    /// Changed rows routed to a shard other than the one that derived
    /// them (each broadcast copy beyond the producer's own counts too).
    pub routed_rows: u64,
    /// Changed rows broadcast to every shard because the partition-key
    /// cell held a c-variable.
    pub broadcast_rows: u64,
    /// Delta batches exchanged through the bounded channels.
    pub exchanged_batches: u64,
    /// Sharded rule passes executed (one per (rule, delta-slot, barrier)).
    pub passes: u64,
    /// Summed per-shard wall clock, indexed by shard. Grown on first
    /// use; `imbalance()` reads max/mean over it.
    pub shard_wall: Vec<Duration>,
}

impl ShardStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one shard's wall time for one pass.
    pub fn record_wall(&mut self, shard: usize, wall: Duration) {
        if self.shard_wall.len() <= shard {
            self.shard_wall.resize(shard + 1, Duration::ZERO);
        }
        self.shard_wall[shard] += wall;
    }

    /// Max/mean ratio over the per-shard wall times — `1.0` is a
    /// perfectly balanced run, `None` before any sharded pass ran.
    pub fn imbalance(&self) -> Option<f64> {
        let max = self.shard_wall.iter().max()?.as_secs_f64();
        let sum: f64 = self.shard_wall.iter().map(Duration::as_secs_f64).sum();
        if sum <= 0.0 {
            return None;
        }
        let mean = sum / self.shard_wall.len() as f64;
        Some(max / mean)
    }

    /// Folds another record into this one (shard counts must agree; the
    /// larger wins so absorbing a serial run's zeroed stats is a no-op).
    pub fn absorb(&mut self, other: &ShardStats) {
        self.shards = self.shards.max(other.shards);
        self.routed_rows += other.routed_rows;
        self.broadcast_rows += other.broadcast_rows;
        self.exchanged_batches += other.exchanged_batches;
        self.passes += other.passes;
        for (i, w) in other.shard_wall.iter().enumerate() {
            self.record_wall(i, *w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_terms_route_to_one_stable_shard() {
        for shards in [1usize, 2, 4, 8] {
            for v in 0..64i64 {
                let t = Term::int(v);
                let first = route_term(&t, shards);
                assert_eq!(first, route_term(&t, shards), "routing must be pure");
                match first {
                    Route::To(s) => assert!(s < shards),
                    Route::Broadcast => panic!("ground term broadcast"),
                }
            }
        }
    }

    #[test]
    fn symbols_hash_names_not_interning_order() {
        // Same name → same route regardless of when it was interned.
        let a = Term::sym("10.0.0.0/8");
        let b = Term::Const(Const::sym("10.0.0.0/8"));
        assert_eq!(route_term(&a, 8), route_term(&b, 8));
        // Distinct contents spread: at least two of these land apart.
        let routes: Vec<Route> = (0..16)
            .map(|i| route_term(&Term::sym(&format!("p{i}")), 8))
            .collect();
        let first = routes[0];
        assert!(routes.iter().any(|r| *r != first), "degenerate hash");
    }

    #[test]
    fn list_constants_hash_contents() {
        let path1 = Term::Const(Const::List(vec![Const::sym("A"), Const::sym("B")].into()));
        let path2 = Term::Const(Const::List(vec![Const::sym("A"), Const::sym("B")].into()));
        assert_eq!(route_term(&path1, 4), route_term(&path2, 4));
    }

    #[test]
    fn cvar_cells_broadcast() {
        let mut reg = faure_ctable::CVarRegistry::new();
        let x = reg.fresh("x", faure_ctable::Domain::Open);
        assert_eq!(route_term(&Term::Var(x), 4), Route::Broadcast);
    }

    #[test]
    fn single_shard_owns_everything() {
        for v in 0..8i64 {
            assert_eq!(route_term(&Term::int(v), 1), Route::To(0));
        }
    }

    #[test]
    fn stats_absorb_and_imbalance() {
        let mut a = ShardStats::new();
        assert_eq!(a.imbalance(), None);
        a.shards = 2;
        a.routed_rows = 3;
        a.record_wall(0, Duration::from_millis(30));
        a.record_wall(1, Duration::from_millis(10));
        let mut b = ShardStats::new();
        b.shards = 2;
        b.broadcast_rows = 2;
        b.exchanged_batches = 4;
        b.record_wall(1, Duration::from_millis(10));
        a.absorb(&b);
        assert_eq!(a.routed_rows, 3);
        assert_eq!(a.broadcast_rows, 2);
        assert_eq!(a.exchanged_batches, 4);
        // walls: [30ms, 20ms] → max 30, mean 25 → 1.2
        let imb = a.imbalance().unwrap();
        assert!((imb - 1.2).abs() < 1e-9, "imbalance {imb}");
    }
}
