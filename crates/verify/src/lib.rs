//! # faure-verify — relative-complete verification
//!
//! The second component of Fauré (§2, §5): instead of one conclusive
//! verifier, a ladder of tests, each **complete relative to the
//! information it is given** — a test answers decisively whenever its
//! information level permits, and says *unknown* exactly when more
//! information is genuinely needed.
//!
//! | level | information | test |
//! |-------|-------------|------|
//! | category (i)  | constraint definitions only | subsumption by constraints known to hold ([`category_i`]) |
//! | category (ii) | definitions + the update    | rewrite the target through the update, then subsumption ([`category_ii`]) |
//! | direct        | full network state          | evaluate the panic query ([`check_direct`]) |
//!
//! [`verify`] runs the ladder in order and reports which level decided.
//!
//! Constraints are 0-ary `panic` fauré-log programs ([`Constraint`]);
//! the subsumption machinery lives in `faure-core::containment`, the
//! update rewrite in `faure-core::update` — this crate packages them
//! into the workflow of the paper's running example: a network managed
//! by a TE team and a security team, each maintaining its own policies,
//! with a separate team verifying network-wide targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod verdict;
pub mod verifier;

pub use constraint::Constraint;
pub use verdict::{DirectVerdict, Level, RelativeVerdict, Report, Violation};
pub use verifier::{
    category_i, category_ii, check_direct, verify, violation_scenarios, VerifyError,
};
