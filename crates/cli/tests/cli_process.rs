//! End-to-end tests driving the built `faure` binary as a subprocess.

use std::io::Write;
use std::process::Command;

fn faure() -> Command {
    Command::new(env!("CARGO_BIN_EXE_faure"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("faure-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const FIG1: &str = "\
@cvar x in {0, 1}
@cvar y in {0, 1}
@cvar z in {0, 1}
@schema F(f, n1, n2)
F(1, 1, 2) :- $x = 1.
F(1, 1, 3) :- $x = 0.
F(1, 2, 3) :- $y = 1.
F(1, 2, 4) :- $y = 0.
F(1, 3, 5) :- $z = 1.
F(1, 3, 4) :- $z = 0.
F(1, 4, 5).
";

const REACH: &str = "\
R(f, a, b) :- F(f, a, b).
R(f, a, b) :- F(f, a, c), R(f, c, b).
";

#[test]
fn help_prints_usage() {
    let out = faure().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("faure eval"));
}

#[test]
fn no_args_prints_usage() {
    let out = faure().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn eval_pipeline() {
    let db = write_temp("fig1.fdb", FIG1);
    let program = write_temp("reach.fl", REACH);
    let out = faure()
        .args(["eval", db.to_str().unwrap(), program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(1, 1, 5)"), "{text}");
    assert!(text.contains("tuples"), "{text}");
}

#[test]
fn check_reports_verdicts() {
    let db = write_temp("fig1b.fdb", FIG1);
    let holds = write_temp(
        "holds.fl",
        &format!("{REACH}panic :- F(f, a, b), !R(1, 1, 5).\n"),
    );
    let out = faure()
        .args(["check", db.to_str().unwrap(), holds.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));

    let violated = write_temp(
        "violated.fl",
        &format!("{REACH}panic :- F(f, a, b), !R(1, 1, 4).\n"),
    );
    let out = faure()
        .args([
            "scenarios",
            db.to_str().unwrap(),
            violated.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 3, "{text}");
}

#[test]
fn sql_subcommand() {
    let db = write_temp("fig1c.fdb", FIG1);
    let out = faure()
        .args(["sql", db.to_str().unwrap(), "SELECT * FROM F WHERE n1 = 4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("(1, 4, 5)"));
}

#[test]
fn bad_input_fails_cleanly() {
    let db = write_temp("bad.fdb", "@cvar broken\n");
    let program = write_temp("p.fl", "R(a) :- F(a).\n");
    let out = faure()
        .args(["eval", db.to_str().unwrap(), program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = faure()
        .args(["eval", "/nonexistent.fdb", "/nonexistent.fl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
