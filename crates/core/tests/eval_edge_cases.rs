//! Edge-case integration tests for the fauré-log engine: multi-strata
//! negation chains, c-variables in heads, mixed facts and rules,
//! self-joins, error paths, and option combinations.

use faure_core::{
    evaluate, evaluate_with, parse_program, run, EvalError, EvalOptions, PrunePolicy,
};
use faure_ctable::{CTuple, Condition, Const, Database, Domain, Schema, Term};

fn edge_db() -> Database {
    let mut db = Database::new();
    db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
    for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2)] {
        db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
            .unwrap();
    }
    db
}

#[test]
fn three_strata_negation_chain() {
    let db = edge_db();
    let out = run(
        "Reach(a, b) :- E(a, b).\n\
         Reach(a, b) :- E(a, c), Reach(c, b).\n\
         Node(a) :- E(a, b).\n\
         Node(b) :- E(a, b).\n\
         Unreach(a, b) :- Node(a), Node(b), !Reach(a, b).\n\
         Isolated(a) :- Node(a), !HasOut(a).\n\
         HasOut(a) :- E(a, b).\n",
        &db,
    )
    .unwrap();
    // 1 has no incoming edge, so nothing reaches 1.
    let unreach = out.relation("Unreach").unwrap();
    assert!(unreach
        .iter()
        .any(|t| t.terms == vec![Term::int(2), Term::int(1)]));
    // Every node has an outgoing edge except 4? No: 4→2 exists; all have out.
    // Actually node 4 has out-edge (4,2); so Isolated is empty... but
    // node 1 has (1,2). Confirm empty.
    assert!(out.relation("Isolated").unwrap().is_empty());
}

#[test]
fn cvar_in_head_propagates() {
    // A rule may emit c-variables in its head (Listing 3 style).
    let mut db = Database::new();
    let p = db.fresh_cvar("p", Domain::Ints(vec![80, 7000]));
    db.create_relation(Schema::new("R", &["port"])).unwrap();
    db.insert("R", CTuple::new([Term::int(80)])).unwrap();
    let out = run("Mark($p) :- R(x).\n", &db).unwrap();
    let rel = out.relation("Mark").unwrap();
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.tuples[0].terms, vec![Term::Var(p)]);
}

#[test]
fn facts_and_rules_interleave() {
    let db = Database::new();
    let out = run(
        "Base(1, 2).\n\
         Base(2, 3).\n\
         Closure(a, b) :- Base(a, b).\n\
         Closure(a, b) :- Base(a, c), Closure(c, b).\n",
        &db,
    )
    .unwrap();
    assert_eq!(out.relation("Closure").unwrap().len(), 3);
}

#[test]
fn self_join_same_relation_twice() {
    let db = edge_db();
    let out = run("Two(a, c) :- E(a, b), E(b, c).\n", &db).unwrap();
    let two = out.relation("Two").unwrap();
    // paths of length 2: 1→3, 2→4, 3→2, 4→3.
    assert_eq!(two.len(), 4);
}

#[test]
fn empty_edb_relation_is_fine() {
    let mut db = Database::new();
    db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
    let out = run("R(a, b) :- E(a, b).\n", &db).unwrap();
    assert!(out.relation("R").unwrap().is_empty());
}

#[test]
fn missing_edb_relation_treated_as_empty() {
    let db = Database::new();
    let out = run("R(a) :- Ghost(a).\n", &db).unwrap();
    assert!(out.relation("R").unwrap().is_empty());
}

#[test]
fn unstratifiable_program_rejected() {
    let db = Database::new();
    let err = match run("P(a) :- N(a), !Q(a).\nQ(a) :- N(a), !P(a).\n", &db) {
        Err(e) => e,
        Ok(_) => panic!("expected stratification failure"),
    };
    assert!(err.to_string().contains("stratifiable"));
}

#[test]
fn unsafe_program_rejected() {
    let db = Database::new();
    let err = match run("P(a, b) :- N(a).\n", &db) {
        Err(e) => e,
        Ok(_) => panic!("expected safety failure"),
    };
    assert!(err.to_string().contains("unsafe"));
}

#[test]
fn every_iteration_prune_matches_default() {
    let mut db = edge_db();
    let x = db.fresh_cvar("x", Domain::Bool01);
    db.insert(
        "E",
        CTuple::with_cond(
            [Term::int(4), Term::int(5)],
            Condition::eq(Term::Var(x), Term::int(1)),
        ),
    )
    .unwrap();
    let program = parse_program("R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n").unwrap();
    let a = evaluate(&program, &db).unwrap();
    let b = evaluate_with(
        &program,
        &db,
        &EvalOptions {
            prune: PrunePolicy::EveryIteration,
            ..Default::default()
        },
    )
    .unwrap();
    let rows = |o: &faure_core::EvalOutput| {
        let mut v: Vec<Vec<Term>> = o
            .relation("R")
            .unwrap()
            .iter()
            .map(|t| t.terms.clone())
            .collect();
        v.sort();
        v
    };
    assert_eq!(rows(&a), rows(&b));
}

#[test]
fn never_prune_keeps_contradictory_rows() {
    let mut db = Database::new();
    let x = db.fresh_cvar("x", Domain::Bool01);
    db.create_relation(Schema::new("E", &["a"])).unwrap();
    db.insert("E", CTuple::new([Term::int(1)])).unwrap();
    // ȳ+ȳ=3-style: not locally contradictory, needs the solver.
    let program = parse_program("P(a) :- E(a), $x + $x = 3.\n").unwrap();
    let never = evaluate_with(
        &program,
        &db,
        &EvalOptions {
            prune: PrunePolicy::Never,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(never.relation("P").unwrap().len(), 1);
    let pruned = evaluate(&program, &db).unwrap();
    assert!(pruned.relation("P").unwrap().is_empty());
    let _ = x;
}

#[test]
fn head_constants_filter_nothing() {
    // Constants in heads simply label output tuples (paper's q7 shape
    // `T2(f, 2, 5)`).
    let db = edge_db();
    let out = run("Tag(a, Label) :- E(a, b).\n", &db).unwrap();
    for t in out.relation("Tag").unwrap().iter() {
        assert_eq!(t.terms[1], Term::Const(Const::sym("Label")));
    }
}

#[test]
fn duplicate_rules_are_harmless() {
    let db = edge_db();
    let out = run(
        "R(a, b) :- E(a, b).\n\
         R(a, b) :- E(a, b).\n",
        &db,
    )
    .unwrap();
    assert_eq!(out.relation("R").unwrap().len(), 4);
}

#[test]
fn comparison_between_two_bound_vars() {
    let db = edge_db();
    let out = run("Up(a, b) :- E(a, b), a < b.\n", &db).unwrap();
    // (4,2) violates a < b.
    assert_eq!(out.relation("Up").unwrap().len(), 3);
}

#[test]
fn stats_are_plausible() {
    let db = edge_db();
    let out = run("R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n", &db).unwrap();
    assert!(out.stats.tuples >= 4);
    assert_eq!(out.stats.tuples, out.relation("R").unwrap().len());
    // Solver ran (end-of-stratum prune on ground conditions is cheap
    // but still counted).
    assert!(out.stats.solver_stats.simplify_calls > 0 || out.stats.solver_stats.sat_calls > 0);
}

#[test]
fn derived_relation_replaces_same_named_edb() {
    // A program may extend an EDB relation with facts (Listing 4's q19
    // inserts into Lb).
    let mut db = Database::new();
    db.create_relation(Schema::new("Lb", &["a", "b"])).unwrap();
    db.insert("Lb", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
        .unwrap();
    let out = run("Lb(\"R&D\", GS).\n", &db).unwrap();
    assert_eq!(out.relation("Lb").unwrap().len(), 2);
}

#[test]
fn deep_recursion_terminates() {
    // A 60-node chain: recursion depth 60, quadratic tuples.
    let mut db = Database::new();
    db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
    for i in 0..60 {
        db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
            .unwrap();
    }
    let out = run("R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n", &db).unwrap();
    assert_eq!(out.relation("R").unwrap().len(), 61 * 60 / 2);
}

#[test]
fn iteration_limit_reported() {
    let mut db = Database::new();
    db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
    for i in 0..30 {
        db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
            .unwrap();
    }
    let program = parse_program("R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n").unwrap();
    let err = match evaluate_with(
        &program,
        &db,
        &EvalOptions {
            max_iterations: 2,
            ..Default::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("expected iteration limit"),
    };
    assert!(matches!(err, EvalError::IterationLimit { limit: 2 }));
}
