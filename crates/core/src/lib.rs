//! # faure-core — fauré-log, a Datalog extension over c-tables
//!
//! This crate is the primary contribution of
//! [Fauré (HotNets '21)](https://doi.org/10.1145/3484266.3487391): a
//! deductive query language for **partial network states** represented
//! as conditional tables, together with the static-analysis machinery
//! that powers relative-complete verification.
//!
//! ## Modules
//!
//! * [`ast`] / [`parser`] — rules, programs, and their textual syntax
//!   (`R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).`);
//! * [`analysis`] — safety (range restriction) and stratification;
//! * [`engine`] — evaluation with the **c-valuation** `v^C` (§3):
//!   variables range over the c-domain, constants match c-variable
//!   cells conditionally, and derived rows carry the conjunction of
//!   their provenance conditions; recursion by stratified semi-naive
//!   fixpoint, negation as *not derivable from the c-table*. Programs
//!   can be [prepared](engine::Engine::prepare) once and
//!   [run](engine::PreparedProgram::run) against many databases, and
//!   the fixpoint inner loop parallelises across threads
//!   ([`EvalOptions::threads`]) with bit-identical results;
//! * [`eval`] — the historical paths of the evaluation API
//!   (re-exports from [`engine`]);
//! * [`mod@reference`] — an independent pure-datalog evaluator over single
//!   possible worlds, the ground truth for **loss-less modeling** (§4);
//! * [`containment`] — constraint subsumption by the paper's reduction
//!   of program containment to fauré-log evaluation (§5, category (i));
//! * [`update`] — the insert/delete constraint rewrite (§5 Listing 4,
//!   category (ii)).
//!
//! ## Quick start
//!
//! ```
//! use faure_core::{parse_program, evaluate};
//! use faure_ctable::examples::table2_path_db;
//!
//! // Table 2's PATH' database: P is a c-table, C a regular table.
//! let (db, _) = table2_path_db();
//! // q2/q3 of the paper: what does it cost to reach 1.2.3.4?
//! let program = parse_program(r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#).unwrap();
//! let out = evaluate(&program, &db).unwrap();
//! // Two conditional answers: 3 if x̄ = [ABC], 4 if x̄ = [ADEC].
//! assert_eq!(out.relation("Cost").unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod containment;
pub mod engine;
pub mod eval;
pub mod parser;
pub mod plan;
pub mod reference;
pub mod update;

pub use analysis::{analyze, check_safety, stratify, AnalysisError, Finding, Stratification};
pub use ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule, RuleAtom};
pub use containment::{subsumes, ContainmentError, Subsumption, GOAL};
pub use engine::{
    evaluate, evaluate_traced, evaluate_with, without_telemetry, Delta, DeltaReport, Engine,
    EvalError, EvalOptions, EvalOutput, MaterializedState, PreparedProgram, PrunePolicy,
};
pub use parser::{
    parse_program, parse_program_spanned, parse_rule, AtomSpans, ParseError, RuleSpans, Span,
    SpannedProgram,
};
pub use plan::{
    compile_rule, compile_rule_hinted, explain_program, explain_program_json, maintenance_meta,
    DeletionStrategy, Hints, JoinStep, MaintenanceMeta, PlanCache, RulePlan,
};
pub use update::{
    apply_to_database, expand_constraint, rewrite_constraint, DeletePattern, Update, UpdateError,
};

/// Parses and evaluates `src` against `db` in one call (default
/// options). Convenience for examples and tests.
pub fn run(
    src: &str,
    db: &faure_ctable::Database,
) -> Result<EvalOutput, Box<dyn std::error::Error>> {
    let program = parse_program(src)?;
    Ok(evaluate(&program, db)?)
}
