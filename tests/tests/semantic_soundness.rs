//! Soundness of the abstract interpreter and the planner-hint channel.
//!
//! `faure_analyze::infer` claims an over-approximation: every value a
//! column can hold in any evaluation lies inside the inferred abstract
//! domain for that column. `faure_analyze::plan_hints` feeds those
//! domains to the planner, which may only use them to *reorder* joins
//! and to cut rule bodies that are provably empty — never to change
//! what is derived. Both contracts are checked here on the shared
//! random corpus (recursive, non-linear-recursive, and negated
//! programs over random c-table databases):
//!
//! 1. **Domain soundness**: in every possible world, every cell of
//!    every instantiated derived tuple is contained in the inferred
//!    per-column domain. (The check is per-world because a row's
//!    condition can exclude part of a c-variable's domain — e.g. a
//!    cell `$v` guarded by `$v != 1` never instantiates to 1, and the
//!    abstract domain is allowed to know that.)
//! 2. **Hint transparency**: evaluation prepared with
//!    [`Engine::prepare_with_hints`] is bit-identical (rows,
//!    conditions raw and canonicalized, row order) to the unhinted
//!    run, and hinted predicates/rules marked empty/infeasible really
//!    derive nothing.

use faure_analyze::{infer, plan_hints, Inference};
use faure_core::eval::canonicalize;
use faure_core::{Engine, EvalOutput, Program};
use faure_ctable::worlds::WorldIter;
use faure_ctable::{Condition, Database, Term};
use faure_tests::corpus::{arb_db, arb_program};
use faure_tests::instantiate_derived;
use proptest::prelude::*;

/// Every derived row of every IDB relation, in stored order, with the
/// condition both raw and canonicalized (so a mismatch distinguishes
/// "different condition" from "same condition, different spelling").
fn derived_rows(
    out: &EvalOutput,
    program: &Program,
) -> Vec<(String, Vec<Term>, Condition, Condition)> {
    let mut rows = Vec::new();
    for pred in program.idb_predicates() {
        for row in out.relation(pred).expect("IDB relation exists").iter() {
            rows.push((
                pred.to_owned(),
                row.terms.clone(),
                row.cond.clone(),
                canonicalize(row.cond.clone()),
            ));
        }
    }
    rows
}

/// Asserts that in every possible world of `db`, every instantiated
/// derived tuple lies cell-wise inside the inferred column domains,
/// and that predicates inferred empty really instantiate to nothing.
fn assert_output_within_domains(
    out: &EvalOutput,
    program: &Program,
    inference: &Inference,
    db: &Database,
) {
    let worlds: Vec<_> = WorldIter::new(db, None)
        .expect("corpus domains are finite")
        .collect();
    for world in &worlds {
        let instantiated = instantiate_derived(out, program, &world.assignment);
        for (pred, tuples) in &instantiated {
            if !tuples.is_empty() {
                prop_assert!(
                    inference.nonempty.contains(pred.as_str()),
                    "{} derived rows in world {:?} but was inferred empty",
                    pred,
                    world.assignment
                );
            }
            let cols = inference
                .columns
                .get(pred)
                .expect("inferred columns exist for every IDB predicate");
            for tuple in tuples {
                prop_assert_eq!(tuple.len(), cols.len(), "arity mismatch for {}", pred);
                for (i, c) in tuple.iter().enumerate() {
                    prop_assert!(
                        cols[i].contains(c),
                        "derived {}[{}] = {:?} escapes inferred domain {} (world {:?})",
                        pred,
                        i,
                        c,
                        cols[i],
                        world.assignment
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every tuple `PreparedProgram::run` derives is contained in the
    /// inferred per-column abstract domains (soundness of `infer`).
    #[test]
    fn inferred_domains_contain_every_derived_tuple(db in arb_db(), program in arb_program()) {
        let inference = infer(&program, Some(&db));
        let out = Engine::new()
            .prepare(&program)
            .expect("prepare succeeds")
            .run(&db)
            .expect("evaluation succeeds");
        assert_output_within_domains(&out, &program, &inference, &db);
    }

    /// Program-only inference (no database) must also over-approximate
    /// any run: with no EDB facts to narrow them, domains may only be
    /// wider, never wrong.
    #[test]
    fn program_only_domains_still_contain_every_tuple(db in arb_db(), program in arb_program()) {
        let inference = infer(&program, None);
        let out = Engine::new()
            .prepare(&program)
            .expect("prepare succeeds")
            .run(&db)
            .expect("evaluation succeeds");
        assert_output_within_domains(&out, &program, &inference, &db);
    }

    /// Planner-hinted evaluation is bit-identical to unhinted
    /// evaluation: same rows, same conditions (raw and canonicalized),
    /// same order. Hints may change join order and cut provably-empty
    /// branches, never results.
    #[test]
    fn hinted_evaluation_is_bit_identical(db in arb_db(), program in arb_program()) {
        let plain = Engine::new()
            .prepare(&program)
            .expect("prepare succeeds")
            .run(&db)
            .expect("evaluation succeeds");
        let hints = plan_hints(&program, Some(&db));
        let hinted = Engine::new()
            .prepare_with_hints(&program, hints)
            .expect("hinted prepare succeeds")
            .run(&db)
            .expect("hinted evaluation succeeds");
        prop_assert_eq!(
            derived_rows(&plain, &program),
            derived_rows(&hinted, &program),
            "hints changed evaluation results"
        );
    }

    /// The hints themselves are sound: a predicate in `empty_preds`
    /// derives no rows, and an infeasible rule contributes nothing
    /// (checked indirectly — dropping it leaves results unchanged).
    #[test]
    fn hint_claims_are_sound(db in arb_db(), program in arb_program()) {
        let hints = plan_hints(&program, Some(&db));
        let out = Engine::new()
            .prepare(&program)
            .expect("prepare succeeds")
            .run(&db)
            .expect("evaluation succeeds");
        for pred in program.idb_predicates() {
            if hints.empty_preds.contains(pred) {
                let rel = out.relation(pred).expect("IDB relation exists");
                prop_assert!(
                    rel.is_empty(),
                    "{} hinted empty but derived {} rows",
                    pred,
                    rel.len()
                );
            }
        }
        if !hints.infeasible_rules.is_empty() {
            let kept: Vec<_> = program
                .rules
                .iter()
                .enumerate()
                .filter(|(i, _)| !hints.infeasible_rules.contains(i))
                .map(|(_, r)| r.clone())
                .collect();
            let trimmed = Program { rules: kept };
            // Dropping every hinted-infeasible rule must not lose tuples
            // in any IDB relation the trimmed program still defines.
            let trimmed_out = Engine::new()
                .prepare(&trimmed)
                .expect("trimmed prepare succeeds")
                .run(&db)
                .expect("trimmed evaluation succeeds");
            let mut full = derived_rows(&out, &trimmed);
            let mut cut = derived_rows(&trimmed_out, &trimmed);
            full.sort();
            cut.sort();
            prop_assert_eq!(full, cut, "an infeasible-hinted rule contributed tuples");
        }
    }
}
