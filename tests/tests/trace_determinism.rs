//! Differential testing of the tracing layer.
//!
//! Tracing is observational: recording the pipeline must never change
//! what the pipeline computes. On the shared random corpus (the same
//! distribution the plan-differential and engine-parallel suites draw
//! from) this pins down two properties:
//!
//! * evaluation results are **bit-identical** with tracing on vs. off
//!   — same tuples, same derived conditions, same order — serially and
//!   in parallel;
//! * the **deterministic aggregated counters** — both the `PhaseStats`
//!   counters and the counter arguments rolled up from the recorded
//!   spans — are identical at 1, 2, and 4 worker threads. Only timings
//!   (and the racy memo hit/miss *split* under the shared parallel
//!   memo) may differ between runs.

use faure_core::eval::canonicalize;
use faure_core::{evaluate_traced, evaluate_with, EvalOptions, EvalOutput, Program};
use faure_ctable::{Condition, Database, Term};
use faure_tests::corpus::{arb_db, arb_program};
use faure_trace::metrics::{rollup_by_arg, rollup_spans};
use faure_trace::{Event, FlightRecorder, Recorder, Tee, TraceSink, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

/// Every derived row of every IDB relation, in stored order, with the
/// condition both raw and canonicalized (to make failures readable).
fn derived_rows(
    out: &EvalOutput,
    program: &Program,
) -> Vec<(String, Vec<Term>, Condition, Condition)> {
    let mut rows = Vec::new();
    for pred in program.idb_predicates() {
        for row in out.relation(pred).expect("IDB relation exists").iter() {
            rows.push((
                pred.to_owned(),
                row.terms.clone(),
                row.cond.clone(),
                canonicalize(row.cond.clone()),
            ));
        }
    }
    rows
}

fn eval_plain(program: &Program, db: &Database, threads: usize) -> EvalOutput {
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    evaluate_with(program, db, &opts).expect("evaluation succeeds")
}

fn eval_traced(program: &Program, db: &Database, threads: usize) -> (EvalOutput, Vec<Event>) {
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    let out = evaluate_traced(program, db, &opts, &tracer).expect("evaluation succeeds");
    (out, recorder.take())
}

/// Evaluation with the CLI's full telemetry path enabled: the span
/// stream teed into a bounded flight ring alongside the recorder
/// (exactly what `faure eval` installs), on top of the engine's
/// always-on registry publication.
fn eval_telemetry(
    program: &Program,
    db: &Database,
    threads: usize,
) -> (EvalOutput, Arc<FlightRecorder>) {
    let opts = EvalOptions {
        threads,
        ..EvalOptions::default()
    };
    let recorder = Arc::new(Recorder::new());
    let flight = Arc::new(FlightRecorder::new(64));
    let tracer = Tracer::new(Arc::new(Tee::new(vec![
        Arc::clone(&recorder) as Arc<dyn TraceSink>,
        Arc::clone(&flight) as Arc<dyn TraceSink>,
    ])));
    let out = evaluate_traced(program, db, &opts, &tracer).expect("evaluation succeeds");
    (out, flight)
}

/// The deterministic counter subset of the evaluation: `PhaseStats`
/// counters that must not depend on thread count or tracing, plus the
/// counter arguments aggregated from the recorded spans. Excludes all
/// timings and the memo hit/miss *split* (racy under the lock-sharded
/// parallel memo — only the total number of memoisable queries is
/// deterministic).
#[derive(Debug, PartialEq, Eq)]
struct CounterFingerprint {
    tuples: usize,
    pruned: usize,
    delta_sizes: Vec<usize>,
    probes: u64,
    rows_matched: u64,
    conds_conjoined: u64,
    cmp_pruned: u64,
    neg_checks: u64,
    sat_calls: u64,
    sat_true: u64,
    simplify_calls: u64,
    memo_total: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    /// Per-rule `(rule, matches, rows_out, cond_size, passes)` from the
    /// `fixpoint`/`rule-pass` span rollup.
    rules: Vec<(u64, u64, u64, u64, u64)>,
    /// Per-iteration delta rows from the `fixpoint`/`iteration` spans.
    iteration_deltas: Vec<u64>,
    /// Summed depth-0 matches and derived rows over all worker-chunk
    /// spans (the chunk *count* legitimately varies with threads).
    chunk_matches: u64,
    chunk_rows_out: u64,
}

fn fingerprint(out: &EvalOutput, events: &[Event]) -> CounterFingerprint {
    let st = &out.stats;
    let rules = rollup_by_arg(events, "fixpoint", "rule-pass", "rule")
        .into_iter()
        .map(|(ri, r)| {
            (
                ri,
                r.sum("matches"),
                r.sum("rows_out"),
                r.sum("cond_size"),
                r.count,
            )
        })
        .collect();
    let iteration_deltas = events
        .iter()
        .filter(|e| e.cat == "fixpoint" && e.name == "iteration")
        .filter_map(|e| e.arg_u64("delta_rows"))
        .collect();
    let chunks = rollup_spans(events)
        .into_iter()
        .find(|r| r.cat == "worker" && r.name == "chunk");
    CounterFingerprint {
        tuples: st.tuples,
        pruned: st.pruned,
        delta_sizes: st.delta_sizes.clone(),
        probes: st.ops.probes,
        rows_matched: st.ops.rows_matched,
        conds_conjoined: st.ops.conds_conjoined,
        cmp_pruned: st.ops.cmp_pruned,
        neg_checks: st.ops.neg_checks,
        sat_calls: st.solver_stats.sat_calls,
        sat_true: st.solver_stats.sat_true,
        simplify_calls: st.solver_stats.simplify_calls,
        memo_total: st.solver_stats.memo_hits + st.solver_stats.memo_misses,
        plan_cache_hits: st.plan_cache_hits,
        plan_cache_misses: st.plan_cache_misses,
        rules,
        iteration_deltas,
        chunk_matches: chunks.as_ref().map(|r| r.sum("matches")).unwrap_or(0),
        chunk_rows_out: chunks.as_ref().map(|r| r.sum("rows_out")).unwrap_or(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tracing never perturbs evaluation: recorded runs are
    /// bit-identical to unrecorded ones, serially and in parallel.
    #[test]
    fn tracing_is_observationally_transparent(db in arb_db(), program in arb_program()) {
        for threads in [1usize, 4] {
            let plain = derived_rows(&eval_plain(&program, &db, threads), &program);
            let (out, _) = eval_traced(&program, &db, threads);
            let traced = derived_rows(&out, &program);
            prop_assert_eq!(
                &plain,
                &traced,
                "threads={}: tracing changed the results\nprogram:\n{}",
                threads,
                &program
            );
        }
    }

    /// The full telemetry path — registry publication plus the flight
    /// ring teed next to the recorder, the exact sink stack `faure
    /// eval` installs — never perturbs evaluation either: results stay
    /// bit-identical to an untraced run, and the ring respects its
    /// bound while actually capturing the span stream.
    #[test]
    fn telemetry_and_flight_recording_are_observationally_transparent(
        db in arb_db(), program in arb_program()
    ) {
        for threads in [1usize, 4] {
            let plain = derived_rows(&eval_plain(&program, &db, threads), &program);
            let (out, flight) = eval_telemetry(&program, &db, threads);
            let teed = derived_rows(&out, &program);
            prop_assert_eq!(
                &plain,
                &teed,
                "threads={}: telemetry changed the results\nprogram:\n{}",
                threads,
                &program
            );
            let kept = flight.snapshot();
            prop_assert!(!kept.is_empty(), "flight ring captured nothing");
            prop_assert!(kept.len() <= 64);
            if flight.dropped() > 0 {
                // Evictions only start once the ring is full.
                prop_assert_eq!(kept.len(), 64, "dropped {} from a non-full ring", flight.dropped());
            }
        }
    }

    /// The deterministic aggregated counters — stats and span rollups —
    /// are identical at every thread count; only timings may differ.
    #[test]
    fn aggregated_counters_are_thread_invariant(db in arb_db(), program in arb_program()) {
        let (out1, ev1) = eval_traced(&program, &db, 1);
        let base = fingerprint(&out1, &ev1);
        // Serial runs take the single-partition path: no chunk spans.
        prop_assert_eq!(base.chunk_matches, 0);
        for threads in [2usize, 4] {
            let (out, ev) = eval_traced(&program, &db, threads);
            let mut fp = fingerprint(&out, &ev);
            // Parallel runs chunk each rule pass; summed over chunks the
            // work must equal the serial totals. Splitting a pass into
            // chunks only happens when there are >= 2 depth-0 matches,
            // so compare against the per-rule totals, then normalise the
            // chunk sums away for the full-structure comparison.
            if fp.chunk_matches > 0 {
                let rule_matches: u64 = fp.rules.iter().map(|r| r.1).sum();
                let rule_rows: u64 = fp.rules.iter().map(|r| r.2).sum();
                prop_assert!(fp.chunk_matches <= rule_matches);
                prop_assert!(fp.chunk_rows_out <= rule_rows);
            }
            fp.chunk_matches = 0;
            fp.chunk_rows_out = 0;
            prop_assert_eq!(
                &base,
                &fp,
                "threads={}: counters diverged\nprogram:\n{}",
                threads,
                &program
            );
        }
    }
}
