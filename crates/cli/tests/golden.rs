//! Golden-file UI tests for `faure check`.
//!
//! Each diagnostic code F0000–F0014 has at least one fixture under
//! `tests/golden/`: a program `f00NN.fl`, an optional database
//! `f00NN.fdb` for the database-aware passes, and the exact rendered
//! analyzer output in `f00NN.expected`. Codes F0009–F0014 (the
//! abstract-interpretation diagnostics) additionally have a
//! `f00NN_neg.*` fixture — a near-miss program that must *not*
//! trigger the code.
//!
//! The comparison is an exact string diff of the rustc-style
//! rendering, so any change to spans, carets, severities, messages,
//! or the summary line shows up here. To regenerate after an
//! intentional rendering change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p faure-cli --test golden
//! ```

use faure_cli::{cmd_lint, cmd_lint_json, load_database};
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Every fixture stem (file name without extension), sorted.
fn fixture_stems() -> Vec<String> {
    let mut stems: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            (path.extension()? == "fl")
                .then(|| path.file_stem().unwrap().to_str().unwrap().to_owned())
        })
        .collect();
    stems.sort();
    stems
}

/// Runs the analyzer on one fixture exactly as `faure check` would,
/// with the file name the renderer embeds pinned to the fixture name
/// (so expected files are stable across checkouts).
fn lint_fixture(stem: &str) -> faure_cli::LintOutcome {
    let dir = golden_dir();
    let source = fs::read_to_string(dir.join(format!("{stem}.fl"))).expect("fixture program");
    let db = match fs::read_to_string(dir.join(format!("{stem}.fdb"))) {
        Ok(text) => Some(load_database(&text).expect("fixture database parses")),
        Err(_) => None,
    };
    cmd_lint(&source, &format!("{stem}.fl"), db.as_ref())
}

#[test]
fn rendered_output_matches_golden_files() {
    let dir = golden_dir();
    let update = std::env::var_os("GOLDEN_UPDATE").is_some();
    let mut failures = Vec::new();
    for stem in fixture_stems() {
        let got = lint_fixture(&stem).rendered;
        let expected_path = dir.join(format!("{stem}.expected"));
        if update {
            fs::write(&expected_path, &got).expect("write expected file");
            continue;
        }
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("{stem}.expected missing — run with GOLDEN_UPDATE=1"));
        if got != expected {
            failures.push(format!(
                "── {stem} ──\n--- expected ---\n{expected}\n--- got ---\n{got}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (GOLDEN_UPDATE=1 regenerates):\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_code_has_a_positive_fixture_that_fires() {
    let stems = fixture_stems();
    for n in 0..=14 {
        let stem = format!("f{n:04}");
        assert!(
            stems.contains(&stem),
            "missing positive fixture {stem}.fl for F{n:04}"
        );
        let rendered = lint_fixture(&stem).rendered;
        let tag = format!("[F{n:04}]");
        assert!(
            rendered.contains(&tag),
            "{stem}.fl does not trigger {tag}:\n{rendered}"
        );
    }
}

#[test]
fn semantic_codes_have_negative_fixtures_that_stay_silent() {
    let stems = fixture_stems();
    for n in 9..=14 {
        let stem = format!("f{n:04}_neg");
        assert!(
            stems.contains(&stem),
            "missing negative fixture {stem}.fl for F{n:04}"
        );
        let outcome = lint_fixture(&stem);
        let tag = format!("[F{n:04}]");
        assert!(
            !outcome.rendered.contains(&tag),
            "{stem}.fl must not trigger {tag}:\n{}",
            outcome.rendered
        );
        assert_eq!(
            (outcome.errors, outcome.warnings),
            (0, 0),
            "{stem}.fl should be completely clean:\n{}",
            outcome.rendered
        );
    }
}

/// `--format json` must carry a byte `span` for every diagnostic —
/// including F0000 syntax errors, whose span comes from the parser
/// rather than the resolved AST (editor integrations rely on it).
#[test]
fn json_output_has_span_for_every_diagnostic() {
    let dir = golden_dir();
    for stem in fixture_stems() {
        let source = fs::read_to_string(dir.join(format!("{stem}.fl"))).expect("fixture program");
        let db = match fs::read_to_string(dir.join(format!("{stem}.fdb"))) {
            Ok(text) => Some(load_database(&text).expect("fixture database parses")),
            Err(_) => None,
        };
        let json = cmd_lint_json(&source, &format!("{stem}.fl"), db.as_ref()).rendered;
        let codes = json.matches("\"code\"").count();
        let spans = json.matches("\"span\"").count();
        assert_eq!(
            codes, spans,
            "{stem}: {codes} diagnostics but {spans} spans in JSON:\n{json}"
        );
        if stem == "f0000" {
            assert!(
                json.contains("\"code\":\"F0000\"") && json.contains("\"span\""),
                "f0000 JSON must carry a span:\n{json}"
            );
        }
    }
}
