//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no network access to a
//! crates registry, so the workspace points the `criterion` dependency
//! at this shim via a path dependency.
//!
//! Instead of criterion's statistical machinery, each benchmark is
//! timed with a short warm-up followed by a fixed measurement window,
//! and the mean per-iteration wall-clock time is printed. Good enough
//! to compare the *relative shape* of the Table 4 style benches; not a
//! rigorous harness.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed run (also catches panics early).
        black_box(f());
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters: u32 = 0;
        while start.elapsed() < window && iters < 10_000 {
            black_box(f());
            iters += 1;
        }
        self.mean = Some(start.elapsed() / iters.max(1));
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<60} time: {mean:>12.2?}/iter"),
        None => println!("{label:<60} (no measurement)"),
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sampling is time-window based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 * 2)));
    }
}
