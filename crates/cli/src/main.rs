//! The `faure` binary — see the crate docs for the file formats.

use faure_cli::{
    cmd_check, cmd_eval_batch, cmd_eval_updates, cmd_explain, cmd_explain_json, cmd_lint,
    cmd_lint_json, cmd_profile, cmd_scenarios, cmd_sql, cmd_subsume, cmd_worlds, load_database,
    parse_prune, parse_shard_key, spawn_telemetry_jsonl, CliError, EngineKnobs, ObsOptions,
};
use faure_core::PrunePolicy;
use faure_trace::{flight, prom, telemetry, FlightRecorder};
use std::sync::Arc;

const USAGE: &str = "\
faure — partial network analysis (HotNets '21 reproduction)

USAGE:
  faure eval <db.fdb>... <program.fl> [--prune never|stratum|iteration|eager] [--relation R]
            [--threads N] [--shards N] [--shard-key pred=col]
            [--trace out.trace.json] [--metrics out.json]
            [--updates stream.fdl] [--flight-recorder out.trace.json]
            [--flight-capacity N] [--telemetry-addr 127.0.0.1:9090]
            [--telemetry-jsonl out.jsonl] [--telemetry-interval-ms MS]
  faure profile <program.fl> <db.fdb> [--threads N] [--shards N]
  faure explain <program.fl> [--format text|json]
  faure check <program.fl> [--domains db.fdb] [--format text|json] [--deny warnings]
  faure check --explain F00xx
  faure check <db.fdb> <constraint.fl>
  faure scenarios <db.fdb> <constraint.fl> [--limit N]
  faure subsume <target.fl> <known.fl>... [--domains db.fdb]
  faure sql <db.fdb> \"SELECT ...\"
  faure worlds <db.fdb> [--limit N]
  faure help

Database files (.fdb) hold `@cvar name in {..}` / `@cvar name open` /
`@schema Name(attr, ...)` directives plus conditional facts like
`F(1, 2) :- $x = 1.`; program files (.fl) hold fauré-log rules.

`eval --threads N` partitions the fixpoint inner loop across N worker
threads; results are bit-identical to a serial run at any thread
count. The `FAURE_THREADS` environment variable sets the default.

`eval --shards N` runs the partitioned fixpoint: each recursive
predicate's delta is sharded on a key column (first bound head column
by default, `--shard-key pred=col` overrides) across N worker shards
that exchange cross-shard rows at iteration barriers. Derived rows and
conditions are identical to a single-space run at any shard count; the
`FAURE_SHARDS` environment variable sets the default. `--shards` and
`--threads` compose (threads parallelize within each shard's pass).

`eval` accepts several databases: the program is prepared (analysed,
stratified, plan-compiled) once and run against each, so the compiled
plans are shared across queries. `--trace` writes the whole pipeline
as Chrome trace_event JSON (load in chrome://tracing or Perfetto);
`--metrics` writes aggregated per-database metrics JSON (schema
`faure_metrics_version: 1`, see DESIGN.md). Tracing never changes
evaluation results.

`eval --updates stream.fdl` (one database only) materializes the
fixpoint once, then applies each update line incrementally: `+R(c, ...)`
inserts a fact, `-R(c, ...)` deletes the exact tuple; `%` comments and
blank lines are skipped. Each line is one delta; the output reports
per-update change counts and wall time, and `--metrics` adds a
per-update `updates` array (`per_update_wall_ns` per entry) to the
metrics document. A live progress line per applied update streams to
stderr (stdout stays clean for piping).

Live telemetry: `--telemetry-addr HOST:PORT` serves the process-global
metric registry as Prometheus text format on `/metrics` (plus
`/healthz`) from a background thread while the evaluation runs;
`--telemetry-jsonl out.jsonl` appends one JSON snapshot line per
`--telemetry-interval-ms` (default 500) and a final line with the
post-run totals. `eval` always records the last spans into an
in-memory flight ring (`--flight-capacity N` events, default 4096); on
panic the ring is dumped as Chrome trace JSON, and
`--flight-recorder out.trace.json` also writes it on normal exit.
Telemetry never changes evaluation results.

`profile` evaluates once with tracing on and prints a text report:
phase breakdown, per-iteration delta sizes, top rules by time, and
the solver memo hit rate and latency quantiles.

`explain` prints the compiled rule plans: the join order chosen by
bound-column selectivity, semi-naive delta slots, pushed-down
comparisons, and trailing negations — per stratum, exactly the plans
the evaluator caches and executes. `--format json` emits the plans as
a JSON array instead.

The one-argument `check` form is the static analyzer: it reports every
diagnostic (stable codes F0000–F0014) with source snippets, and exits
1 only when an error-severity diagnostic is present — or, with
`--deny warnings`, when any diagnostic is present at all (for CI).
`--format json` emits the diagnostics as a JSON array instead. With
`--domains db.fdb` the semantic passes also check the program against
the database's actual contents and c-variable domains. `faure check
--explain F0010` prints the long-form explanation of a code.
";

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Text,
    Json,
}

fn run() -> Result<String, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut prune = PrunePolicy::EndOfStratum;
    let mut relation: Option<String> = None;
    let mut limit = 64usize;
    let mut domains: Option<String> = None;
    let mut format = LintFormat::Text;
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut shard_keys: Vec<(String, usize)> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut updates_path: Option<String> = None;
    let mut flight_path: Option<String> = None;
    let mut flight_capacity: usize = flight::DEFAULT_CAPACITY;
    let mut telemetry_addr: Option<String> = None;
    let mut telemetry_jsonl: Option<String> = None;
    let mut telemetry_interval_ms: u64 = 500;
    let mut deny_warnings = false;
    let mut explain_code: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("warnings") => deny_warnings = true,
                    other => {
                        return Err(CliError(format!("--deny takes `warnings`, got {other:?}")))
                    }
                }
            }
            "--explain" => {
                i += 1;
                explain_code = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| CliError("--explain takes a code like F0010".into()))?,
                );
            }
            "--threads" => {
                i += 1;
                threads = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| CliError("--threads takes a positive integer".into()))?,
                );
            }
            "--shards" => {
                i += 1;
                shards = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| CliError("--shards takes a positive integer".into()))?,
                );
            }
            "--shard-key" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| CliError("--shard-key takes `pred=col`".into()))?;
                shard_keys.push(parse_shard_key(spec)?);
            }
            "--prune" => {
                i += 1;
                prune = parse_prune(args.get(i).map(String::as_str).unwrap_or(""))?;
            }
            "--relation" => {
                i += 1;
                relation = args.get(i).cloned();
            }
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError("--limit takes an integer".into()))?;
            }
            "--domains" => {
                i += 1;
                domains = args.get(i).cloned();
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| CliError("--trace takes an output path".into()))?,
                );
            }
            "--metrics" => {
                i += 1;
                metrics_path = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| CliError("--metrics takes an output path".into()))?,
                );
            }
            "--updates" => {
                i += 1;
                updates_path = Some(
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| CliError("--updates takes an update-stream path".into()))?,
                );
            }
            "--flight-recorder" => {
                i += 1;
                flight_path =
                    Some(args.get(i).cloned().ok_or_else(|| {
                        CliError("--flight-recorder takes an output path".into())
                    })?);
            }
            "--flight-capacity" => {
                i += 1;
                flight_capacity = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError("--flight-capacity takes a positive integer".into()))?;
            }
            "--telemetry-addr" => {
                i += 1;
                telemetry_addr = Some(args.get(i).cloned().ok_or_else(|| {
                    CliError("--telemetry-addr takes a host:port address".into())
                })?);
            }
            "--telemetry-jsonl" => {
                i += 1;
                telemetry_jsonl =
                    Some(args.get(i).cloned().ok_or_else(|| {
                        CliError("--telemetry-jsonl takes an output path".into())
                    })?);
            }
            "--telemetry-interval-ms" => {
                i += 1;
                telemetry_interval_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        CliError("--telemetry-interval-ms takes a positive integer".into())
                    })?;
            }
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => LintFormat::Text,
                    Some("json") => LintFormat::Json,
                    other => {
                        return Err(CliError(format!(
                            "--format takes `text` or `json`, got {other:?}"
                        )))
                    }
                };
            }
            other => positional.push(other),
        }
        i += 1;
    }

    match positional.as_slice() {
        // All-but-last positionals are databases; the program is last.
        ["eval", paths @ ..] if paths.len() >= 2 => {
            let (program, dbs) = paths.split_last().expect("len >= 2");
            let db_texts: Vec<(String, String)> = dbs
                .iter()
                .map(|p| read(p).map(|text| ((*p).to_owned(), text)))
                .collect::<Result<_, _>>()?;
            // The flight ring records the tail of the span stream for
            // every eval run; a panic (or an error exit below) dumps
            // it so the last thing the pipeline did is recoverable
            // post-mortem. Recording into the ring never changes
            // evaluation results.
            let flight = Arc::new(FlightRecorder::new(flight_capacity));
            install_flight_panic_hook(&flight, flight_path.clone());
            let _server = match &telemetry_addr {
                Some(addr) => {
                    let srv = prom::serve(addr, telemetry::global())
                        .map_err(|e| CliError(format!("--telemetry-addr {addr}: {e}")))?;
                    eprintln!("telemetry: serving /metrics on http://{}/", srv.addr);
                    Some(srv)
                }
                None => None,
            };
            let jsonl = match &telemetry_jsonl {
                Some(path) => Some(spawn_telemetry_jsonl(path, telemetry_interval_ms)?),
                None => None,
            };
            let obs = ObsOptions {
                want_trace: trace_path.is_some(),
                want_metrics: metrics_path.is_some(),
                flight: Some(Arc::clone(&flight)),
                progress: updates_path.is_some(),
            };
            let knobs = EngineKnobs {
                threads,
                shards,
                shard_keys: shard_keys.clone(),
            };
            let result = match &updates_path {
                Some(upath) => {
                    let [(db_label, db_text)] = db_texts.as_slice() else {
                        return Err(CliError("--updates takes exactly one database".into()));
                    };
                    cmd_eval_updates(
                        db_label,
                        db_text,
                        program,
                        &read(program)?,
                        upath,
                        &read(upath)?,
                        prune,
                        relation.as_deref(),
                        &knobs,
                        &obs,
                    )
                }
                None => cmd_eval_batch(
                    &db_texts,
                    program,
                    &read(program)?,
                    prune,
                    relation.as_deref(),
                    &knobs,
                    &obs,
                ),
            };
            let report = match result {
                Ok(report) => report,
                Err(e) => {
                    // Error exit: dump the flight ring (best effort —
                    // the original error is the one worth reporting)
                    // and flush a final telemetry snapshot before
                    // propagating.
                    if let Some(path) = &flight_path {
                        match dump_flight(&flight, path) {
                            Ok(()) => eprintln!(
                                "flight recorder: dumped {} events ({} dropped) to {path}",
                                flight.len(),
                                flight.dropped()
                            ),
                            Err(de) => eprintln!("{de}"),
                        }
                    }
                    if let Some(j) = jsonl {
                        let _ = j.finish();
                    }
                    return Err(e);
                }
            };
            // CI hook: force a panic after evaluation so the panic
            // hook's flight dump can be exercised end to end.
            if std::env::var_os("FAURE_FLIGHT_PANIC").is_some() {
                panic!("FAURE_FLIGHT_PANIC set: forced panic to exercise the flight recorder");
            }
            let mut out = report.rendered;
            if let (Some(path), Some(json)) = (&trace_path, &report.trace_json) {
                std::fs::write(path, json).map_err(|e| CliError(format!("{path}: {e}")))?;
                out.push_str(&format!("-- trace written to {path}\n"));
            }
            if let (Some(path), Some(json)) = (&metrics_path, &report.metrics_json) {
                std::fs::write(path, json).map_err(|e| CliError(format!("{path}: {e}")))?;
                out.push_str(&format!("-- metrics written to {path}\n"));
            }
            if let Some(path) = &flight_path {
                dump_flight(&flight, path)?;
                out.push_str(&format!(
                    "-- flight recording ({} events, {} dropped) written to {path}\n",
                    flight.len(),
                    flight.dropped()
                ));
            }
            if let Some(j) = jsonl {
                j.finish()?;
                let path = telemetry_jsonl.as_deref().unwrap_or("");
                out.push_str(&format!("-- telemetry snapshots written to {path}\n"));
            }
            Ok(out)
        }
        ["profile", program, db] => cmd_profile(
            program,
            &read(program)?,
            db,
            &read(db)?,
            &EngineKnobs {
                threads,
                shards,
                shard_keys,
            },
        ),
        ["explain", program] => match format {
            LintFormat::Text => cmd_explain(&read(program)?),
            LintFormat::Json => cmd_explain_json(&read(program)?),
        },
        ["check"] if explain_code.is_some() => {
            let code = explain_code.as_deref().expect("guarded");
            match faure_analyze::explain_code(code) {
                Some(text) => Ok(format!("{text}\n")),
                None => Err(CliError(format!(
                    "unknown diagnostic code `{code}` (valid codes: F0000–F0014)"
                ))),
            }
        }
        ["check", program] => {
            let db = match &domains {
                Some(path) => Some(load_database(&read(path)?)?),
                None => None,
            };
            let source = read(program)?;
            let outcome = match format {
                LintFormat::Text => cmd_lint(&source, program, db.as_ref()),
                LintFormat::Json => cmd_lint_json(&source, program, db.as_ref()),
            };
            if outcome.errors > 0 || (deny_warnings && outcome.warnings > 0) {
                eprint!("{}", outcome.rendered);
                std::process::exit(1);
            }
            Ok(outcome.rendered)
        }
        ["check", db, constraint] => cmd_check(&read(db)?, &read(constraint)?),
        ["scenarios", db, constraint] => cmd_scenarios(&read(db)?, &read(constraint)?, limit),
        ["subsume", target, known @ ..] if !known.is_empty() => {
            let reg = match &domains {
                Some(path) => load_database(&read(path)?)?.cvars,
                None => faure_ctable::CVarRegistry::new(),
            };
            let known_texts: Vec<String> =
                known.iter().map(|k| read(k)).collect::<Result<_, _>>()?;
            cmd_subsume(&read(target)?, &known_texts, &reg)
        }
        ["sql", db, query] => cmd_sql(&read(db)?, query),
        ["worlds", db] => cmd_worlds(&read(db)?, limit),
        ["help"] | [] => Ok(USAGE.to_owned()),
        other => Err(CliError(format!(
            "unrecognised invocation {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Writes the flight ring's contents as Chrome trace JSON, rendering
/// I/O failures as a CLI error naming the path.
fn dump_flight(flight: &FlightRecorder, path: &str) -> Result<(), CliError> {
    std::fs::write(path, flight.to_chrome_json()).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Chains a panic hook that dumps the flight ring after the default
/// hook has printed the panic message. Without `--flight-recorder` the
/// dump lands in the temp directory, so a crashing run always leaves a
/// post-mortem trace behind.
fn install_flight_panic_hook(flight: &Arc<FlightRecorder>, path: Option<String>) {
    let flight = Arc::clone(flight);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        prev(info);
        let path = path.clone().unwrap_or_else(|| {
            std::env::temp_dir()
                .join("faure-flight.trace.json")
                .to_string_lossy()
                .into_owned()
        });
        match std::fs::write(&path, flight.to_chrome_json()) {
            Ok(()) => eprintln!(
                "flight recorder: dumped {} events ({} dropped) to {path}",
                flight.len(),
                flight.dropped()
            ),
            Err(e) => eprintln!("flight recorder: failed to write {path}: {e}"),
        }
    }));
}

fn main() {
    match run() {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
