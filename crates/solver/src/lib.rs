//! # faure-solver — decision procedure for c-table conditions
//!
//! The Fauré paper's practical implementation (§6) invokes **Z3** as
//! its third evaluation phase, "to remove tuples with contradictory
//! conditions". This crate is the repo's Z3 substitute: a sound and
//! complete decision procedure for the condition fragment that fauré
//! actually generates —
//!
//! * boolean combinations (`∧`, `∨`, `¬`) of atoms;
//! * atoms that are (dis)equalities / orderings between **terms**
//!   (constants and c-variables), e.g. `x̄ = [ABC]`, `ȳ ≠ 1.2.3.4`;
//! * atoms that compare **integer linear expressions** over
//!   finite-domain c-variables, e.g. `x̄ + ȳ + z̄ = 1`, `ȳ + z̄ < 2`.
//!
//! ## Architecture
//!
//! A condition is converted to negation normal form ([`nnf`]), then a
//! depth-first search over the `∨`-structure enumerates candidate
//! conjunctions of atoms ([`search`]); each candidate conjunction is
//! decided by a small constraint solver ([`theory`]) that combines a
//! union-find equality engine with finite-domain backtracking search.
//!
//! ## Completeness contract
//!
//! The procedure is complete when:
//!
//! * every c-variable occurring in an **order or linear** atom has a
//!   *finite* domain (link states, ports, subnets — all the paper's
//!   uses); otherwise [`SolverError::OpenDomainArith`] is returned
//!   rather than a wrong answer;
//! * c-variables with an open domain occur only in equality /
//!   disequality atoms — for those, the infinite-domain argument makes
//!   the equality engine complete (a fresh value distinct from all
//!   mentioned constants always exists).
//!
//! ## Entry points
//!
//! * [`satisfiable`] / [`find_model`] — SAT check and model extraction;
//! * [`implies`] / [`equivalent`] — entailment and equivalence;
//! * [`fn@simplify`] — structural simplification plus solver-backed
//!   pruning of unsatisfiable branches (the paper's phase 3);
//! * [`Session`] — a stats-collecting wrapper used by the evaluation
//!   pipeline to report the "Z3 time" column of Table 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod memo;
pub mod nnf;
pub mod search;
pub mod session;
pub mod simplify;
pub mod theory;

pub use error::SolverError;
pub use faure_trace::Histogram;
pub use memo::SharedMemo;
pub use search::{all_models, find_model, satisfiable};
pub use session::{Session, SolverStats};
pub use simplify::simplify;

use faure_ctable::{CVarRegistry, Condition};

/// Does `premise` entail `conclusion` (i.e. is `premise ∧ ¬conclusion`
/// unsatisfiable)?
pub fn implies(
    reg: &CVarRegistry,
    premise: &Condition,
    conclusion: &Condition,
) -> Result<bool, SolverError> {
    let counterexample = premise.clone().and(conclusion.clone().negate());
    Ok(!satisfiable(reg, &counterexample)?)
}

/// Are the two conditions equivalent (mutual implication)?
pub fn equivalent(reg: &CVarRegistry, a: &Condition, b: &Condition) -> Result<bool, SolverError> {
    Ok(implies(reg, a, b)? && implies(reg, b, a)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{CmpOp, Condition, Domain, LinExpr, Term};

    #[test]
    fn implication_basics() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let x_is_1 = Condition::eq(Term::Var(x), Term::int(1));
        let sum_is_2 = Condition::cmp(LinExpr::sum([x, y]), CmpOp::Eq, LinExpr::constant(2));
        // x̄+ȳ=2 (over {0,1}) forces x̄=1.
        assert!(implies(&reg, &sum_is_2, &x_is_1).unwrap());
        assert!(!implies(&reg, &x_is_1, &sum_is_2).unwrap());
    }

    #[test]
    fn equivalence_of_reformulations() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        // Over {0,1}: x̄ ≠ 0 ≡ x̄ = 1.
        let a = Condition::ne(Term::Var(x), Term::int(0));
        let b = Condition::eq(Term::Var(x), Term::int(1));
        assert!(equivalent(&reg, &a, &b).unwrap());
        assert!(!equivalent(&reg, &a, &Condition::True).unwrap());
    }
}
