//! Listing 2 as ready-made fauré-log programs.
//!
//! * q4–q5 — all-pairs reachability as a recursive query;
//! * q6 — reachability under a 2-link failure (`x̄ + ȳ + z̄ = 1`:
//!   exactly one of the three monitored links is up);
//! * q7 — reachability between two given nodes under a 2-link failure
//!   where one of the failed links must be the `ȳ` link;
//! * q8 — reachability to a given node with at least one of `ȳ, z̄`
//!   failed (`ȳ + z̄ < 2`).
//!
//! The failure patterns reference the *monitored* link-state
//! c-variables `$x, $y, $z` — the three protected links of Figure 1,
//! or the three shared bottleneck links of the RIB workload (see
//! [`crate::rib`]).

use faure_core::{parse_program, Program};

/// q4–q5: `R(f,n1,n2)` — all-pairs reachability per flow.
pub fn reachability_program() -> Program {
    parse_program(
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
    )
    .expect("static program text")
}

/// q6: reachability under 2-link failure (exactly one of the three
/// monitored links up). Reads `R`, writes `T1`.
pub fn q6_two_link_failure() -> Program {
    parse_program("T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.\n")
        .expect("static program text")
}

/// q7: reachability between `src` and `dst` under a 2-link failure one
/// of which is the `ȳ` link. Reads `T1` (nested query), writes `T2`.
pub fn q7_pair_under_y_failure(src: i64, dst: i64) -> Program {
    parse_program(&format!(
        "T2(f, {src}, {dst}) :- T1(f, {src}, {dst}), $y = 0.\n"
    ))
    .expect("static program text")
}

/// q8: reachability to `dst` with at least one of the `ȳ`/`z̄` links
/// failed. Reads `R`, writes `T3`.
pub fn q8_reach_with_failure(dst: i64) -> Program {
    parse_program(&format!(
        "T3(f, {dst}, n2) :- R(f, {dst}, n2), $y + $z < 2.\n"
    ))
    .expect("static program text")
}

/// The full Listing 2 pipeline (q4–q8) as one program.
pub fn listing2_program(q7_src: i64, q7_dst: i64, q8_dst: i64) -> Program {
    let mut p = reachability_program();
    p.extend(q6_two_link_failure());
    p.extend(q7_pair_under_y_failure(q7_src, q7_dst));
    p.extend(q8_reach_with_failure(q8_dst));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frr::figure1_database;
    use faure_core::evaluate;
    use faure_ctable::Term;

    #[test]
    fn listing2_runs_on_figure1() {
        let (db, _) = figure1_database();
        // Paper's q7 is between nodes 2 and 5; q8 is "reachability to 1"
        // (we read its R(f,1,n2) as reachability from node 1).
        let out = evaluate(&listing2_program(2, 5, 1), &db).unwrap();
        assert!(out.relation("T1").is_some());
        assert!(out.relation("T2").is_some());
        assert!(out.relation("T3").is_some());
        // Under exactly-one-link-up plus ȳ down, can 2 still reach 5?
        // With ȳ=0: packets at 2 go to 4 then 5 — but q6's pattern
        // requires exactly one of x̄,ȳ,z̄ to be 1, consistent with ȳ=0.
        // So T2 rows must exist and be satisfiable.
        let t2 = out.relation("T2").unwrap();
        assert!(!t2.is_empty());
        for row in t2.iter() {
            assert_eq!(row.terms[1], Term::int(2));
            assert_eq!(row.terms[2], Term::int(5));
            assert!(
                faure_solver::satisfiable(&out.database.cvars, &row.cond).unwrap(),
                "T2 conditions survive the solver phase"
            );
        }
    }

    /// q6 semantics check: T1 rows are exactly R rows whose condition
    /// is consistent with x̄+ȳ+z̄ = 1.
    #[test]
    fn q6_filters_by_failure_pattern() {
        let (db, vars) = figure1_database();
        let mut program = reachability_program();
        program.extend(q6_two_link_failure());
        let out = evaluate(&program, &db).unwrap();
        let t1 = out.relation("T1").unwrap();
        assert!(!t1.is_empty());
        use faure_ctable::{CmpOp, Condition, LinExpr};
        let pattern = Condition::cmp(
            LinExpr::sum([vars.x, vars.y, vars.z]),
            CmpOp::Eq,
            LinExpr::constant(1),
        );
        for row in t1.iter() {
            // Every T1 condition entails the failure pattern.
            assert!(faure_solver::implies(&out.database.cvars, &row.cond, &pattern).unwrap());
        }
        // And the primary-path-only row R(1,1,2)[x̄=1] shows up in T1
        // with the pattern conjoined (satisfiable: x̄=1, ȳ=z̄=0).
        let r12 = t1
            .iter()
            .find(|t| t.terms == vec![Term::int(1), Term::int(1), Term::int(2)]);
        assert!(r12.is_some());
    }
}
