//! Global string interner.
//!
//! Symbolic constants (node names, subnet names, AS numbers rendered as
//! strings, …) occur millions of times in large forwarding states, so
//! they are interned once and afterwards represented by a `u32` index.
//! Interning is global (process-wide) so symbols from different
//! databases compare directly; the table only ever grows, which is the
//! standard leak-free-enough trade-off for interners in analysis tools.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, hash, and compare.
///
/// Ordering of two `Symbol`s follows the *string* contents (not the
/// creation order), so sorted output is stable regardless of interning
/// order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    lookup: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            lookup: HashMap::new(),
        })
    })
}

/// Interns `name`, returning its [`Symbol`].
///
/// Repeated calls with equal strings return equal symbols.
pub fn intern(name: &str) -> Symbol {
    let lock = interner();
    if let Some(&id) = lock.read().expect("interner poisoned").lookup.get(name) {
        return Symbol(id);
    }
    let mut w = lock.write().expect("interner poisoned");
    if let Some(&id) = w.lookup.get(name) {
        return Symbol(id);
    }
    let id = u32::try_from(w.names.len()).expect("interner overflow");
    // Leaking keeps `resolve` allocation-free; the set of distinct
    // symbols in an analysis run is bounded and reused heavily.
    let owned: &'static str = Box::leak(name.to_owned().into_boxed_str());
    w.names.push(owned);
    w.lookup.insert(owned, id);
    Symbol(id)
}

/// Returns the string a [`Symbol`] was interned from.
pub fn resolve(sym: Symbol) -> &'static str {
    interner().read().expect("interner poisoned").names[sym.0 as usize]
}

impl Symbol {
    /// The string this symbol denotes.
    pub fn as_str(self) -> &'static str {
        resolve(self)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("Mkt");
        let b = intern("Mkt");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Mkt");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(intern("CS"), intern("GS"));
    }

    #[test]
    fn ordering_follows_string_order() {
        // Intern in reverse lexicographic order on purpose.
        let z = intern("zzz-order-test");
        let a = intern("aaa-order-test");
        assert!(a < z);
    }

    #[test]
    fn resolve_round_trips() {
        let s = intern("1.2.3.4");
        assert_eq!(resolve(s), "1.2.3.4");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("concurrent-symbol")))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
