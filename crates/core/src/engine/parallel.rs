//! Data-parallel rule evaluation.
//!
//! The depth-0 match list computed by [`super::rule::eval_rule`] is
//! split into `min(threads, matches)` **contiguous, balanced** chunks;
//! each chunk is evaluated on a `std::thread::scope` worker running the
//! identical per-match code ([`super::rule::eval_match`]) over shared
//! immutable state (tables, plan, c-variable registry). Determinism
//! falls out of the partitioning: worker outputs are returned as
//! partitions in chunk order, and concatenating them reproduces the
//! serial enumeration order exactly, so the merged tables — conditions
//! included — are bit-identical to a serial run.
//!
//! Each worker owns its substitution, condition accumulator, operator
//! counters, and solver [`Session`]. The sessions are backed by the
//! run's shared lock-sharded [`faure_solver::SharedMemo`], so a
//! condition decided by one worker is a memo hit for every other (and
//! for later fixpoint iterations). Sharing the memo is sound under
//! races because it caches ground truth: satisfiability of a condition
//! is a deterministic function of the condition given the (append-only)
//! c-variable registry.

use super::rule::eval_match;
use super::{Ctx, EvalError, EvalOptions};
use crate::ast::Rule;
use crate::plan::RulePlan;
use faure_ctable::{Condition, Term};
use faure_solver::{Session, SolverStats};
use faure_storage::{CondAcc, OpStats, PreparedRow, Table};
use faure_trace::Event;
use std::collections::HashMap;
use std::sync::Arc;

/// Splits `len` items into `chunks` contiguous ranges whose sizes
/// differ by at most one (the first `len % chunks` ranges get the extra
/// item).
fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let base = len / chunks;
    let rem = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Evaluates the depth-0 matches of one rule pass across worker
/// threads, returning the derived rows as one partition per chunk (in
/// chunk order). Worker statistics are folded into the caller's
/// counters; the first worker error (in chunk order) is propagated
/// after all workers have joined.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_partitioned(
    ctx: &Ctx<'_>,
    rule: &Rule,
    plan: &RulePlan,
    tables: &HashMap<String, Table>,
    delta_table: Option<&Table>,
    base_acc: &CondAcc,
    matches: &[(usize, Condition)],
    opts: &EvalOptions,
    session: &mut Session,
    ops: &mut OpStats,
) -> Result<Vec<Vec<PreparedRow>>, EvalError> {
    let memo = ctx
        .shared_memo
        .as_ref()
        .expect("parallel evaluation runs with a shared solver memo");
    let bounds = chunk_bounds(matches.len(), opts.threads.min(matches.len()));

    type WorkerResult = Result<(Vec<PreparedRow>, OpStats, SolverStats, Vec<Event>), EvalError>;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .enumerate()
            .map(|(chunk_idx, &(lo, hi))| {
                let chunk = &matches[lo..hi];
                let memo = Arc::clone(memo);
                scope.spawn(move || -> WorkerResult {
                    let mut worker_session = Session::with_shared(memo);
                    let mut worker_ops = OpStats::default();
                    let mut theta: HashMap<&str, Term> = HashMap::new();
                    let mut acc = base_acc.clone();
                    let mut out = Vec::new();
                    let t_chunk = ctx.tracer.now_ns();
                    for (row_idx, mu) in chunk {
                        eval_match(
                            ctx,
                            rule,
                            plan,
                            tables,
                            delta_table,
                            *row_idx,
                            mu,
                            &mut theta,
                            &mut acc,
                            &mut worker_session,
                            opts,
                            &mut worker_ops,
                            &mut out,
                        )?;
                    }
                    // Workers never write to the sink directly: the
                    // span is buffered here and submitted by the driver
                    // in chunk order, keeping the event stream
                    // deterministic. The track is the chunk index, not
                    // an OS thread id, for the same reason.
                    let mut events = Vec::new();
                    if ctx.tracer.is_enabled() {
                        let t_end = ctx.tracer.now_ns();
                        events.push(Event {
                            cat: "worker",
                            name: "chunk",
                            start_ns: t_chunk,
                            dur_ns: t_end.saturating_sub(t_chunk),
                            track: chunk_idx as u32 + 1,
                            args: vec![
                                ("chunk", chunk_idx.into()),
                                ("matches", chunk.len().into()),
                                ("rows_out", out.len().into()),
                            ],
                        });
                    }
                    Ok((out, worker_ops, worker_session.stats(), events))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rule evaluation worker panicked"))
            .collect()
    });

    let mut partitions = Vec::with_capacity(results.len());
    let mut trace_events = Vec::new();
    for result in results {
        let (rows, worker_ops, worker_stats, mut events) = result?;
        ops.absorb(&worker_ops);
        session.absorb_stats(&worker_stats);
        trace_events.append(&mut events);
        partitions.push(rows);
    }
    ctx.tracer.submit(trace_events);
    Ok(partitions)
}

#[cfg(test)]
mod tests {
    use super::chunk_bounds;

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        for (len, chunks) in [(10, 4), (7, 7), (5, 2), (3, 3), (100, 16)] {
            let bounds = chunk_bounds(len, chunks);
            assert_eq!(bounds.len(), chunks);
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds.last().unwrap().1, len);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }
}
