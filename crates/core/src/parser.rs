//! Textual syntax for fauré-log.
//!
//! The paper writes rules with overbars for c-variables; this parser
//! uses an ASCII rendering:
//!
//! ```text
//! % reachability as recursive query (Listing 2, q4–q5)
//! R(f, n1, n2) :- F(f, n1, n2).
//! R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).
//!
//! % failure patterns: comparisons over c-variables
//! T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.
//! T2(f, 2, 5)   :- T1(f, 2, 5), $y = 0.
//!
//! % constraints as 0-ary panic queries (Listing 3, q9)
//! panic :- R(Mkt, CS, $p), !Fw(Mkt, CS).
//! ```
//!
//! Lexical rules:
//!
//! * **rule variables** are identifiers starting with a lowercase
//!   letter (`f`, `n1`);
//! * **c-variables** are `$name` (the paper's `x̄` is written `$x`);
//! * **constants** are: identifiers starting with an uppercase letter
//!   (`Mkt`, `CS`), integers (`7000`), quoted strings (`"1.2.3.4"`,
//!   `"R&D"`), and bracketed lists (`[A, B, C]`);
//! * negation is `!` (or the keyword `not`) before an atom;
//! * comparisons use `=`, `!=`, `<`, `<=`, `>`, `>=`; sides may be
//!   linear sums of c-variables with integer coefficients
//!   (`2*$x + $y + 1`);
//! * `%` starts a line comment; rules end with `.`.

use crate::ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule, RuleAtom};
use faure_ctable::{CmpOp, Const};
use std::fmt;

/// Parse errors with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source.
    pub pos: usize,
    /// Line number (1-based).
    pub line: usize,
    /// Column number (1-based, in bytes from the start of the line).
    pub col: usize,
    /// Problem description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

/// A half-open byte range `[start, end)` into the parsed source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Source spans for one atom: the whole atom plus each argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpans {
    /// The atom (for a negated literal: including the `!`/`not`).
    pub atom: Span,
    /// One span per argument, in argument order.
    pub args: Vec<Span>,
}

/// Source spans for one rule, parallel to the [`Rule`] AST: the span
/// vectors index-match `Rule::body` and `Rule::comparisons`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpans {
    /// The whole rule, including the final `.`.
    pub rule: Span,
    /// The head atom.
    pub head: AtomSpans,
    /// One entry per body literal.
    pub body: Vec<AtomSpans>,
    /// One entry per comparison.
    pub comparisons: Vec<Span>,
}

/// A parsed program together with the source spans of its rules
/// (`spans[i]` describes `program.rules[i]`).
///
/// Spans live in a side table rather than in the AST so that rules
/// keep structural equality regardless of where they were parsed from
/// (display → parse round-trips, programs built in code, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedProgram {
    /// The program.
    pub program: Program,
    /// Per-rule spans, index-matching `program.rules`.
    pub spans: Vec<RuleSpans>,
}

/// Parses a fauré-log program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Ok(parse_program_spanned(src)?.program)
}

/// Parses a fauré-log program, keeping the source span of every rule,
/// atom, and argument for diagnostics.
pub fn parse_program_spanned(src: &str) -> Result<SpannedProgram, ParseError> {
    let mut p = Parser::new(src);
    let mut program = Program::new();
    let mut spans = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        let (rule, rule_spans) = p.rule()?;
        program.rules.push(rule);
        spans.push(rule_spans);
    }
    Ok(SpannedProgram { program, spans })
}

/// Parses a single rule (must consume the whole input).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src);
    let (r, _) = p.rule()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(r)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let before = &self.src[..self.pos];
        let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = self.pos - before.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        ParseError {
            pos: self.pos,
            line,
            col,
            msg: msg.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'%') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                self.pos += 1;
            }
            _ => return Err(self.err("expected identifier")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(&self.src[start..self.pos])
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == digits_start {
            self.pos = start;
            return Err(self.err("expected integer"));
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|e| self.err(format!("bad integer: {e}")))
    }

    fn quoted_string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other as char);
                    }
                    None => return Err(self.err("unterminated string")),
                },
                Some(b) => out.push(b as char),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// A constant: uppercase identifier, integer, string, or list.
    fn constant(&mut self) -> Result<Const, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Const::sym(&self.quoted_string()?)),
            Some(b'[') => {
                self.expect("[")?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() != Some(b']') {
                    loop {
                        items.push(self.constant()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect("]")?;
                Ok(Const::list(items))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' => Ok(Const::Int(self.integer()?)),
            Some(b) if b.is_ascii_uppercase() => Ok(Const::sym(self.ident()?)),
            _ => Err(self.err("expected constant")),
        }
    }

    /// An atom argument.
    fn arg(&mut self) -> Result<ArgTerm, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'$') => {
                self.pos += 1;
                Ok(ArgTerm::CVar(self.ident()?.to_owned()))
            }
            Some(b) if b.is_ascii_lowercase() || b == b'_' => {
                Ok(ArgTerm::Var(self.ident()?.to_owned()))
            }
            _ => Ok(ArgTerm::Cst(self.constant()?)),
        }
    }

    /// Parses the argument list of an atom whose name (starting at
    /// byte `start`) has already been consumed.
    fn atom_with_name(
        &mut self,
        pred: String,
        start: usize,
    ) -> Result<(RuleAtom, AtomSpans), ParseError> {
        let mut args = Vec::new();
        let mut arg_spans = Vec::new();
        if self.eat("(") {
            self.skip_ws();
            if self.peek() != Some(b')') {
                loop {
                    self.skip_ws();
                    let arg_start = self.pos;
                    args.push(self.arg()?);
                    arg_spans.push(Span::new(arg_start, self.pos));
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect(")")?;
        }
        let spans = AtomSpans {
            atom: Span::new(start, self.pos),
            args: arg_spans,
        };
        Ok((RuleAtom { pred, args }, spans))
    }

    /// One addend of a linear expression: `int`, `$cvar`, or `int*$cvar`.
    fn lin_addend(&mut self) -> Result<(i64, Option<String>), ParseError> {
        self.skip_ws();
        if self.peek() == Some(b'$') {
            self.pos += 1;
            return Ok((1, Some(self.ident()?.to_owned())));
        }
        let coef = self.integer()?;
        if self.eat("*") {
            self.skip_ws();
            if self.peek() == Some(b'$') {
                self.pos += 1;
                return Ok((coef, Some(self.ident()?.to_owned())));
            }
            return Err(self.err("expected `$cvar` after `*`"));
        }
        Ok((coef, None))
    }

    /// One side of a comparison. Returns a `CompExpr`.
    fn comp_expr(&mut self) -> Result<CompExpr, ParseError> {
        self.skip_ws();
        // Linear expression: starts with $cvar or integer, possibly
        // followed by `+` chains or `*`.
        let looks_linear = {
            match self.peek() {
                Some(b'$') => true,
                Some(b) if b.is_ascii_digit() || b == b'-' => true,
                _ => false,
            }
        };
        if looks_linear {
            let save = self.pos;
            let (coef, var) = self.lin_addend()?;
            let mut terms = Vec::new();
            let mut constant = 0i64;
            match var {
                Some(v) => terms.push((coef, v)),
                None => constant += coef,
            }
            let mut saw_plus = false;
            while self.eat("+") {
                saw_plus = true;
                let (c, v) = self.lin_addend()?;
                match v {
                    Some(v) => terms.push((c, v)),
                    None => constant += c,
                }
            }
            if terms.is_empty() && !saw_plus {
                // A bare integer: plain constant argument.
                self.pos = save;
                return Ok(CompExpr::Arg(ArgTerm::Cst(self.constant()?)));
            }
            if terms.len() == 1 && constant == 0 && terms[0].0 == 1 && !saw_plus {
                // A bare `$x`: keep it a term so symbolic comparison works.
                return Ok(CompExpr::Arg(ArgTerm::CVar(terms.pop_for_name())));
            }
            return Ok(CompExpr::Lin { terms, constant });
        }
        Ok(CompExpr::Arg(self.arg()?))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        self.skip_ws();
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Ok(op);
            }
        }
        Err(self.err("expected comparison operator"))
    }

    /// Does a comparison operator come next (after optional whitespace)?
    fn peeks_cmp_op(&self) -> bool {
        let rest = self.src[self.pos..].trim_start();
        rest.starts_with("!=")
            || rest.starts_with("<")
            || rest.starts_with(">")
            || (rest.starts_with("=") && !rest.starts_with("=="))
    }

    /// A body item: negated atom, atom, or comparison.
    fn body_item(&mut self) -> Result<BodyItem, ParseError> {
        self.skip_ws();
        let start = self.pos;
        // Negation: `!Atom` (but not `!=`) or `not Atom`.
        if self.peek() == Some(b'!') && self.bytes.get(self.pos + 1) != Some(&b'=') {
            self.pos += 1;
            let name = self.ident()?.to_owned();
            let (atom, spans) = self.atom_with_name(name, start)?;
            return Ok(BodyItem::Lit(Literal::Neg(atom), spans));
        }
        let save = self.pos;
        // `not Atom` keyword form.
        if let Ok(id) = self.ident() {
            if id == "not" {
                let name = self.ident()?.to_owned();
                let (atom, spans) = self.atom_with_name(name, start)?;
                return Ok(BodyItem::Lit(Literal::Neg(atom), spans));
            }
            // An identifier: atom if followed by `(`; if followed by a
            // comparison operator it is a variable/constant comparison;
            // otherwise a 0-ary atom.
            self.skip_ws();
            if self.peek() == Some(b'(') {
                let (atom, spans) = self.atom_with_name(id.to_owned(), start)?;
                return Ok(BodyItem::Lit(Literal::Pos(atom), spans));
            }
            if self.peeks_cmp_op() {
                let lhs = if id
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_lowercase() || c == '_')
                    .unwrap_or(false)
                {
                    CompExpr::Arg(ArgTerm::Var(id.to_owned()))
                } else {
                    CompExpr::Arg(ArgTerm::Cst(Const::sym(id)))
                };
                let op = self.cmp_op()?;
                let rhs = self.comp_expr()?;
                let span = Span::new(start, self.pos);
                return Ok(BodyItem::Cmp(Comparison { lhs, op, rhs }, span));
            }
            let spans = AtomSpans {
                atom: Span::new(start, self.pos),
                args: Vec::new(),
            };
            return Ok(BodyItem::Lit(
                Literal::Pos(RuleAtom {
                    pred: id.to_owned(),
                    args: Vec::new(),
                }),
                spans,
            ));
        }
        self.pos = save;
        // Otherwise: comparison starting with a non-identifier
        // ($cvar, integer, string, list).
        let lhs = self.comp_expr()?;
        let op = self.cmp_op()?;
        let rhs = self.comp_expr()?;
        let span = Span::new(start, self.pos);
        Ok(BodyItem::Cmp(Comparison { lhs, op, rhs }, span))
    }

    fn rule(&mut self) -> Result<(Rule, RuleSpans), ParseError> {
        self.skip_ws();
        let rule_start = self.pos;
        let name = self.ident()?.to_owned();
        let (head, head_spans) = self.atom_with_name(name, rule_start)?;
        let mut body = Vec::new();
        let mut body_spans = Vec::new();
        let mut comparisons = Vec::new();
        let mut comparison_spans = Vec::new();
        if self.eat(":-") {
            loop {
                match self.body_item()? {
                    BodyItem::Lit(l, s) => {
                        body.push(l);
                        body_spans.push(s);
                    }
                    BodyItem::Cmp(c, s) => {
                        comparisons.push(c);
                        comparison_spans.push(s);
                    }
                }
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(".")?;
        let spans = RuleSpans {
            rule: Span::new(rule_start, self.pos),
            head: head_spans,
            body: body_spans,
            comparisons: comparison_spans,
        };
        Ok((
            Rule {
                head,
                body,
                comparisons,
            },
            spans,
        ))
    }
}

enum BodyItem {
    Lit(Literal, AtomSpans),
    Cmp(Comparison, Span),
}

/// Tiny helper: pops the single `(coef, name)` and returns the name.
trait PopForName {
    fn pop_for_name(&mut self) -> String;
}

impl PopForName for Vec<(i64, String)> {
    fn pop_for_name(&mut self) -> String {
        self.pop().expect("exactly one term").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::CmpOp;

    #[test]
    fn parses_listing2_q4_q5() {
        let p = parse_program(
            "% reachability\n\
             R(f, n1, n2) :- F(f, n1, n2).\n\
             R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(
            p.rules[1].to_string(),
            "R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2)."
        );
    }

    #[test]
    fn parses_failure_pattern_q6() {
        let p = parse_rule("T1(f, n1, n2) :- R(f, n1, n2), $x + $y + $z = 1.").unwrap();
        assert_eq!(p.comparisons.len(), 1);
        match &p.comparisons[0].lhs {
            CompExpr::Lin { terms, constant } => {
                assert_eq!(terms.len(), 3);
                assert_eq!(*constant, 0);
            }
            other => panic!("expected Lin, got {other:?}"),
        }
        assert_eq!(p.comparisons[0].op, CmpOp::Eq);
    }

    #[test]
    fn parses_negation_and_panic() {
        let p = parse_rule("panic :- R(Mkt, CS, $p), !Fw(Mkt, CS).").unwrap();
        assert_eq!(p.head.pred, "panic");
        assert!(p.head.args.is_empty());
        assert_eq!(p.body.len(), 2);
        assert!(p.body[1].is_negative());
        assert_eq!(p.body[0].atom().args[2], ArgTerm::CVar("p".into()));
        assert_eq!(p.body[0].atom().args[0], ArgTerm::Cst(Const::sym("Mkt")));
    }

    #[test]
    fn parses_not_keyword() {
        let p = parse_rule("panic :- R(a, b), not Lb(a, b).").unwrap();
        assert!(p.body[1].is_negative());
    }

    #[test]
    fn parses_quoted_and_list_constants() {
        let p = parse_rule(r#"P("1.2.3.4", [A, B, C]) :- Q("R&D")."#).unwrap();
        assert_eq!(p.head.args[0], ArgTerm::Cst(Const::sym("1.2.3.4")));
        assert_eq!(p.head.args[1], ArgTerm::Cst(Const::path(&["A", "B", "C"])));
        assert_eq!(p.body[0].atom().args[0], ArgTerm::Cst(Const::sym("R&D")));
    }

    #[test]
    fn parses_facts() {
        let p = parse_program("Lb(\"R&D\", GS).\nF(1, 2).\n").unwrap();
        assert!(p.rules.iter().all(Rule::is_fact));
        assert_eq!(p.rules[1].head.args[0], ArgTerm::Cst(Const::Int(1)));
    }

    #[test]
    fn parses_cvar_comparisons() {
        let p = parse_rule("T2(f) :- T1(f), $y = 0.").unwrap();
        assert_eq!(p.comparisons.len(), 1);
        assert_eq!(
            p.comparisons[0].lhs,
            CompExpr::Arg(ArgTerm::CVar("y".into()))
        );
        let q = parse_rule("V($x) :- R($x), $x != Mkt, $x != 7000.").unwrap();
        assert_eq!(q.comparisons.len(), 2);
        assert_eq!(q.comparisons[1].op, CmpOp::Ne);
    }

    #[test]
    fn parses_var_comparison() {
        let p = parse_rule("S(x) :- R(x, y), y != 3.").unwrap();
        assert_eq!(p.comparisons.len(), 1);
        assert_eq!(
            p.comparisons[0].lhs,
            CompExpr::Arg(ArgTerm::Var("y".into()))
        );
    }

    #[test]
    fn parses_coefficients() {
        let p = parse_rule("T(f) :- R(f), 2*$x + $y + 1 < 4.").unwrap();
        match &p.comparisons[0].lhs {
            CompExpr::Lin { terms, constant } => {
                assert_eq!(terms, &vec![(2, "x".to_string()), (1, "y".to_string())]);
                assert_eq!(*constant, 1);
            }
            other => panic!("expected Lin, got {other:?}"),
        }
    }

    #[test]
    fn comparison_rhs_integer() {
        let p = parse_rule("T(f) :- R(f), $y + $z < 2.").unwrap();
        assert_eq!(
            p.comparisons[0].rhs,
            CompExpr::Arg(ArgTerm::Cst(Const::Int(2)))
        );
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("R(a) :- F(a).\nbad rule here\n").unwrap_err();
        assert_eq!(err.line, 2);
        // `bad rule here` parses as `bad`, then `rule` with a missing
        // `.` before it: the error points at column 5 of line 2.
        assert_eq!(err.col, 5);
        assert!(err.to_string().contains("line 2, column 5"));
    }

    #[test]
    fn error_reports_column_on_first_line() {
        let err = parse_program("R(a) :- F(a)?").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 13);
    }

    #[test]
    fn spanned_parse_tracks_rules_atoms_and_args() {
        let src = "% comment\nR(a, b) :- F(a, b), !Lb(a), $x = 1.\n";
        let sp = parse_program_spanned(src).unwrap();
        assert_eq!(sp.program.rules.len(), 1);
        assert_eq!(sp.spans.len(), 1);
        let rs = &sp.spans[0];
        // The rule span covers the full rule text including the dot.
        assert_eq!(
            &src[rs.rule.start..rs.rule.end],
            "R(a, b) :- F(a, b), !Lb(a), $x = 1."
        );
        // Head and argument spans point at the exact tokens.
        assert_eq!(&src[rs.head.atom.start..rs.head.atom.end], "R(a, b)");
        assert_eq!(&src[rs.head.args[0].start..rs.head.args[0].end], "a");
        assert_eq!(&src[rs.head.args[1].start..rs.head.args[1].end], "b");
        // Body literal spans index-match `Rule::body`, including the
        // negation marker.
        assert_eq!(rs.body.len(), 2);
        assert_eq!(&src[rs.body[0].atom.start..rs.body[0].atom.end], "F(a, b)");
        assert_eq!(&src[rs.body[1].atom.start..rs.body[1].atom.end], "!Lb(a)");
        // Comparison spans index-match `Rule::comparisons`.
        assert_eq!(rs.comparisons.len(), 1);
        assert_eq!(
            &src[rs.comparisons[0].start..rs.comparisons[0].end],
            "$x = 1"
        );
    }

    #[test]
    fn spanned_parse_covers_multiple_rules() {
        let src = "A(x) :- B(x).\nB(1).\n";
        let sp = parse_program_spanned(src).unwrap();
        assert_eq!(sp.spans.len(), 2);
        assert_eq!(
            &src[sp.spans[0].rule.start..sp.spans[0].rule.end],
            "A(x) :- B(x)."
        );
        assert_eq!(&src[sp.spans[1].rule.start..sp.spans[1].rule.end], "B(1).");
    }

    #[test]
    fn error_on_missing_period() {
        assert!(parse_rule("R(a) :- F(a)").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "T1(f, n1, n2) :- R(f, n1, n2), !Fw(n1, n2), $x + $y = 1, n1 != 3.";
        let r = parse_rule(src).unwrap();
        let printed = r.to_string();
        let r2 = parse_rule(&printed).unwrap();
        assert_eq!(r, r2);
    }
}
