//! Abstract syntax of fauré-log programs.
//!
//! A fauré-log rule (paper equation 3) has the form
//!
//! ```text
//! H(u)[⋀φᵢ ∧ ⋀Cᵢ] :- B₁(u₁)[φ₁], …, Bₙ(uₙ)[φₙ], C₁, …, Cₘ.
//! ```
//!
//! where the `uᵢ` are free tuples over rule **variables** plus symbols
//! of the c-domain (constants *and c-variables*), and the `Cᵢ` are
//! explicit comparisons. The condition manipulation (`[φ]` brackets) is
//! implicit in the engine: body-row conditions and match conditions are
//! conjoined automatically, so the AST carries only the data the
//! programmer writes — atoms and comparisons.
//!
//! Negated body atoms mean *not derivable from the c-table* (§3); they
//! are restricted to stratified use.

use faure_ctable::{CmpOp, Const};
use std::collections::BTreeSet;
use std::fmt;

/// An argument position in an atom: rule variable, c-variable (by
/// name), or constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArgTerm {
    /// A rule (datalog) variable, e.g. `f`, `n1`.
    Var(String),
    /// A c-variable reference, e.g. `$x` (the paper's `x̄`).
    CVar(String),
    /// A constant.
    Cst(Const),
}

impl ArgTerm {
    /// The variable name if this is a rule variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            ArgTerm::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for ArgTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgTerm::Var(v) => write!(f, "{v}"),
            ArgTerm::CVar(c) => write!(f, "${c}"),
            ArgTerm::Cst(c) => match c {
                Const::Sym(s) => {
                    let text = s.as_str();
                    let simple = text
                        .chars()
                        .next()
                        .map(|ch| ch.is_ascii_uppercase())
                        .unwrap_or(false)
                        && text
                            .chars()
                            .all(|ch| ch.is_ascii_alphanumeric() || ch == '_');
                    if simple {
                        write!(f, "{text}")
                    } else {
                        write!(f, "{text:?}")
                    }
                }
                other => write!(f, "{other}"),
            },
        }
    }
}

/// A predicate atom `Pred(arg, …)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RuleAtom {
    /// Predicate (relation) name.
    pub pred: String,
    /// Arguments; empty for 0-ary predicates like `panic`.
    pub args: Vec<ArgTerm>,
}

impl RuleAtom {
    /// Builds an atom.
    pub fn new(pred: impl Into<String>, args: Vec<ArgTerm>) -> Self {
        RuleAtom {
            pred: pred.into(),
            args,
        }
    }

    /// The rule variables occurring in the atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(ArgTerm::as_var)
    }
}

impl fmt::Display for RuleAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            return write!(f, "{}", self.pred);
        }
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// A body literal: positive or negated atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// Ordinary atom.
    Pos(RuleAtom),
    /// Negated atom — *not derivable from the c-table*.
    Neg(RuleAtom),
}

impl Literal {
    /// The underlying atom.
    pub fn atom(&self) -> &RuleAtom {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a,
        }
    }

    /// Whether the literal is negated.
    pub fn is_negative(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "!{a}"),
        }
    }
}

/// One side of an explicit comparison.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CompExpr {
    /// A single argument term (variable, c-variable, or constant).
    Arg(ArgTerm),
    /// An integer linear expression over **c-variables**:
    /// `Σ coefᵢ·$vᵢ + constant` (e.g. `$x + $y + $z`).
    Lin {
        /// Coefficient / c-variable-name pairs.
        terms: Vec<(i64, String)>,
        /// Additive constant.
        constant: i64,
    },
}

impl fmt::Display for CompExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompExpr::Arg(a) => write!(f, "{a}"),
            CompExpr::Lin { terms, constant } => {
                let mut first = true;
                for (coef, name) in terms {
                    if !first {
                        f.write_str(" + ")?;
                    }
                    if *coef == 1 {
                        write!(f, "${name}")?;
                    } else {
                        write!(f, "{coef}*${name}")?;
                    }
                    first = false;
                }
                if *constant != 0 || first {
                    if !first {
                        f.write_str(" + ")?;
                    }
                    write!(f, "{constant}")?;
                }
                Ok(())
            }
        }
    }
}

/// An explicit comparison `lhs op rhs` in a rule body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Comparison {
    /// Left side.
    pub lhs: CompExpr,
    /// Operator.
    pub op: CmpOp,
    /// Right side.
    pub rhs: CompExpr,
}

impl Comparison {
    /// Rule variables referenced by the comparison.
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for side in [&self.lhs, &self.rhs] {
            if let CompExpr::Arg(ArgTerm::Var(v)) = side {
                out.insert(v.as_str());
            }
        }
        out
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A fauré-log rule. Facts are rules with an empty body and no
/// comparisons (the head must then be ground up to c-variables).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: RuleAtom,
    /// Body literals.
    pub body: Vec<Literal>,
    /// Explicit comparisons.
    pub comparisons: Vec<Comparison>,
}

impl Rule {
    /// A fact (empty body).
    pub fn fact(head: RuleAtom) -> Self {
        Rule {
            head,
            body: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// Whether this rule is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.comparisons.is_empty()
    }

    /// All rule variables of the rule (head + body + comparisons).
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut out: BTreeSet<&str> = self.head.variables().collect();
        for lit in &self.body {
            out.extend(lit.atom().variables());
        }
        for c in &self.comparisons {
            out.extend(c.variables());
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() || !self.comparisons.is_empty() {
            f.write_str(" :- ")?;
            let mut first = true;
            for lit in &self.body {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{lit}")?;
                first = false;
            }
            for c in &self.comparisons {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
                first = false;
            }
        }
        f.write_str(".")
    }
}

/// A fauré-log program: an ordered collection of rules.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicates defined by some rule head (the IDB).
    pub fn idb_predicates(&self) -> BTreeSet<&str> {
        self.rules.iter().map(|r| r.head.pred.as_str()).collect()
    }

    /// Predicates referenced in bodies but never defined (the EDB).
    pub fn edb_predicates(&self) -> BTreeSet<&str> {
        let idb = self.idb_predicates();
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for lit in &r.body {
                let p = lit.atom().pred.as_str();
                if !idb.contains(p) {
                    out.insert(p);
                }
            }
        }
        out
    }

    /// All c-variable names mentioned anywhere in the program.
    pub fn cvar_names(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for atom in std::iter::once(&r.head).chain(r.body.iter().map(Literal::atom)) {
                for a in &atom.args {
                    if let ArgTerm::CVar(name) = a {
                        out.insert(name.as_str());
                    }
                }
            }
            for c in &r.comparisons {
                for side in [&c.lhs, &c.rhs] {
                    match side {
                        CompExpr::Arg(ArgTerm::CVar(name)) => {
                            out.insert(name.as_str());
                        }
                        CompExpr::Lin { terms, .. } => {
                            out.extend(terms.iter().map(|(_, n)| n.as_str()));
                        }
                        _ => {}
                    }
                }
            }
        }
        out
    }

    /// Appends all rules of `other`.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, args: Vec<ArgTerm>) -> RuleAtom {
        RuleAtom::new(pred, args)
    }

    #[test]
    fn display_round_trip_shape() {
        let r = Rule {
            head: atom(
                "R",
                vec![
                    ArgTerm::Var("f".into()),
                    ArgTerm::Var("n1".into()),
                    ArgTerm::Var("n2".into()),
                ],
            ),
            body: vec![
                Literal::Pos(atom(
                    "F",
                    vec![
                        ArgTerm::Var("f".into()),
                        ArgTerm::Var("n1".into()),
                        ArgTerm::Var("n3".into()),
                    ],
                )),
                Literal::Pos(atom(
                    "R",
                    vec![
                        ArgTerm::Var("f".into()),
                        ArgTerm::Var("n3".into()),
                        ArgTerm::Var("n2".into()),
                    ],
                )),
            ],
            comparisons: vec![],
        };
        assert_eq!(r.to_string(), "R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).");
    }

    #[test]
    fn program_edb_idb_split() {
        let mut p = Program::new();
        p.rules.push(Rule {
            head: atom("R", vec![ArgTerm::Var("a".into())]),
            body: vec![Literal::Pos(atom("F", vec![ArgTerm::Var("a".into())]))],
            comparisons: vec![],
        });
        assert_eq!(
            p.idb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["R"]
        );
        assert_eq!(
            p.edb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["F"]
        );
    }

    #[test]
    fn cvar_names_found_everywhere() {
        let mut p = Program::new();
        p.rules.push(Rule {
            head: atom("T", vec![ArgTerm::CVar("h".into())]),
            body: vec![Literal::Pos(atom("R", vec![ArgTerm::CVar("b".into())]))],
            comparisons: vec![Comparison {
                lhs: CompExpr::Lin {
                    terms: vec![(1, "x".into()), (1, "y".into())],
                    constant: 0,
                },
                op: CmpOp::Eq,
                rhs: CompExpr::Arg(ArgTerm::Cst(Const::Int(1))),
            }],
        });
        let names: Vec<&str> = p.cvar_names().into_iter().collect();
        assert_eq!(names, vec!["b", "h", "x", "y"]);
    }

    #[test]
    fn fact_detection() {
        let f = Rule::fact(atom("Lb", vec![ArgTerm::Cst(Const::sym("R&D"))]));
        assert!(f.is_fact());
        assert_eq!(f.to_string(), "Lb(\"R&D\").");
    }
}
