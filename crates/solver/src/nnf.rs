//! Negation normal form.
//!
//! Negations are pushed down to the atoms (where they flip the
//! comparison operator), leaving a tree of `And` / `Or` over positive
//! atoms. This is the input shape for the DPLL-style search.

use faure_ctable::{Atom, Condition};

/// A condition in negation normal form.
#[derive(Clone, Debug, PartialEq)]
pub enum Nnf {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A (positive) atom; negation has been folded into the operator.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Nnf>),
    /// Disjunction.
    Or(Vec<Nnf>),
}

impl Nnf {
    /// Number of atoms in the formula.
    pub fn atom_count(&self) -> usize {
        match self {
            Nnf::True | Nnf::False => 0,
            Nnf::Atom(_) => 1,
            Nnf::And(cs) | Nnf::Or(cs) => cs.iter().map(Nnf::atom_count).sum(),
        }
    }
}

/// Converts `cond` to negation normal form.
pub fn to_nnf(cond: &Condition) -> Nnf {
    convert(cond, false)
}

fn convert(cond: &Condition, negate: bool) -> Nnf {
    match (cond, negate) {
        (Condition::True, false) | (Condition::False, true) => Nnf::True,
        (Condition::True, true) | (Condition::False, false) => Nnf::False,
        (Condition::Atom(a), false) => Nnf::Atom(a.clone()),
        (Condition::Atom(a), true) => Nnf::Atom(Atom {
            lhs: a.lhs.clone(),
            op: a.op.negated(),
            rhs: a.rhs.clone(),
        }),
        (Condition::Not(inner), n) => convert(inner, !n),
        (Condition::And(cs), false) | (Condition::Or(cs), true) => {
            Nnf::And(cs.iter().map(|c| convert(c, negate)).collect())
        }
        (Condition::Or(cs), false) | (Condition::And(cs), true) => {
            Nnf::Or(cs.iter().map(|c| convert(c, negate)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{CVarRegistry, CmpOp, Condition, Domain, Term};
    use std::sync::Arc;

    fn atom(x: faure_ctable::CVarId, op: CmpOp, v: i64) -> Condition {
        Condition::cmp(Term::Var(x), op, Term::int(v))
    }

    #[test]
    fn pushes_negation_through_and() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        // ¬(x=1 ∧ y=1) → x≠1 ∨ y≠1
        let c = atom(x, CmpOp::Eq, 1).and(atom(y, CmpOp::Eq, 1)).negate();
        let nnf = to_nnf(&c);
        match nnf {
            Nnf::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[0], Nnf::Atom(a) if a.op == CmpOp::Ne));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn double_negation() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let c = Condition::Not(Arc::new(Condition::Not(Arc::new(atom(x, CmpOp::Lt, 1)))));
        assert_eq!(
            to_nnf(&c),
            Nnf::Atom(faure_ctable::Atom::new(
                Term::Var(x),
                CmpOp::Lt,
                Term::int(1)
            ))
        );
    }

    #[test]
    fn constants_flip() {
        assert_eq!(to_nnf(&Condition::True.negate()), Nnf::False);
        assert_eq!(
            to_nnf(&Condition::Not(Arc::new(Condition::disj(vec![])))),
            Nnf::And(vec![])
        );
    }

    #[test]
    fn atom_count_counts_leaves() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let c = atom(x, CmpOp::Eq, 1)
            .and(atom(x, CmpOp::Ne, 0))
            .or(atom(x, CmpOp::Eq, 0));
        assert_eq!(to_nnf(&c).atom_count(), 3);
    }
}
