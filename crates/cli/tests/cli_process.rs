//! End-to-end tests driving the built `faure` binary as a subprocess.

use std::io::Write;
use std::process::Command;

fn faure() -> Command {
    Command::new(env!("CARGO_BIN_EXE_faure"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("faure-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const FIG1: &str = "\
@cvar x in {0, 1}
@cvar y in {0, 1}
@cvar z in {0, 1}
@schema F(f, n1, n2)
F(1, 1, 2) :- $x = 1.
F(1, 1, 3) :- $x = 0.
F(1, 2, 3) :- $y = 1.
F(1, 2, 4) :- $y = 0.
F(1, 3, 5) :- $z = 1.
F(1, 3, 4) :- $z = 0.
F(1, 4, 5).
";

const REACH: &str = "\
R(f, a, b) :- F(f, a, b).
R(f, a, b) :- F(f, a, c), R(f, c, b).
";

#[test]
fn help_prints_usage() {
    let out = faure().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("faure eval"));
}

#[test]
fn no_args_prints_usage() {
    let out = faure().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn eval_pipeline() {
    let db = write_temp("fig1.fdb", FIG1);
    let program = write_temp("reach.fl", REACH);
    let out = faure()
        .args(["eval", db.to_str().unwrap(), program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(1, 1, 5)"), "{text}");
    assert!(text.contains("tuples"), "{text}");
}

#[test]
fn check_reports_verdicts() {
    let db = write_temp("fig1b.fdb", FIG1);
    let holds = write_temp(
        "holds.fl",
        &format!("{REACH}panic :- F(f, a, b), !R(1, 1, 5).\n"),
    );
    let out = faure()
        .args(["check", db.to_str().unwrap(), holds.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));

    let violated = write_temp(
        "violated.fl",
        &format!("{REACH}panic :- F(f, a, b), !R(1, 1, 4).\n"),
    );
    let out = faure()
        .args([
            "scenarios",
            db.to_str().unwrap(),
            violated.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 3, "{text}");
}

#[test]
fn sql_subcommand() {
    let db = write_temp("fig1c.fdb", FIG1);
    let out = faure()
        .args(["sql", db.to_str().unwrap(), "SELECT * FROM F WHERE n1 = 4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("(1, 4, 5)"));
}

#[test]
fn bad_input_fails_cleanly() {
    let db = write_temp("bad.fdb", "@cvar broken\n");
    let program = write_temp("p.fl", "R(a) :- F(a).\n");
    let out = faure()
        .args(["eval", db.to_str().unwrap(), program.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = faure()
        .args(["eval", "/nonexistent.fdb", "/nonexistent.fl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

/// Extracts the integer after `"key":` in a JSON-ish string slice.
fn json_u64(s: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let i = s
        .find(&pat)
        .unwrap_or_else(|| panic!("key {key} not found in {s}"));
    let rest = &s[i + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("key {key} not an integer in {s}"))
}

/// The ISSUE's live-telemetry acceptance check: after a churn run, the
/// engine counters the background JSONL writer last snapshotted must
/// agree with the `--metrics` document's whole-process `totals` block.
/// Runs in a spawned process so no other test's evaluation can bump
/// the process-global registry mid-comparison.
#[test]
fn telemetry_jsonl_final_line_agrees_with_metrics_totals() {
    let db = write_temp("tele.fdb", FIG1);
    let program = write_temp("tele.fl", REACH);
    let stream = write_temp("tele.fdl", "+F(1, 4, 6).\n-F(1, 4, 5).\n");
    let metrics = write_temp("tele-metrics.json", "");
    let jsonl = write_temp("tele.jsonl", "");
    let out = faure()
        .args([
            "eval",
            db.to_str().unwrap(),
            program.to_str().unwrap(),
            "--updates",
            stream.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--telemetry-jsonl",
            jsonl.to_str().unwrap(),
            "--telemetry-interval-ms",
            "60000",
            "--threads",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The per-update progress stream landed on stderr, not stdout.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("update 1/2"), "{stderr}");
    assert!(stderr.contains("update 2/2"), "{stderr}");
    assert!(stderr.contains("memo"), "{stderr}");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("update 1/2"));

    let metrics_doc = std::fs::read_to_string(&metrics).unwrap();
    let totals_at = metrics_doc.find("\"totals\":").expect("totals block");
    let totals = &metrics_doc[totals_at..];
    let jsonl_text = std::fs::read_to_string(&jsonl).unwrap();
    let last = jsonl_text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .expect("at least one snapshot line");

    // Counter-for-counter agreement between the final telemetry
    // snapshot and the metrics totals.
    for (metric, key) in [
        ("faure_probes_total", "probes"),
        ("faure_rows_matched_total", "rows_matched"),
        ("faure_sat_calls_total", "sat_calls"),
        ("faure_sat_true_total", "sat_true"),
        ("faure_memo_hits_total", "memo_hits"),
        ("faure_memo_misses_total", "memo_misses"),
        ("faure_updates_applied_total", "updates_applied"),
        ("faure_plan_cache_hits_total", "plan_cache_hits"),
        ("faure_plan_cache_misses_total", "plan_cache_misses"),
    ] {
        assert_eq!(
            json_u64(last, metric),
            json_u64(totals, key),
            "{metric} disagrees with totals.{key}\njsonl: {last}\ntotals: {totals}"
        );
    }
    // The absolute IDB row-count gauge matches too.
    assert_eq!(
        json_u64(last, "faure_idb_tuples"),
        json_u64(totals, "idb_tuples"),
        "idb tuples gauge disagrees\njsonl: {last}\ntotals: {totals}"
    );
    // Pool hits: the registry mirrors the process-global pool counters
    // at publish boundaries; the metrics pool block snapshots the same
    // source after the last apply.
    let pool_at = metrics_doc.find("\"pool\":").expect("pool block");
    assert_eq!(
        json_u64(last, "faure_pool_hits_total"),
        json_u64(&metrics_doc[pool_at..], "pool_hits"),
        "pool hits disagree\njsonl: {last}"
    );
}

#[test]
fn flight_recorder_dumps_on_success() {
    let db = write_temp("flight.fdb", FIG1);
    let program = write_temp("flight.fl", REACH);
    let dump = std::env::temp_dir().join(format!("faure-flight-ok-{}.json", std::process::id()));
    let out = faure()
        .args([
            "eval",
            db.to_str().unwrap(),
            program.to_str().unwrap(),
            "--flight-recorder",
            dump.to_str().unwrap(),
            "--flight-capacity",
            "16",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("flight recording"), "{stdout}");
    let json = std::fs::read_to_string(&dump).unwrap();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    std::fs::remove_file(&dump).ok();
}

#[test]
fn forced_panic_dumps_flight_ring() {
    let db = write_temp("panic.fdb", FIG1);
    let program = write_temp("panic.fl", REACH);
    let dump = std::env::temp_dir().join(format!("faure-flight-panic-{}.json", std::process::id()));
    let out = faure()
        .args([
            "eval",
            db.to_str().unwrap(),
            program.to_str().unwrap(),
            "--flight-recorder",
            dump.to_str().unwrap(),
        ])
        .env("FAURE_FLIGHT_PANIC", "1")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("flight recorder: dumped"), "{stderr}");
    // The panic-hook dump is a loadable Chrome trace with real events.
    let json = std::fs::read_to_string(&dump).unwrap();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    std::fs::remove_file(&dump).ok();
}

#[test]
fn unwritable_observability_paths_fail_cleanly() {
    let db = write_temp("unwritable.fdb", FIG1);
    let program = write_temp("unwritable.fl", REACH);
    for flag in [
        "--metrics",
        "--trace",
        "--flight-recorder",
        "--telemetry-jsonl",
    ] {
        let out = faure()
            .args([
                "eval",
                db.to_str().unwrap(),
                program.to_str().unwrap(),
                flag,
                "/nonexistent-dir/out.json",
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error:") && stderr.contains("/nonexistent-dir/out.json"),
            "{flag}: {stderr}"
        );
    }
}
