//! Graph substrate for workload generation.
//!
//! The RIB generator needs an AS-level topology to draw plausible paths
//! from. Real AS graphs are heavy-tailed; a preferential-attachment
//! process gives the right shape without external data (see DESIGN.md's
//! substitution table).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Node identifier (dense, 0-based).
pub type NodeId = u32;

/// An undirected graph stored as adjacency lists.
#[derive(Clone, Debug)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge (idempotent).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        if !self.adj[a as usize].contains(&b) {
            self.adj[a as usize].push(b);
            self.adj[b as usize].push(a);
        }
    }

    /// Neighbours of `n`.
    pub fn neighbours(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n as usize]
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n as usize].len()
    }

    /// Builds a preferential-attachment (Barabási–Albert style) graph:
    /// `n` nodes, each newcomer attaching to `m` existing nodes with
    /// probability proportional to degree. Deterministic given `rng`.
    pub fn preferential_attachment(n: usize, m: usize, rng: &mut StdRng) -> Self {
        assert!(n > m, "need at least m+1 nodes");
        let mut g = Graph::new(n);
        // Seed clique over the first m+1 nodes.
        for a in 0..=(m as NodeId) {
            for b in (a + 1)..=(m as NodeId) {
                g.add_edge(a, b);
            }
        }
        // Degree-weighted endpoint pool: each edge contributes both ends.
        let mut pool: Vec<NodeId> = Vec::new();
        for (node, nbrs) in g.adj.iter().enumerate() {
            for _ in 0..nbrs.len() {
                pool.push(node as NodeId);
            }
        }
        for newcomer in (m + 1)..n {
            let mut targets = BTreeSet::new();
            while targets.len() < m {
                let pick = pool[rng.gen_range(0..pool.len())];
                targets.insert(pick);
            }
            for t in targets {
                g.add_edge(newcomer as NodeId, t);
                pool.push(newcomer as NodeId);
                pool.push(t);
            }
        }
        g
    }

    /// Samples a random simple path of `len` edges starting from a
    /// random node (self-avoiding walk with restart). Returns the node
    /// sequence (length `len + 1`), or `None` if the graph is too
    /// sparse to host one within the attempt budget.
    pub fn random_simple_path(&self, len: usize, rng: &mut StdRng) -> Option<Vec<NodeId>> {
        'attempt: for _ in 0..64 {
            let start = rng.gen_range(0..self.node_count()) as NodeId;
            let mut path = vec![start];
            let mut seen: BTreeSet<NodeId> = BTreeSet::new();
            seen.insert(start);
            while path.len() <= len {
                let cur = *path.last().expect("non-empty");
                let candidates: Vec<NodeId> = self
                    .neighbours(cur)
                    .iter()
                    .copied()
                    .filter(|n| !seen.contains(n))
                    .collect();
                let Some(&next) = candidates.choose(rng) else {
                    continue 'attempt;
                };
                path.push(next);
                seen.insert(next);
            }
            return Some(path);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn pa_graph_shape() {
        let g = Graph::preferential_attachment(100, 2, &mut rng());
        assert_eq!(g.node_count(), 100);
        // Seed clique (3 edges) + 2 per newcomer (97 * 2).
        assert_eq!(g.edge_count(), 3 + 97 * 2);
        // Heavy tail: some node should have a large degree.
        let max_deg = (0..100).map(|n| g.degree(n)).max().unwrap();
        assert!(max_deg >= 8, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn add_edge_idempotent_and_no_self_loops() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn random_paths_are_simple() {
        let g = Graph::preferential_attachment(200, 3, &mut rng());
        let mut r = rng();
        for _ in 0..50 {
            let p = g.random_simple_path(4, &mut r).expect("dense enough");
            assert_eq!(p.len(), 5);
            let set: BTreeSet<_> = p.iter().collect();
            assert_eq!(set.len(), 5, "path must not revisit nodes");
            for w in p.windows(2) {
                assert!(g.neighbours(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Graph::preferential_attachment(50, 2, &mut rng());
        let b = Graph::preferential_attachment(50, 2, &mut rng());
        assert_eq!(a.edge_count(), b.edge_count());
        for n in 0..50 {
            assert_eq!(a.neighbours(n), b.neighbours(n));
        }
    }
}
