//! C-variables and their domains.
//!
//! A *c-variable* (`x̄, ȳ, …` in the paper) names an unknown value. Each
//! c-variable is registered in a [`CVarRegistry`] together with a
//! [`Domain`] describing the values it may take. Finite domains are what
//! make possible-world enumeration and the finite-domain theory of the
//! solver exact; a c-variable may also be left [`Domain::Open`] when the
//! modeller does not want to commit to a value set (the solver then
//! reasons about it purely through (dis)equalities).

use crate::value::Const;
use std::fmt;

/// Identifier of a c-variable within a [`CVarRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CVarId(pub u32);

impl CVarId {
    /// Index into the registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cvar#{}", self.0)
    }
}

/// The value set a c-variable ranges over.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The link-state domain `{0, 1}` (0 = failed, 1 = up).
    Bool01,
    /// A finite set of integers.
    Ints(Vec<i64>),
    /// A finite set of arbitrary constants (e.g. `{Mkt, R&D}`).
    Consts(Vec<Const>),
    /// Unconstrained: any constant. Possible-world enumeration is not
    /// available for open c-variables; the solver treats them via the
    /// equality theory only.
    Open,
}

impl Domain {
    /// The members of the domain as constants, or `None` if open.
    pub fn members(&self) -> Option<Vec<Const>> {
        match self {
            Domain::Bool01 => Some(vec![Const::Int(0), Const::Int(1)]),
            Domain::Ints(vs) => Some(vs.iter().map(|&v| Const::Int(v)).collect()),
            Domain::Consts(cs) => Some(cs.clone()),
            Domain::Open => None,
        }
    }

    /// Number of members, or `None` if open.
    pub fn size(&self) -> Option<usize> {
        match self {
            Domain::Bool01 => Some(2),
            Domain::Ints(vs) => Some(vs.len()),
            Domain::Consts(cs) => Some(cs.len()),
            Domain::Open => None,
        }
    }

    /// Whether `c` belongs to the domain. Open domains contain everything.
    pub fn contains(&self, c: &Const) -> bool {
        match self {
            Domain::Bool01 => matches!(c, Const::Int(0) | Const::Int(1)),
            Domain::Ints(vs) => c.as_int().is_some_and(|v| vs.contains(&v)),
            Domain::Consts(cs) => cs.contains(c),
            Domain::Open => true,
        }
    }

    /// Whether the domain consists solely of integers (relevant for
    /// linear-arithmetic atoms).
    pub fn is_numeric(&self) -> bool {
        match self {
            Domain::Bool01 | Domain::Ints(_) => true,
            Domain::Consts(cs) => cs.iter().all(|c| matches!(c, Const::Int(_))),
            Domain::Open => false,
        }
    }
}

/// Metadata for one registered c-variable.
#[derive(Clone, Debug)]
pub struct CVarInfo {
    /// Human-readable name (`x`, `y`, …); rendered with a trailing `'`
    /// mark in display output to mimic the paper's overbar.
    pub name: String,
    /// The value set this c-variable ranges over.
    pub domain: Domain,
}

/// Registry of all c-variables of a database.
///
/// The registry is the single source of truth for domains; conditions
/// and tuples refer to c-variables only by [`CVarId`].
#[derive(Clone, Debug, Default)]
pub struct CVarRegistry {
    vars: Vec<CVarInfo>,
}

impl CVarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh c-variable and returns its id.
    pub fn fresh(&mut self, name: impl Into<String>, domain: Domain) -> CVarId {
        let id = CVarId(u32::try_from(self.vars.len()).expect("too many c-variables"));
        self.vars.push(CVarInfo {
            name: name.into(),
            domain,
        });
        id
    }

    /// Registers a batch of fresh c-variables in one call, returning
    /// their ids in input order.
    ///
    /// This is the bulk path used by the evaluation engine when a
    /// program mentions many c-variables: the backing vector is grown
    /// once instead of once per variable, and the returned ids are
    /// assigned contiguously (callers may rely on
    /// `ids[i].index() == old_len + i`).
    pub fn fresh_batch<N: Into<String>>(
        &mut self,
        vars: impl IntoIterator<Item = (N, Domain)>,
    ) -> Vec<CVarId> {
        let vars = vars.into_iter();
        let (lower, _) = vars.size_hint();
        self.vars.reserve(lower);
        let mut ids = Vec::with_capacity(lower);
        for (name, domain) in vars {
            ids.push(self.fresh(name, domain));
        }
        ids
    }

    /// Looks up a c-variable by name (first match).
    pub fn by_name(&self, name: &str) -> Option<CVarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| CVarId(i as u32))
    }

    /// Metadata for `id`. Panics if `id` is from another registry.
    pub fn info(&self, id: CVarId) -> &CVarInfo {
        &self.vars[id.index()]
    }

    /// The domain of `id`.
    pub fn domain(&self, id: CVarId) -> &Domain {
        &self.vars[id.index()].domain
    }

    /// The display name of `id`.
    pub fn name(&self, id: CVarId) -> &str {
        &self.vars[id.index()].name
    }

    /// Number of registered c-variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterator over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CVarId, &CVarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (CVarId(i as u32), v))
    }

    /// A structural signature of the registry: the c-variable count plus
    /// every variable's `(name, domain)` pair, in registration order.
    ///
    /// Conditions refer to c-variables only by [`CVarId`] (a registry
    /// index), so two registries with equal fingerprints assign the same
    /// meaning to any condition — which makes the fingerprint a sound
    /// cache key for solver memo tables shared across evaluation runs.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.vars.len().hash(&mut h);
        for v in &self.vars {
            v.name.hash(&mut h);
            v.domain.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_assigns_sequential_ids() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Open);
        assert_eq!(x, CVarId(0));
        assert_eq!(y, CVarId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(x), "x");
        assert_eq!(reg.domain(y), &Domain::Open);
    }

    #[test]
    fn fresh_batch_matches_sequential_registration() {
        let mut a = CVarRegistry::new();
        a.fresh("pre", Domain::Open);
        let ids = a.fresh_batch([
            ("x".to_string(), Domain::Bool01),
            ("y".to_string(), Domain::Open),
        ]);
        let mut b = CVarRegistry::new();
        b.fresh("pre", Domain::Open);
        let x = b.fresh("x", Domain::Bool01);
        let y = b.fresh("y", Domain::Open);
        assert_eq!(ids, vec![x, y]);
        assert_eq!(ids[0].index(), 1);
        assert_eq!(ids[1].index(), 2);
        assert_eq!(a.name(ids[0]), "x");
        assert_eq!(a.domain(ids[1]), &Domain::Open);
    }

    #[test]
    fn by_name_finds_first() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        reg.fresh("x", Domain::Open); // shadow: by_name still finds first
        assert_eq!(reg.by_name("x"), Some(x));
        assert_eq!(reg.by_name("nope"), None);
    }

    #[test]
    fn domain_membership() {
        assert!(Domain::Bool01.contains(&Const::Int(0)));
        assert!(!Domain::Bool01.contains(&Const::Int(2)));
        assert!(Domain::Ints(vec![80, 344, 7000]).contains(&Const::Int(344)));
        let d = Domain::Consts(vec![Const::sym("Mkt"), Const::sym("R&D")]);
        assert!(d.contains(&Const::sym("Mkt")));
        assert!(!d.contains(&Const::sym("CS")));
        assert!(Domain::Open.contains(&Const::sym("anything")));
    }

    #[test]
    fn domain_sizes_and_members() {
        assert_eq!(Domain::Bool01.size(), Some(2));
        assert_eq!(Domain::Open.size(), None);
        assert_eq!(
            Domain::Ints(vec![1, 2]).members(),
            Some(vec![Const::Int(1), Const::Int(2)])
        );
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let mut a = CVarRegistry::new();
        a.fresh("x", Domain::Bool01);
        a.fresh("y", Domain::Ints(vec![1, 2]));
        let mut b = CVarRegistry::new();
        b.fresh("x", Domain::Bool01);
        b.fresh("y", Domain::Ints(vec![1, 2]));
        assert_eq!(a.fingerprint(), b.fingerprint());

        // A new variable, a renamed variable, or a changed domain all
        // produce a different signature.
        let mut c = b.clone();
        c.fresh("z", Domain::Open);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = CVarRegistry::new();
        d.fresh("x", Domain::Bool01);
        d.fresh("y", Domain::Ints(vec![1, 3]));
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn numeric_domains() {
        assert!(Domain::Bool01.is_numeric());
        assert!(Domain::Ints(vec![1]).is_numeric());
        assert!(Domain::Consts(vec![Const::Int(1)]).is_numeric());
        assert!(!Domain::Consts(vec![Const::sym("a")]).is_numeric());
        assert!(!Domain::Open.is_numeric());
    }
}
