//! The shared random corpus: small c-table databases and fauré-log
//! programs covering every planner and engine feature.
//!
//! Several differential suites draw from the same distribution — the
//! plan layer checks world-equivalence against the ground reference
//! evaluator, the engine layer checks parallel runs against serial
//! runs — so the generators live here rather than in any one test
//! file.

use faure_core::{parse_program, Program};
use faure_ctable::{CTuple, Condition, Const, Database, Domain, Schema, Term};
use proptest::prelude::*;

/// A small random database over E(a, b) and B(x) with two c-variables
/// ranging over {0, 1, 2} (so every instance has 9 possible worlds).
pub fn arb_db() -> impl Strategy<Value = Database> {
    let cell = 0usize..5;
    let cond = 0usize..5;
    let e_rows = prop::collection::vec((cell.clone(), cell.clone(), cond.clone()), 1..6);
    let b_rows = prop::collection::vec((cell, cond), 0..3);
    (e_rows, b_rows).prop_map(|(e_rows, b_rows)| {
        let mut db = Database::new();
        let v0 = db.fresh_cvar("v0", Domain::Ints(vec![0, 1, 2]));
        let v1 = db.fresh_cvar("v1", Domain::Ints(vec![0, 1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.create_relation(Schema::new("B", &["x"])).unwrap();
        let mk_cell = |code: usize| match code {
            0..=2 => Term::Const(Const::Int(code as i64)),
            3 => Term::Var(v0),
            _ => Term::Var(v1),
        };
        let mk_cond = |code: usize| match code {
            0 => Condition::True,
            1 => Condition::eq(Term::Var(v0), Term::int(1)),
            2 => Condition::ne(Term::Var(v0), Term::int(0)),
            3 => Condition::eq(Term::Var(v1), Term::int(1)),
            _ => Condition::eq(Term::Var(v0), Term::int(1))
                .and(Condition::ne(Term::Var(v1), Term::int(0))),
        };
        for (a, b, c) in e_rows {
            db.insert("E", CTuple::with_cond([mk_cell(a), mk_cell(b)], mk_cond(c)))
                .unwrap();
        }
        for (x, c) in b_rows {
            db.insert("B", CTuple::with_cond([mk_cell(x)], mk_cond(c)))
                .unwrap();
        }
        // Use both c-variables somewhere so world enumeration covers
        // them even when no row condition mentions them.
        db.insert("E", CTuple::new([Term::Var(v0), Term::Var(v1)]))
            .unwrap();
        db
    })
}

/// Random programs chosen to exercise every planner feature: join
/// reordering (constants written last), linear and non-linear recursion
/// (one and two delta slots per rule), stratified negation over both
/// EDB and IDB predicates, rule-variable comparison pushdown, and
/// c-variable-only comparisons (hoisted to initial filters).
pub fn arb_program() -> impl Strategy<Value = Program> {
    let k = 0i64..3;
    prop_oneof![
        // Reordering bait: the constant-bearing literal is written last.
        k.clone()
            .prop_map(|k| format!("Q(a, c) :- E(a, b), E(b, c), E({k}, a).\n")),
        // Pushdown: `a != k` binds after the first joined literal.
        k.clone()
            .prop_map(|k| format!("Q(a, c) :- E(a, b), E(b, c), a != {k}, c < 2.\n")),
        // Linear recursion — one delta slot.
        Just("R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n".to_string()),
        // Non-linear recursion — two delta slots per iteration.
        Just("R(a, b) :- E(a, b).\nR(a, c) :- R(a, b), R(b, c).\n".to_string()),
        // Stratified negation over the recursive IDB.
        Just(
            "R(a, b) :- E(a, b).\n\
             R(a, c) :- E(a, b), R(b, c).\n\
             N(a) :- E(a, b).\n\
             N(b) :- E(a, b).\n\
             Cut(a, b) :- N(a), N(b), !R(a, b).\n"
                .to_string()
        ),
        // Negation over EDB plus a unary join.
        k.clone()
            .prop_map(|k| format!("Q(a) :- E(a, b), B(b), !E(b, a), a != {k}.\n")),
        // C-variable-only comparison: hoisted before any join.
        k.prop_map(|k| format!("Q(a) :- E(a, b), $v0 + $v1 < {}.\n", k + 2)),
    ]
    .prop_map(|src| parse_program(&src).unwrap())
}
