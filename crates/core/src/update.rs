//! Update rewrite — the category-(ii) machinery (§5, Listing 4).
//!
//! To verify a constraint `C` *after* an update `U` using only the
//! pre-update state, the paper rewrites `C` into `C'` such that `C'`
//! holds before `U` iff `C` holds after `U` (following Levy & Sagiv,
//! *Queries Independent of Updates*, VLDB '93). The rewrite introduces
//! staged relations:
//!
//! ```text
//! % add (R&D, GS) to the load balancer          (q19–q20)
//! Lb__u0("R&D", GS).
//! Lb__u0(x, y) :- Lb(x, y).
//! % delete (Mkt, CS) from the load balancer     (q21–q22)
//! Lb__u1(x, y) :- Lb__u0(x, y), x != Mkt.
//! Lb__u1(x, y) :- Lb__u0(x, y), y != CS.
//! % the constraint then reads Lb__u1 instead of Lb   (q24)
//! ```
//!
//! A row survives a deletion pattern if it *differs in at least one
//! constrained column* — hence one rule per constrained column, whose
//! union is the survivor set. On c-tables this is loss-less: a row
//! `(x̄, CS)` survives the deletion of `(Mkt, CS)` with condition
//! `x̄ ≠ Mkt` attached by the comparison.
//!
//! [`apply_to_database`] implements the same update *directly* on a
//! database (used by tests and the direct verifier to cross-check the
//! rewrite).

use crate::ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule, RuleAtom};
use faure_ctable::{CTuple, CmpOp, Condition, Const, Database, Term};
use std::fmt;

/// A deletion pattern: per-column `Some(constant)` constraints
/// (`None` = any value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeletePattern {
    /// One entry per column.
    pub cols: Vec<Option<Const>>,
}

impl DeletePattern {
    /// A pattern with all columns constrained (delete one exact row).
    pub fn exact<I: IntoIterator<Item = Const>>(row: I) -> Self {
        DeletePattern {
            cols: row.into_iter().map(Some).collect(),
        }
    }
}

/// An update to a single relation: insertions of ground rows plus
/// deletions by pattern.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Update {
    /// Relation being updated.
    pub relation: String,
    /// Ground rows to insert.
    pub insertions: Vec<Vec<Const>>,
    /// Patterns to delete.
    pub deletions: Vec<DeletePattern>,
}

impl Update {
    /// A new empty update for `relation`.
    pub fn new(relation: impl Into<String>) -> Self {
        Update {
            relation: relation.into(),
            ..Default::default()
        }
    }

    /// Adds an insertion.
    pub fn insert<I: IntoIterator<Item = Const>>(mut self, row: I) -> Self {
        self.insertions.push(row.into_iter().collect());
        self
    }

    /// Adds a deletion pattern.
    pub fn delete(mut self, pattern: DeletePattern) -> Self {
        self.deletions.push(pattern);
        self
    }
}

/// Errors of the rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// A deletion pattern constrains no column (would delete every
    /// row); written out explicitly rather than silently emptying the
    /// relation.
    UnconstrainedDeletion,
    /// Insertions/deletions disagree on the relation's arity.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Found arity.
        got: usize,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnconstrainedDeletion => {
                write!(f, "deletion pattern constrains no column")
            }
            UpdateError::ArityMismatch { expected, got } => {
                write!(f, "update rows disagree on arity: {expected} vs {got}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// The name of the staged relation after applying `update` stage `k`.
fn stage_name(relation: &str, k: usize) -> String {
    format!("{relation}__u{k}")
}

/// Generates the staged rules of Listing 4 for `update` on a relation
/// of the given arity, and returns `(rules, final_pred)` where
/// `final_pred` reflects the post-update contents.
pub fn staging_rules(update: &Update, arity: usize) -> Result<(Vec<Rule>, String), UpdateError> {
    for row in &update.insertions {
        if row.len() != arity {
            return Err(UpdateError::ArityMismatch {
                expected: arity,
                got: row.len(),
            });
        }
    }
    for d in &update.deletions {
        if d.cols.len() != arity {
            return Err(UpdateError::ArityMismatch {
                expected: arity,
                got: d.cols.len(),
            });
        }
        if d.cols.iter().all(Option::is_none) {
            return Err(UpdateError::UnconstrainedDeletion);
        }
    }

    let vars: Vec<ArgTerm> = (0..arity).map(|i| ArgTerm::Var(format!("v{i}"))).collect();
    let mut rules = Vec::new();

    // Stage 0: old contents plus insertions (q19–q20).
    let s0 = stage_name(&update.relation, 0);
    rules.push(Rule {
        head: RuleAtom::new(&s0, vars.clone()),
        body: vec![Literal::Pos(RuleAtom::new(&update.relation, vars.clone()))],
        comparisons: vec![],
    });
    for row in &update.insertions {
        rules.push(Rule::fact(RuleAtom::new(
            &s0,
            row.iter().map(|c| ArgTerm::Cst(c.clone())).collect(),
        )));
    }

    // One stage per deletion (q21–q22): survivors differ in at least
    // one constrained column.
    let mut prev = s0;
    for (k, d) in update.deletions.iter().enumerate() {
        let sk = stage_name(&update.relation, k + 1);
        for (col, constraint) in d.cols.iter().enumerate() {
            let Some(c) = constraint else { continue };
            rules.push(Rule {
                head: RuleAtom::new(&sk, vars.clone()),
                body: vec![Literal::Pos(RuleAtom::new(&prev, vars.clone()))],
                comparisons: vec![Comparison {
                    lhs: CompExpr::Arg(ArgTerm::Var(format!("v{col}"))),
                    op: CmpOp::Ne,
                    rhs: CompExpr::Arg(ArgTerm::Cst(c.clone())),
                }],
            });
        }
        prev = sk;
    }
    Ok((rules, prev))
}

/// Rewrites `constraint` to reflect `update`: every reference to the
/// updated relation is redirected to the staged post-update relation,
/// and the staging rules are appended. The result is the paper's `C'`
/// (e.g. `T2'`, q24): checking it on the **pre-update** state is
/// equivalent to checking `constraint` on the **post-update** state.
pub fn rewrite_constraint(constraint: &Program, update: &Update) -> Result<Program, UpdateError> {
    // Find the relation's arity from its uses; if unused, the rewrite
    // is the identity.
    let arity = constraint
        .rules
        .iter()
        .flat_map(|r| {
            r.body
                .iter()
                .map(Literal::atom)
                .chain(std::iter::once(&r.head))
        })
        .find(|a| a.pred == update.relation)
        .map(|a| a.args.len());
    let Some(arity) = arity else {
        return Ok(constraint.clone());
    };
    let (staging, final_pred) = staging_rules(update, arity)?;

    let mut out = Program::new();
    for rule in &constraint.rules {
        let redirect = |atom: &RuleAtom| -> RuleAtom {
            if atom.pred == update.relation {
                RuleAtom::new(&final_pred, atom.args.clone())
            } else {
                atom.clone()
            }
        };
        out.rules.push(Rule {
            head: redirect(&rule.head),
            body: rule
                .body
                .iter()
                .map(|l| match l {
                    Literal::Pos(a) => Literal::Pos(redirect(a)),
                    Literal::Neg(a) => Literal::Neg(redirect(a)),
                })
                .collect(),
            comparisons: rule.comparisons.clone(),
        });
    }
    out.rules.extend(staging);
    Ok(out)
}

/// Rewrites `constraint` to reflect `update` **without introducing
/// staged predicates**: occurrences of the updated relation are
/// expanded in place using the update algebra
///
/// ```text
/// Rel'(u)  =  (Rel(u) ∨ ⋁ⱼ u = insⱼ)  ∧  ⋀ₖ ¬match(u, delₖ)
/// ¬Rel'(u) =  (¬Rel(u) ∧ ⋀ⱼ u ≠ insⱼ)  ∨  ⋁ₖ match(u, delₖ)
/// ```
///
/// where `match(u, d)` constrains every column `d` fixes and `u ≠ ins`
/// is a disjunction over columns. Disjunctions split rules, so one rule
/// may expand to several. The result is EDB-level (no `Rel__u*`
/// auxiliaries), which is what the category-(ii) verifier feeds to the
/// containment-as-evaluation test: `expand_constraint(C, U) ⊆ known`
/// is the paper's `C' ⊆ {C_lb, C_s}` check.
pub fn expand_constraint(constraint: &Program, update: &Update) -> Result<Program, UpdateError> {
    for d in &update.deletions {
        if d.cols.iter().all(Option::is_none) {
            return Err(UpdateError::UnconstrainedDeletion);
        }
    }
    let mut out = Program::new();
    for rule in &constraint.rules {
        expand_rule(rule, update, &mut out.rules)?;
    }
    // Expanded literals were marked with a sentinel so the recursion
    // does not re-expand them; restore the original relation name.
    let sentinel = expansion_sentinel(&update.relation);
    for rule in &mut out.rules {
        for lit in &mut rule.body {
            let atom = match lit {
                Literal::Pos(a) | Literal::Neg(a) => a,
            };
            if atom.pred == sentinel {
                atom.pred = update.relation.clone();
            }
        }
    }
    Ok(out)
}

/// Internal marker name for already-expanded literals (contains a
/// control character, so it cannot collide with parseable predicates).
fn expansion_sentinel(relation: &str) -> String {
    format!("{relation}\u{1}orig")
}

fn expand_rule(rule: &Rule, update: &Update, out: &mut Vec<Rule>) -> Result<(), UpdateError> {
    // Find the first literal on the updated relation; expand it and
    // recurse (a rule may mention the relation several times).
    let Some(pos) = rule
        .body
        .iter()
        .position(|l| l.atom().pred == update.relation)
    else {
        out.push(rule.clone());
        return Ok(());
    };
    let lit = rule.body[pos].clone();
    let args = lit.atom().args.clone();
    let arity = args.len();
    for row in &update.insertions {
        if row.len() != arity {
            return Err(UpdateError::ArityMismatch {
                expected: arity,
                got: row.len(),
            });
        }
    }
    for d in &update.deletions {
        if d.cols.len() != arity {
            return Err(UpdateError::ArityMismatch {
                expected: arity,
                got: d.cols.len(),
            });
        }
    }

    let without = |keep_lit: Option<Literal>, extra: Vec<Comparison>| -> Rule {
        let mut body: Vec<Literal> = Vec::with_capacity(rule.body.len());
        for (i, l) in rule.body.iter().enumerate() {
            if i == pos {
                if let Some(kl) = &keep_lit {
                    body.push(kl.clone());
                }
            } else {
                body.push(l.clone());
            }
        }
        let mut comparisons = rule.comparisons.clone();
        comparisons.extend(extra);
        Rule {
            head: rule.head.clone(),
            body,
            comparisons,
        }
    };

    let eq_cmp = |a: &ArgTerm, c: &Const| Comparison {
        lhs: CompExpr::Arg(a.clone()),
        op: CmpOp::Eq,
        rhs: CompExpr::Arg(ArgTerm::Cst(c.clone())),
    };
    let ne_cmp = |a: &ArgTerm, c: &Const| Comparison {
        lhs: CompExpr::Arg(a.clone()),
        op: CmpOp::Ne,
        rhs: CompExpr::Arg(ArgTerm::Cst(c.clone())),
    };

    match lit {
        Literal::Pos(_) => {
            // Survival constraints: for every deletion, pick one
            // constrained column to differ in (cartesian product).
            let mut survival_sets: Vec<Vec<Comparison>> = vec![Vec::new()];
            for d in &update.deletions {
                let mut next = Vec::new();
                for (col, constraint) in d.cols.iter().enumerate() {
                    let Some(c) = constraint else { continue };
                    for s in &survival_sets {
                        let mut s2 = s.clone();
                        s2.push(ne_cmp(&args[col], c));
                        next.push(s2);
                    }
                }
                survival_sets = next;
            }
            for s in &survival_sets {
                // Old contents that survive.
                let r = without(
                    Some(Literal::Pos(RuleAtom {
                        pred: expansion_sentinel(&update.relation),
                        args: args.clone(),
                    })),
                    s.clone(),
                );
                expand_rule(&r, update, out)?;
                // Each inserted row that survives.
                for ins in &update.insertions {
                    let mut extra = s.clone();
                    for (a, c) in args.iter().zip(ins) {
                        extra.push(eq_cmp(a, c));
                    }
                    let r = without(None, extra);
                    expand_rule(&r, update, out)?;
                }
            }
        }
        Literal::Neg(_) => {
            // Not-in-old and differing from every insertion (one rule
            // per column-choice combination across insertions).
            let mut diff_sets: Vec<Vec<Comparison>> = vec![Vec::new()];
            for ins in &update.insertions {
                let mut next = Vec::new();
                for (col, c) in ins.iter().enumerate() {
                    for s in &diff_sets {
                        let mut s2 = s.clone();
                        s2.push(ne_cmp(&args[col], c));
                        next.push(s2);
                    }
                }
                diff_sets = next;
            }
            for s in diff_sets {
                let r = without(
                    Some(Literal::Neg(RuleAtom {
                        pred: expansion_sentinel(&update.relation),
                        args: args.clone(),
                    })),
                    s,
                );
                expand_rule(&r, update, out)?;
            }
            // Or: the tuple matches a deleted pattern.
            for d in &update.deletions {
                let mut extra = Vec::new();
                for (col, constraint) in d.cols.iter().enumerate() {
                    if let Some(c) = constraint {
                        extra.push(eq_cmp(&args[col], c));
                    }
                }
                let r = without(None, extra);
                expand_rule(&r, update, out)?;
            }
        }
    }
    Ok(())
}

/// Applies the update directly to a database (the "actually perform the
/// change" semantics used to validate the rewrite).
///
/// Deletion on a c-table is loss-less: a row whose cells *might* match
/// the pattern keeps `¬μ` (the negated match condition); rows that
/// certainly match are removed.
pub fn apply_to_database(update: &Update, db: &mut Database) -> Result<(), UpdateError> {
    let Some(rel) = db.relation_mut(&update.relation) else {
        return Ok(());
    };
    let arity = rel.schema.arity();
    for row in &update.insertions {
        if row.len() != arity {
            return Err(UpdateError::ArityMismatch {
                expected: arity,
                got: row.len(),
            });
        }
    }
    for d in &update.deletions {
        if d.cols.len() != arity {
            return Err(UpdateError::ArityMismatch {
                expected: arity,
                got: d.cols.len(),
            });
        }
        if d.cols.iter().all(Option::is_none) {
            return Err(UpdateError::UnconstrainedDeletion);
        }
    }

    // Deletions first (the staged rewrite also inserts at stage 0 and
    // deletes afterwards; for the paper's updates — disjoint inserted
    // and deleted tuples — the order is immaterial, and we mirror it).
    for d in &update.deletions {
        let mut kept = Vec::new();
        for mut row in rel.tuples.drain(..) {
            // μ: the condition under which the row matches the pattern.
            let mut mu = Condition::True;
            let mut certain_mismatch = false;
            for (cell, constraint) in row.terms.iter().zip(&d.cols) {
                let Some(c) = constraint else { continue };
                match cell {
                    Term::Const(v) => {
                        if v != c {
                            certain_mismatch = true;
                            break;
                        }
                    }
                    Term::Var(v) => {
                        mu = mu.and(Condition::eq(Term::Var(*v), Term::Const(c.clone())));
                    }
                }
            }
            if certain_mismatch {
                kept.push(row);
            } else if mu == Condition::True {
                // Certain match: drop the row.
            } else {
                row.cond = row.cond.and(mu.negate());
                kept.push(row);
            }
        }
        rel.tuples = kept;
    }
    for row in &update.insertions {
        rel.tuples.push(CTuple::new(
            row.iter()
                .map(|c| Term::Const(c.clone()))
                .collect::<Vec<_>>(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_program;
    use faure_ctable::{Domain, Schema};

    /// The Listing 4 update: add (R&D, GS), remove (Mkt, CS).
    fn listing4_update() -> Update {
        Update::new("Lb")
            .insert([Const::sym("R&D"), Const::sym("GS")])
            .delete(DeletePattern::exact([Const::sym("Mkt"), Const::sym("CS")]))
    }

    #[test]
    fn staging_rules_match_listing4_shape() {
        let (rules, final_pred) = staging_rules(&listing4_update(), 2).unwrap();
        assert_eq!(final_pred, "Lb__u1");
        // q20 (copy), q19 (insert fact), q21, q22 (one per column).
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].to_string(), "Lb__u0(v0, v1) :- Lb(v0, v1).");
        assert_eq!(rules[1].to_string(), "Lb__u0(\"R&D\", GS).");
        assert_eq!(
            rules[2].to_string(),
            "Lb__u1(v0, v1) :- Lb__u0(v0, v1), v0 != Mkt."
        );
        assert_eq!(
            rules[3].to_string(),
            "Lb__u1(v0, v1) :- Lb__u0(v0, v1), v1 != CS."
        );
    }

    #[test]
    fn rewrite_redirects_constraint() {
        let t2 = parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap();
        let t2p = rewrite_constraint(&t2, &listing4_update()).unwrap();
        assert_eq!(
            t2p.rules[0].to_string(),
            "panic :- R(\"R&D\", y, 7000), !Lb__u1(\"R&D\", y)."
        );
        assert_eq!(t2p.rules.len(), 5);
    }

    #[test]
    fn rewrite_is_identity_when_relation_unused() {
        let t1 = parse_program("panic :- R(Mkt, CS, p), !Fw(Mkt, CS).\n").unwrap();
        let t1p = rewrite_constraint(&t1, &listing4_update()).unwrap();
        assert_eq!(t1p, t1);
    }

    #[test]
    fn unconstrained_deletion_rejected() {
        let u = Update::new("Lb").delete(DeletePattern {
            cols: vec![None, None],
        });
        assert_eq!(
            staging_rules(&u, 2),
            Err(UpdateError::UnconstrainedDeletion)
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let u = Update::new("Lb").insert([Const::sym("a")]);
        assert!(matches!(
            staging_rules(&u, 2),
            Err(UpdateError::ArityMismatch { .. })
        ));
    }

    /// The rewrite's defining property: evaluating `C'` on the
    /// pre-update state equals evaluating `C` on the post-update state.
    #[test]
    fn rewrite_equals_direct_application() {
        let mut db = Database::new();
        db.create_relation(Schema::new("Lb", &["subnet", "server"]))
            .unwrap();
        db.insert("Lb", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        db.create_relation(Schema::new("R", &["subnet", "server", "port"]))
            .unwrap();
        db.insert(
            "R",
            CTuple::new([Term::sym("R&D"), Term::sym("GS"), Term::int(7000)]),
        )
        .unwrap();

        let t2 = parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap();
        let update = listing4_update();

        // Path A: rewrite, evaluate on pre-update state.
        let t2p = rewrite_constraint(&t2, &update).unwrap();
        let via_rewrite = evaluate(&t2p, &db).unwrap().derived("panic");

        // Path B: apply the update, evaluate the original constraint.
        let mut db2 = db.clone();
        apply_to_database(&update, &mut db2).unwrap();
        let direct = evaluate(&t2, &db2).unwrap().derived("panic");

        assert_eq!(via_rewrite, direct);
        // And in this scenario the update *fixes* T2 (adds the R&D→GS
        // load balancer), so no panic either way.
        assert!(!direct);
    }

    #[test]
    fn rewrite_equals_direct_application_violating_case() {
        // No load balancer for R&D→GS and the update doesn't add one:
        // both paths must report the violation.
        let mut db = Database::new();
        db.create_relation(Schema::new("Lb", &["subnet", "server"]))
            .unwrap();
        db.insert("Lb", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        db.create_relation(Schema::new("R", &["subnet", "server", "port"]))
            .unwrap();
        db.insert(
            "R",
            CTuple::new([Term::sym("R&D"), Term::sym("GS"), Term::int(7000)]),
        )
        .unwrap();

        let t2 = parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap();
        // Update only deletes (Mkt, CS).
        let update =
            Update::new("Lb").delete(DeletePattern::exact([Const::sym("Mkt"), Const::sym("CS")]));

        let t2p = rewrite_constraint(&t2, &update).unwrap();
        let via_rewrite = evaluate(&t2p, &db).unwrap().derived("panic");
        let mut db2 = db.clone();
        apply_to_database(&update, &mut db2).unwrap();
        let direct = evaluate(&t2, &db2).unwrap().derived("panic");
        assert_eq!(via_rewrite, direct);
        assert!(direct);
    }

    #[test]
    fn expand_constraint_eliminates_staging() {
        let t2 = parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap();
        let expanded = expand_constraint(&t2, &listing4_update()).unwrap();
        // No staged predicates anywhere.
        for r in &expanded.rules {
            for lit in &r.body {
                assert!(!lit.atom().pred.contains("__u"));
                assert!(!lit.atom().pred.contains('\u{1}'));
            }
        }
        // Branches: ¬Lb survivors (2 column choices for the insertion)
        // + 1 deleted-match branch.
        assert_eq!(expanded.rules.len(), 3);
    }

    /// The expansion must agree with the staged rewrite on every state:
    /// both are C' with "C' before U ⟺ C after U".
    #[test]
    fn expand_agrees_with_staged_rewrite() {
        let t2 = parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap();
        let update = listing4_update();
        let staged = rewrite_constraint(&t2, &update).unwrap();
        let expanded = expand_constraint(&t2, &update).unwrap();

        // Try several pre-update states.
        let states: Vec<Vec<(&str, &str)>> = vec![
            vec![("Mkt", "CS")],
            vec![("R&D", "GS")],
            vec![("Mkt", "CS"), ("R&D", "CS")],
            vec![],
        ];
        for lbs in states {
            let mut db = Database::new();
            db.create_relation(Schema::new("Lb", &["subnet", "server"]))
                .unwrap();
            for (a, b) in &lbs {
                db.insert("Lb", CTuple::new([Term::sym(a), Term::sym(b)]))
                    .unwrap();
            }
            db.create_relation(Schema::new("R", &["subnet", "server", "port"]))
                .unwrap();
            db.insert(
                "R",
                CTuple::new([Term::sym("R&D"), Term::sym("CS"), Term::int(7000)]),
            )
            .unwrap();
            let a = evaluate(&staged, &db).unwrap().derived("panic");
            let b = evaluate(&expanded, &db).unwrap().derived("panic");
            assert_eq!(a, b, "state {lbs:?}");
        }
    }

    /// The paper's category-(ii) headline: after expanding T2 through
    /// the Listing 4 update, T2' IS subsumed by the team policies.
    #[test]
    fn expanded_t2_subsumed_by_policies() {
        use crate::containment::{subsumes, Subsumption};
        use faure_ctable::CVarRegistry;

        let t2 = parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap();
        let t2p = expand_constraint(&t2, &listing4_update()).unwrap();
        let policies = parse_program(
            "panic :- Vt(x, y, p).\n\
             Vt(x, CS, p) :- R(x, CS, p), x != Mkt, x != \"R&D\".\n\
             Vt(x, CS, p) :- R(x, CS, p), !Lb(x, CS).\n\
             Vt(x, CS, p) :- R(x, CS, p), p != 7000.\n\
             panic :- Vs(x, y, p).\n\
             Vs(x, y, p) :- R(x, y, p), !Fw(x, y).\n\
             Vs(x, y, p) :- R(x, y, p), p != 80, p != 344, p != 7000.\n",
        )
        .unwrap();
        let mut reg = CVarRegistry::new();
        reg.fresh(
            "x",
            Domain::Consts(vec![Const::sym("Mkt"), Const::sym("R&D")]),
        );
        reg.fresh(
            "y",
            Domain::Consts(vec![Const::sym("CS"), Const::sym("GS")]),
        );
        reg.fresh("p", Domain::Ints(vec![80, 344, 7000]));
        // Category (i) alone cannot show T2 (checked in containment
        // tests); with the update folded in, it can.
        assert_eq!(
            subsumes(&policies, &t2p, &reg).unwrap(),
            Subsumption::Subsumed
        );
    }

    #[test]
    fn delete_on_cvar_cell_is_lossless() {
        // Deleting (Mkt, CS) from a table containing (x̄, CS) must keep
        // the row with condition x̄ ≠ Mkt.
        let mut db = Database::new();
        let x = db.fresh_cvar(
            "x",
            Domain::Consts(vec![Const::sym("Mkt"), Const::sym("R&D")]),
        );
        db.create_relation(Schema::new("Lb", &["subnet", "server"]))
            .unwrap();
        db.insert("Lb", CTuple::new([Term::Var(x), Term::sym("CS")]))
            .unwrap();
        let update =
            Update::new("Lb").delete(DeletePattern::exact([Const::sym("Mkt"), Const::sym("CS")]));
        apply_to_database(&update, &mut db).unwrap();
        let lb = db.relation("Lb").unwrap();
        assert_eq!(lb.len(), 1);
        assert_eq!(
            lb.tuples[0].cond,
            Condition::ne(Term::Var(x), Term::sym("Mkt"))
        );
    }
}
