//! Stats-collecting solver session.
//!
//! The Table 4 reproduction reports the time spent in the solver phase
//! separately from the relational ("SQL") phase, mirroring the paper's
//! `sql` / `Z3` columns. [`Session`] wraps the solver entry points and
//! accumulates call counts and wall-clock time.
//!
//! The session also memoises solver results keyed by the pooled
//! [`CondId`] of the (canonical) condition — interning is structural,
//! so the id key is exactly as precise as the old whole-tree key while
//! costing one `u32` hash per probe. Fixpoint evaluation re-derives the
//! same tuples — and
//! therefore the same conditions — across iterations; phase-3 pruning
//! would otherwise re-solve each of them from scratch every round. The
//! memo is sound because c-variable registries are append-only within a
//! session: a condition only mentions variables that existed when it
//! was built, so growing the registry never changes its status. A
//! session must not be reused across *distinct* registries (the
//! pipeline creates one session per evaluation run).
//!
//! A session's memo lives in one of two places: **local** (a private
//! `HashMap`, the default — no synchronisation cost) or **shared** (an
//! [`Arc<SharedMemo>`] handed to [`Session::with_shared`]). The shared
//! backend is what parallel fixpoint evaluation uses: each worker
//! thread owns a session, all sessions consult the same lock-sharded
//! memo, so a condition decided by one worker is a hit for every other.

use crate::error::SolverError;
use crate::memo::SharedMemo;
use crate::search;
use crate::simplify;
use faure_ctable::pool::{self, CondId};
use faure_ctable::{Assignment, CVarRegistry, Condition};
use faure_trace::Histogram;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on memo entries (per kind). Past this the session keeps
/// answering queries but stops caching new conditions, bounding memory
/// on adversarial workloads.
pub(crate) const MEMO_CAP: usize = 1 << 16;

/// Accumulated solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of satisfiability queries issued.
    pub sat_calls: u64,
    /// How many of them came back satisfiable.
    pub sat_true: u64,
    /// Number of `simplify_pruned` invocations.
    pub simplify_calls: u64,
    /// Queries answered from the session memo (no solver work).
    pub memo_hits: u64,
    /// The subset of `memo_hits` answered by an entry cached during an
    /// *earlier* run of the same shared memo (batch-mode reuse; always
    /// `0` for local memos and single-run shared memos).
    pub cross_run_hits: u64,
    /// The subset of `memo_hits` where a [tagged](Session::set_shard_tag)
    /// session was answered by an entry written by a *different* tagged
    /// session — sharded evaluation's cross-shard fingerprint reuse.
    /// Always `0` outside sharded evaluation; schedule-dependent (never
    /// asserted deterministic), like the other hit/miss counters under
    /// parallelism.
    pub cross_shard_hits: u64,
    /// Queries that missed the memo and ran the solver.
    pub memo_misses: u64,
    /// Total wall-clock time inside the solver. Under parallel
    /// evaluation this sums across workers, i.e. it is solver *CPU*
    /// time, not elapsed time.
    pub time: Duration,
    /// Per-check solve latency. Records **memo misses only** — hits,
    /// including cross-run hits in batch mode, never enter the solver
    /// and are deliberately excluded so the quantiles measure solver
    /// cost per *solved* condition and stay comparable between a cold
    /// first run and warm reruns. Power-of-two nanosecond buckets;
    /// merged across workers by [`absorb`](SolverStats::absorb).
    pub latency: Histogram,
}

impl SolverStats {
    /// Fraction of memoisable queries answered from the memo, in
    /// `[0, 1]`; `0.0` when no queries were issued.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Fraction of memoisable queries answered by an entry carried over
    /// from a previous run, in `[0, 1]`; `0.0` when no queries were
    /// issued. Non-zero only in batch mode, where a prepared program
    /// reuses its [`SharedMemo`] across `run()` calls.
    pub fn memo_cross_run_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.cross_run_hits as f64 / total as f64
        }
    }

    /// Folds another stats record into this one (all counters and the
    /// accumulated time sum field-wise). This is how worker sessions'
    /// statistics merge back into the run's totals.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.sat_calls += other.sat_calls;
        self.sat_true += other.sat_true;
        self.simplify_calls += other.simplify_calls;
        self.memo_hits += other.memo_hits;
        self.cross_run_hits += other.cross_run_hits;
        self.cross_shard_hits += other.cross_shard_hits;
        self.memo_misses += other.memo_misses;
        self.time += other.time;
        self.latency.merge(&other.latency);
    }
}

/// Where a session's memo entries live.
#[derive(Debug)]
enum MemoBackend {
    /// Private maps — the default, no synchronisation.
    Local {
        sat: HashMap<CondId, bool>,
        simplify: HashMap<CondId, CondId>,
    },
    /// A lock-sharded memo shared with sibling sessions (parallel
    /// evaluation workers).
    Shared(Arc<SharedMemo>),
}

impl Default for MemoBackend {
    fn default() -> Self {
        MemoBackend::Local {
            sat: HashMap::new(),
            simplify: HashMap::new(),
        }
    }
}

/// A solver session: entry points plus accumulated statistics and a
/// condition-keyed memo (see module docs for the soundness argument).
///
/// Sessions are cheap; the evaluation pipeline creates one per query
/// run (plus one per worker thread under parallel evaluation, all
/// backed by one [`SharedMemo`]) and folds their stats into the run
/// report.
#[derive(Debug, Default)]
pub struct Session {
    stats: SolverStats,
    memo: MemoBackend,
    /// Evaluation-shard tag stamped on shared-memo writes and compared
    /// on reads (`0` = untagged). See [`Session::set_shard_tag`].
    shard_tag: u8,
}

impl Session {
    /// A fresh session with zeroed stats and an empty local memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh session whose memo reads and writes `memo` — used by
    /// parallel evaluation so worker sessions share decided conditions.
    pub fn with_shared(memo: Arc<SharedMemo>) -> Self {
        Session {
            stats: SolverStats::default(),
            memo: MemoBackend::Shared(memo),
            shard_tag: 0,
        }
    }

    /// Tags this session as evaluation shard `tag` (1-based; `0` means
    /// untagged). Shared-memo writes carry the tag and hits on entries
    /// written by a *different* tagged shard count as
    /// [`SolverStats::cross_shard_hits`]. Tagging never changes
    /// verdicts — only the statistics.
    pub fn set_shard_tag(&mut self, tag: u8) {
        self.shard_tag = tag;
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Accounts one solver invocation (a memo miss): total time plus
    /// the per-check latency histogram.
    fn note_solve(&mut self, elapsed: Duration) {
        self.stats.time += elapsed;
        self.stats
            .latency
            .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Resets statistics to zero and clears the memo (required before
    /// reusing a session with a different registry). A shared-memo
    /// session reverts to a fresh local memo: the shared store may be
    /// in use by sibling sessions and cannot be cleared unilaterally.
    pub fn reset(&mut self) {
        self.stats = SolverStats::default();
        self.memo = MemoBackend::default();
    }

    /// Satisfiability with stats accounting and memoisation.
    pub fn satisfiable(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<bool, SolverError> {
        self.stats.sat_calls += 1;
        let key = pool::intern(cond);
        let hit = match &self.memo {
            MemoBackend::Local { sat, .. } => sat.get(&key).map(|&v| (v, false, false)),
            MemoBackend::Shared(memo) => memo.sat_get_from(key, self.shard_tag),
        };
        if let Some((hit, cross_run, cross_shard)) = hit {
            self.stats.memo_hits += 1;
            if cross_run {
                self.stats.cross_run_hits += 1;
            }
            if cross_shard {
                self.stats.cross_shard_hits += 1;
            }
            if hit {
                self.stats.sat_true += 1;
            }
            return Ok(hit);
        }
        self.stats.memo_misses += 1;
        let start = Instant::now();
        let out = search::satisfiable(reg, cond);
        self.note_solve(start.elapsed());
        if let Ok(sat) = out {
            if sat {
                self.stats.sat_true += 1;
            }
            match &mut self.memo {
                MemoBackend::Local { sat: map, .. } => {
                    if map.len() < MEMO_CAP {
                        map.insert(key, sat);
                    }
                }
                MemoBackend::Shared(memo) => memo.sat_put_from(key, sat, self.shard_tag),
            }
        }
        out
    }

    /// Model search with stats accounting (not memoised: models are
    /// only requested for explanation paths, not hot loops).
    pub fn find_model(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<Option<Assignment>, SolverError> {
        let start = Instant::now();
        let out = search::find_model(reg, cond);
        self.note_solve(start.elapsed());
        self.stats.sat_calls += 1;
        if let Ok(Some(_)) = out {
            self.stats.sat_true += 1;
        }
        out
    }

    /// Solver-backed simplification with stats accounting and
    /// memoisation.
    pub fn simplify_pruned(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<Condition, SolverError> {
        self.stats.simplify_calls += 1;
        let key = pool::intern(cond);
        let hit = match &self.memo {
            MemoBackend::Local { simplify, .. } => simplify
                .get(&key)
                .map(|&v| (pool::resolve(v), false, false)),
            MemoBackend::Shared(memo) => memo.simplify_get_from(key, self.shard_tag),
        };
        if let Some((hit, cross_run, cross_shard)) = hit {
            self.stats.memo_hits += 1;
            if cross_run {
                self.stats.cross_run_hits += 1;
            }
            if cross_shard {
                self.stats.cross_shard_hits += 1;
            }
            return Ok(hit);
        }
        self.stats.memo_misses += 1;
        let start = Instant::now();
        let out = simplify::simplify_pruned(reg, cond);
        self.note_solve(start.elapsed());
        if let Ok(simplified) = &out {
            match &mut self.memo {
                MemoBackend::Local { simplify: map, .. } => {
                    if map.len() < MEMO_CAP {
                        map.insert(key, pool::intern(simplified));
                    }
                }
                MemoBackend::Shared(memo) => {
                    memo.simplify_put_from(key, simplified, self.shard_tag);
                }
            }
        }
        out
    }

    /// Merges another session's stats into this one (memo entries are
    /// not transferred — they may come from a different registry).
    pub fn absorb(&mut self, other: &Session) {
        self.stats.absorb(&other.stats);
    }

    /// Merges a raw stats record into this session's totals (the
    /// cross-thread variant of [`absorb`](Session::absorb): workers
    /// return their [`SolverStats`] by value).
    pub fn absorb_stats(&mut self, stats: &SolverStats) {
        self.stats.absorb(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{Domain, Term};

    #[test]
    fn stats_accumulate() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let sat = Condition::eq(Term::Var(x), Term::int(1));
        let unsat = sat.clone().and(Condition::eq(Term::Var(x), Term::int(0)));
        assert!(s.satisfiable(&reg, &sat).unwrap());
        assert!(!s.satisfiable(&reg, &unsat).unwrap());
        let st = s.stats();
        assert_eq!(st.sat_calls, 2);
        assert_eq!(st.sat_true, 1);
        s.reset();
        assert_eq!(s.stats(), SolverStats::default());
    }

    #[test]
    fn absorb_merges() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut a = Session::new();
        let mut b = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        a.satisfiable(&reg, &c).unwrap();
        b.satisfiable(&reg, &c).unwrap();
        a.absorb(&b);
        assert_eq!(a.stats().sat_calls, 2);
    }

    #[test]
    fn solver_stats_absorb_sums_fields() {
        let mut lat_a = Histogram::new();
        lat_a.record(100);
        let mut lat_b = Histogram::new();
        lat_b.record(5_000);
        let mut a = SolverStats {
            sat_calls: 1,
            sat_true: 1,
            simplify_calls: 2,
            memo_hits: 3,
            cross_run_hits: 1,
            cross_shard_hits: 2,
            memo_misses: 4,
            time: Duration::from_millis(5),
            latency: lat_a,
        };
        a.absorb(&SolverStats {
            sat_calls: 10,
            sat_true: 10,
            simplify_calls: 20,
            memo_hits: 30,
            cross_run_hits: 10,
            cross_shard_hits: 20,
            memo_misses: 40,
            time: Duration::from_millis(50),
            latency: lat_b,
        });
        assert_eq!(a.sat_calls, 11);
        assert_eq!(a.sat_true, 11);
        assert_eq!(a.simplify_calls, 22);
        assert_eq!(a.memo_hits, 33);
        assert_eq!(a.cross_run_hits, 11);
        assert_eq!(a.cross_shard_hits, 22);
        assert_eq!(a.memo_misses, 44);
        assert_eq!(a.time, Duration::from_millis(55));
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency.sum_ns(), 5_100);
    }

    #[test]
    fn latency_histogram_counts_misses_only() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        s.satisfiable(&reg, &c).unwrap();
        s.satisfiable(&reg, &c).unwrap(); // memo hit: no solver entry
        let st = s.stats();
        assert_eq!(st.memo_misses, 1);
        assert_eq!(st.latency.count(), 1);
        assert_eq!(st.latency.sum_ns(), st.time.as_nanos() as u64);
    }

    #[test]
    fn memo_hits_repeat_queries() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        assert!(s.satisfiable(&reg, &c).unwrap());
        assert!(s.satisfiable(&reg, &c).unwrap());
        assert!(s.satisfiable(&reg, &c).unwrap());
        let st = s.stats();
        assert_eq!(st.sat_calls, 3);
        assert_eq!(st.sat_true, 3);
        assert_eq!(st.memo_misses, 1);
        assert_eq!(st.memo_hits, 2);
        assert!(st.memo_hit_rate() > 0.6);
    }

    #[test]
    fn memo_hits_repeat_simplify() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(0))
            .and(Condition::eq(Term::Var(x), Term::int(1)));
        let first = s.simplify_pruned(&reg, &c).unwrap();
        let second = s.simplify_pruned(&reg, &c).unwrap();
        assert_eq!(first, Condition::False);
        assert_eq!(first, second);
        let st = s.stats();
        assert_eq!(st.simplify_calls, 2);
        assert!(st.memo_hits >= 1);
    }

    #[test]
    fn reset_clears_memo() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        s.satisfiable(&reg, &c).unwrap();
        s.reset();
        s.satisfiable(&reg, &c).unwrap();
        assert_eq!(s.stats().memo_hits, 0);
        assert_eq!(s.stats().memo_misses, 1);
    }

    #[test]
    fn shared_memo_hits_across_sessions() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let memo = Arc::new(SharedMemo::new());
        let c = Condition::eq(Term::Var(x), Term::int(1));

        let mut a = Session::with_shared(Arc::clone(&memo));
        assert!(a.satisfiable(&reg, &c).unwrap());
        assert_eq!(a.stats().memo_misses, 1);

        // A sibling session sees the cached verdict without solving.
        let mut b = Session::with_shared(Arc::clone(&memo));
        assert!(b.satisfiable(&reg, &c).unwrap());
        assert_eq!(b.stats().memo_hits, 1);
        assert_eq!(b.stats().memo_misses, 0);

        // Simplification shares too.
        let contradiction = c.clone().and(Condition::eq(Term::Var(x), Term::int(0)));
        assert_eq!(
            a.simplify_pruned(&reg, &contradiction).unwrap(),
            Condition::False
        );
        assert_eq!(
            b.simplify_pruned(&reg, &contradiction).unwrap(),
            Condition::False
        );
        assert_eq!(b.stats().memo_hits, 2);
    }

    #[test]
    fn cross_shard_hits_require_distinct_tags() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let memo = Arc::new(SharedMemo::new());
        let c = Condition::eq(Term::Var(x), Term::int(1));

        // Shard 1 decides the condition.
        let mut s1 = Session::with_shared(Arc::clone(&memo));
        s1.set_shard_tag(1);
        s1.satisfiable(&reg, &c).unwrap();
        assert_eq!(s1.stats().cross_shard_hits, 0);

        // Shard 1 hitting its own entry: not cross-shard.
        s1.satisfiable(&reg, &c).unwrap();
        assert_eq!(s1.stats().cross_shard_hits, 0);

        // Shard 2 hitting shard 1's entry: cross-shard.
        let mut s2 = Session::with_shared(Arc::clone(&memo));
        s2.set_shard_tag(2);
        s2.satisfiable(&reg, &c).unwrap();
        assert_eq!(s2.stats().memo_hits, 1);
        assert_eq!(s2.stats().cross_shard_hits, 1);

        // An untagged session never counts cross-shard reuse.
        let mut s0 = Session::with_shared(Arc::clone(&memo));
        s0.satisfiable(&reg, &c).unwrap();
        assert_eq!(s0.stats().memo_hits, 1);
        assert_eq!(s0.stats().cross_shard_hits, 0);
    }

    #[test]
    fn cross_run_hits_count_only_prior_generation_entries() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let memo = Arc::new(SharedMemo::for_registry(&reg));
        let c = Condition::eq(Term::Var(x), Term::int(1));

        // Run 1: miss, then an in-run hit — no cross-run hits.
        memo.begin_run();
        let mut s1 = Session::with_shared(Arc::clone(&memo));
        s1.satisfiable(&reg, &c).unwrap();
        s1.satisfiable(&reg, &c).unwrap();
        assert_eq!(s1.stats().memo_hits, 1);
        assert_eq!(s1.stats().cross_run_hits, 0);

        // Run 2 over the same memo: the hit crosses the run boundary
        // and stays out of the latency histogram (misses only).
        memo.begin_run();
        let mut s2 = Session::with_shared(Arc::clone(&memo));
        s2.satisfiable(&reg, &c).unwrap();
        let st = s2.stats();
        assert_eq!(st.memo_hits, 1);
        assert_eq!(st.cross_run_hits, 1);
        assert_eq!(st.memo_misses, 0);
        assert_eq!(st.latency.count(), 0);
        assert!(st.memo_cross_run_hit_rate() > 0.99);
    }
}
