//! Containment / subsumption edge cases beyond the §5 running example.

use faure_core::containment::{subsumes, unfold_goal_rules, ContainmentError, Subsumption};
use faure_core::parse_program;
use faure_ctable::{CVarRegistry, Const, Domain};

fn reg() -> CVarRegistry {
    let mut r = CVarRegistry::new();
    r.fresh("p", Domain::Ints(vec![80, 344, 7000]));
    r.fresh(
        "y",
        Domain::Consts(vec![Const::sym("CS"), Const::sym("GS")]),
    );
    r
}

#[test]
fn weaker_comparison_is_subsumed() {
    // "panic if port ∉ {80}" is a *stronger* violation trigger than
    // "panic if port ∉ {80, 344}": every violation of the narrow one…
    // wait, inverted: target fires when p≠80 AND p≠344; candidate fires
    // when p≠80. Target's firing implies candidate's.
    let target = parse_program("panic :- R(p), p != 80, p != 344.\n").unwrap();
    let candidate = parse_program("panic :- R(p), p != 80.\n").unwrap();
    assert_eq!(
        subsumes(&candidate, &target, &reg()).unwrap(),
        Subsumption::Subsumed
    );
    // The converse does not hold.
    assert!(matches!(
        subsumes(&target, &candidate, &reg()).unwrap(),
        Subsumption::NotShown { .. }
    ));
}

#[test]
fn extra_positive_literal_blocks_subsumption() {
    // Candidate needs a fact the target does not guarantee.
    let target = parse_program("panic :- R(p).\n").unwrap();
    let candidate = parse_program("panic :- R(p), S(p).\n").unwrap();
    assert!(matches!(
        subsumes(&candidate, &target, &reg()).unwrap(),
        Subsumption::NotShown { .. }
    ));
    // The other direction holds: target ⊇ candidate's positive body.
    assert_eq!(
        subsumes(&target, &candidate, &reg()).unwrap(),
        Subsumption::Subsumed
    );
}

#[test]
fn multi_rule_target_requires_every_rule_covered() {
    let target = parse_program(
        "panic :- R(p), p != 80.\n\
         panic :- S(q).\n",
    )
    .unwrap();
    // Covers only the first rule.
    let partial = parse_program("panic :- R(p).\n").unwrap();
    assert!(matches!(
        subsumes(&partial, &target, &reg()).unwrap(),
        Subsumption::NotShown { uncovered_rule: 1 }
    ));
    // Covers both.
    let full = parse_program(
        "panic :- R(p).\n\
         panic :- S(q).\n",
    )
    .unwrap();
    assert_eq!(
        subsumes(&full, &target, &reg()).unwrap(),
        Subsumption::Subsumed
    );
}

#[test]
fn unfolding_multiplies_through_disjunctive_definitions() {
    let program = parse_program(
        "panic :- V(x).\n\
         V(x) :- A(x).\n\
         V(x) :- B(x), x != 80.\n",
    )
    .unwrap();
    let rules = unfold_goal_rules(&program).unwrap();
    assert_eq!(rules.len(), 2);
    assert!(rules.iter().all(|r| r.head.pred == "panic"));
}

#[test]
fn two_level_unfolding() {
    let program = parse_program(
        "panic :- V(x).\n\
         V(x) :- W(x).\n\
         W(x) :- A(x, y), !B(y).\n",
    )
    .unwrap();
    let rules = unfold_goal_rules(&program).unwrap();
    assert_eq!(rules.len(), 1);
    let body_preds: Vec<&str> = rules[0]
        .body
        .iter()
        .map(|l| l.atom().pred.as_str())
        .collect();
    assert_eq!(body_preds, vec!["A", "B"]);
}

#[test]
fn constants_mismatch_prunes_unfold_branch() {
    // The call V(CS) cannot unify with the definition head V(GS).
    let program = parse_program(
        "panic :- V(CS).\n\
         V(GS) :- A(x).\n\
         V(CS) :- B(x).\n",
    )
    .unwrap();
    let rules = unfold_goal_rules(&program).unwrap();
    assert_eq!(rules.len(), 1);
    assert_eq!(rules[0].body[0].atom().pred, "B");
}

#[test]
fn ground_candidate_vs_variable_target() {
    // Target fires on ANY R row; candidate only on R(Mkt,...): not
    // subsuming.
    let target = parse_program("panic :- R(x, p).\n").unwrap();
    let candidate = parse_program("panic :- R(Mkt, p).\n").unwrap();
    assert!(matches!(
        subsumes(&candidate, &target, &reg()).unwrap(),
        Subsumption::NotShown { .. }
    ));
    // Converse: every R(Mkt, p) violation is an R(x, p) violation.
    assert_eq!(
        subsumes(&target, &candidate, &reg()).unwrap(),
        Subsumption::Subsumed
    );
}

#[test]
fn negated_literals_align() {
    // Same positive bodies; candidate negates a different predicate:
    // not shown (an instance can violate the target while the
    // candidate's negated table blocks its rule).
    let target = parse_program("panic :- R(x), !Fw(x).\n").unwrap();
    let candidate = parse_program("panic :- R(x), !Lb(x).\n").unwrap();
    assert!(matches!(
        subsumes(&candidate, &target, &reg()).unwrap(),
        Subsumption::NotShown { .. }
    ));
    // Identical shape is subsumed.
    assert_eq!(
        subsumes(&target, &target, &reg()).unwrap(),
        Subsumption::Subsumed
    );
}

#[test]
fn candidate_without_negation_subsumes_target_with() {
    // Target: panic on unfirewalled R rows. Candidate: panic on ALL R
    // rows — strictly more violations.
    let target = parse_program("panic :- R(x), !Fw(x).\n").unwrap();
    let candidate = parse_program("panic :- R(x).\n").unwrap();
    assert_eq!(
        subsumes(&candidate, &target, &reg()).unwrap(),
        Subsumption::Subsumed
    );
    // Converse must fail: a firewalled R row violates the candidate
    // but not the target.
    assert!(matches!(
        subsumes(&target, &candidate, &reg()).unwrap(),
        Subsumption::NotShown { .. }
    ));
}

#[test]
fn recursion_in_target_is_an_error() {
    let target = parse_program(
        "panic :- V(x).\n\
         V(x) :- V(x), A(x).\n",
    )
    .unwrap();
    let candidate = parse_program("panic :- A(x).\n").unwrap();
    assert!(matches!(
        subsumes(&candidate, &target, &reg()),
        Err(ContainmentError::RecursiveConstraint(_))
    ));
}

#[test]
fn linear_comparisons_in_constraints() {
    // Constraints over link-failure counts: target fires when at most
    // one of two links is up AND both are down — candidate fires when
    // both are down. Target ⊆ candidate.
    let mut r = CVarRegistry::new();
    r.fresh("a", Domain::Bool01);
    r.fresh("b", Domain::Bool01);
    let target = parse_program("panic :- L(x), $a + $b < 2, $a = 0, $b = 0.\n").unwrap();
    let candidate = parse_program("panic :- L(x), $a = 0, $b = 0.\n").unwrap();
    assert_eq!(
        subsumes(&candidate, &target, &r).unwrap(),
        Subsumption::Subsumed
    );
    // Converse fails ($a=0,$b=1 violates neither... rather: candidate's
    // firing condition $a=0∧$b=0 implies target's too here — actually
    // target adds only a redundant constraint, so they are equivalent).
    assert_eq!(
        subsumes(&target, &candidate, &r).unwrap(),
        Subsumption::Subsumed
    );
}
