//! # faure-storage — relational engine over c-tables
//!
//! The Fauré paper implements fauré-log on top of PostgreSQL, "to
//! leverage existing database structure (e.g., indexing) to accelerate
//! fauré-log evaluation" (§6). This crate is the repo's PostgreSQL
//! substitute: an in-memory relational engine specialised for c-tables.
//!
//! Mirroring the paper's three-phase evaluation:
//!
//! 1. **data phase** (*"generate the data part in pure SQL"*) —
//!    indexed pattern matching and join over tuple terms ([`Table`],
//!    [`ops`]);
//! 2. **condition phase** (*"add proper conditions by SQL UPDATE"*) —
//!    the match conditions `μ` produced by pattern matching and the
//!    conjunction of body-row conditions are attached to derived rows;
//! 3. **solver phase** (*"invoke Z3 to remove tuples with contradictory
//!    conditions"*) — [`Table::prune`] runs `faure-solver` over every
//!    row condition.
//!
//! [`PhaseStats`] accumulates per-phase wall-clock time so the bench
//! harness can report the paper's `sql` / `Z3` columns separately.
//!
//! ## What a "match" means on c-tables
//!
//! Unlike ordinary relations, a constant pattern matches not only an
//! equal constant but also a c-variable cell — *conditionally*. The
//! paper's c-valuation `v^C` shows up here as the [`Pattern`] match
//! result: a row matches a pattern with an attached **match condition**
//! (e.g. matching `P(1.2.3.5, y)` against row `(ȳ, [ABE])[ȳ ≠ 1.2.3.4]`
//! yields the condition `ȳ = 1.2.3.5`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnf;
pub mod exec;
pub mod ops;
pub mod pipeline;
pub mod shard;
pub mod sql;
pub mod table;

pub use exec::{CondAcc, OpStats};
pub use pipeline::PhaseStats;
pub use shard::{Route, ShardStats};
pub use table::{ArityError, DeletionEffect, InsertOutcome, Pattern, PreparedRow, Table};
