//! Per-phase timing, mirroring the paper's evaluation pipeline.
//!
//! Table 4 of the paper reports, for each query, the time spent in the
//! SQL phases (data generation + condition updates) and the time spent
//! in Z3 (pruning contradictory rows) separately. [`PhaseStats`] is the
//! accumulator threaded through evaluation so the bench harness can
//! print the same columns — plus, since the plan-compilation refactor,
//! per-operator row/condition counters, per-iteration delta sizes, and
//! plan-cache hit counters.

use crate::exec::OpStats;
use crate::shard::ShardStats;
use faure_solver::session::SolverStats;
use std::time::Duration;

/// Accumulated per-phase statistics for one query evaluation.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Time in the relational phases: pattern matching, joins, and
    /// condition construction (the paper's "sql" column).
    pub relational: Duration,
    /// Time in the solver phase: satisfiability pruning and
    /// simplification (the paper's "Z3" column).
    pub solver: Duration,
    /// Number of tuples produced (the paper's "#tuples" column).
    pub tuples: usize,
    /// Number of tuples removed by the solver phase.
    pub pruned: usize,
    /// Elapsed wall-clock time of the prune phase alone. Unlike
    /// `solver` (which sums per-worker CPU time under parallel
    /// evaluation), this is measured around each `Table::prune` /
    /// `Table::prune_parallel` call on the driver thread, so
    /// `prune_wall` shrinking while `solver` stays flat is exactly the
    /// signature of parallel pruning paying off.
    pub prune_wall: Duration,
    /// Fine-grained solver counters.
    pub solver_stats: SolverStats,
    /// Per-operator execution counters (probes, matches, conjoined
    /// conditions, comparison-pruned branches, negation checks).
    pub ops: OpStats,
    /// Total delta rows after each semi-naive fixpoint iteration,
    /// summed over the stratum's predicates. Iteration 0 is the seed
    /// pass over the full tables; the list ends with the emptying
    /// iteration omitted (a fixpoint is reached when the delta is
    /// empty).
    pub delta_sizes: Vec<usize>,
    /// Rule plans served from the per-evaluation plan cache (compiled
    /// once per `(rule, delta slot)`, executed every iteration).
    pub plan_cache_hits: u64,
    /// Rule plans compiled because no cached plan existed.
    pub plan_cache_misses: u64,
    /// Sharded-evaluation counters (all zero when the run never
    /// dispatched to the sharded driver).
    pub shard: ShardStats,
}

impl PhaseStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another stats record into this one.
    pub fn absorb(&mut self, other: &PhaseStats) {
        self.relational += other.relational;
        self.solver += other.solver;
        self.tuples += other.tuples;
        self.pruned += other.pruned;
        self.prune_wall += other.prune_wall;
        self.solver_stats.absorb(&other.solver_stats);
        self.ops.absorb(&other.ops);
        self.delta_sizes.extend_from_slice(&other.delta_sizes);
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.shard.absorb(&other.shard);
    }

    /// Total wall-clock time (relational + solver).
    pub fn total(&self) -> Duration {
        self.relational + self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = PhaseStats {
            relational: Duration::from_millis(10),
            solver: Duration::from_millis(5),
            tuples: 3,
            pruned: 1,
            prune_wall: Duration::from_millis(2),
            delta_sizes: vec![4],
            plan_cache_hits: 2,
            plan_cache_misses: 1,
            ..PhaseStats::default()
        };
        let b = PhaseStats {
            relational: Duration::from_millis(20),
            solver: Duration::from_millis(15),
            tuples: 7,
            pruned: 2,
            prune_wall: Duration::from_millis(3),
            delta_sizes: vec![9, 1],
            plan_cache_hits: 3,
            plan_cache_misses: 1,
            ..PhaseStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.relational, Duration::from_millis(30));
        assert_eq!(a.solver, Duration::from_millis(20));
        assert_eq!(a.tuples, 10);
        assert_eq!(a.pruned, 3);
        assert_eq!(a.prune_wall, Duration::from_millis(5));
        assert_eq!(a.total(), Duration::from_millis(50));
        assert_eq!(a.delta_sizes, vec![4, 9, 1]);
        assert_eq!(a.plan_cache_hits, 5);
        assert_eq!(a.plan_cache_misses, 2);
    }
}
